//! # amdrel — hybrid reconfigurable platform partitioning
//!
//! A Rust reproduction of *"A Partitioning Methodology for Accelerating
//! Applications in Hybrid Reconfigurable Platforms"* (Galanis, Milidonis,
//! Theodoridis, Soudris, Goutis — DATE 2004, developed within the
//! European IST AMDREL project).
//!
//! The methodology splits a C application between the **fine-grain**
//! (embedded FPGA) and **coarse-grain** (CGC datapath) units of a hybrid
//! reconfigurable platform so a timing constraint is met: profile the
//! application, rank the loop kernels by `exec_freq × bb_weight`, and
//! move them one by one to the coarse-grain hardware while accounting
//! for fine-grain temporal partitioning, CGC scheduling, and
//! shared-memory communication.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`cdfg`] | control-data-flow-graph IR, ASAP/ALAP, dominators, loops |
//! | [`minic`] | C-subset frontend (lexer → parser → sema → IR → CDFG) |
//! | [`profiler`] | interpreter (dynamic analysis), weights, kernels |
//! | [`finegrain`] | FPGA model + Figure 3 temporal partitioning |
//! | [`coarsegrain`] | CGC datapath + list scheduling + binding |
//! | [`core`] | the Figure 2 partitioning engine and experiment grids |
//! | [`floorplan`] | 2D region model + deterministic floorplanner for partial reconfiguration |
//! | [`explore`] | multi-objective design-space exploration (Pareto archive + search strategies) |
//! | [`runtime`] | reconfiguration-aware multi-tenant runtime simulator |
//! | [`trace`] | deterministic event tracing, Chrome-trace export, self-profiling |
//! | [`apps`] | OFDM transmitter & JPEG encoder case studies |
//!
//! # Examples
//!
//! End-to-end flow on a small kernel:
//!
//! ```
//! use amdrel::core::{run_flow, Platform};
//!
//! # fn main() -> Result<(), amdrel::core::CoreError> {
//! let src = r#"
//!     int x[64];
//!     int y[64];
//!     int main() {
//!         for (int i = 0; i < 64; i++) {
//!             y[i] = x[i] * x[i] * 3 + 5;
//!         }
//!         return y[63];
//!     }
//! "#;
//! let platform = Platform::paper(1500, 2);
//! let outcome = run_flow(src, &[], &platform, 2_000)?;
//! assert!(outcome.result.final_cycles() <= outcome.result.initial_cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use amdrel_apps as apps;
pub use amdrel_cdfg as cdfg;
pub use amdrel_coarsegrain as coarsegrain;
pub use amdrel_core as core;
pub use amdrel_explore as explore;
pub use amdrel_finegrain as finegrain;
pub use amdrel_floorplan as floorplan;
pub use amdrel_minic as minic;
pub use amdrel_profiler as profiler;
pub use amdrel_runtime as runtime;
pub use amdrel_trace as trace;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use amdrel_apps::{jpeg, ofdm, paper, Workload};
    pub use amdrel_cdfg::{BasicBlock, BlockId, Cdfg, Dfg, NodeId, OpClass, OpKind};
    pub use amdrel_coarsegrain::{CgcDatapath, CgcGeometry, Priority, SchedulerConfig};
    pub use amdrel_core::ReconfigModel;
    pub use amdrel_core::{
        format_paper_table, run_flow, run_flow_cached, run_grid, run_grid_cached,
        run_grid_parallel, run_grid_parallel_cached, run_grid_parallel_jobs, Assignment,
        CacheStats, CommModel, EnergyModel, EngineConfig, GridSpec, MappingCache, PartitionResult,
        PartitioningEngine, Platform,
    };
    pub use amdrel_explore::{
        explore, ContentionMetrics, DesignSpace, Evaluator, Exhaustive, ExploreConfig,
        ExploreReport, Objective, ObjectiveSet, Objectives, ParetoArchive, PointEval, PointIdx,
        RandomSampling, RuntimeEvaluator, SearchStrategy, SimulatedAnnealing,
    };
    pub use amdrel_finegrain::{FpgaDevice, ReconfigPolicy};
    pub use amdrel_floorplan::{
        FabricGrid, Floorplanner, Footprint, FragmentationStats, PlacedRect, Placement, Region,
        RegionConfigKey,
    };
    pub use amdrel_minic::compile;
    pub use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
    pub use amdrel_runtime::{
        policy_by_name, shard_of, AppProfile, AppShare, BackoffSchedule, CalendarStats,
        ConfigAffinity, FaultSpec, Fcfs, LatencySketch, LatencySource, PriorityFirst,
        RecoveryPolicy, RegionPlan, ReliabilityStats, RuntimeReport, SchedulePolicy,
        ShortestJobFirst, SimConfig, Simulation, SketchMode, WorkloadSpec,
    };
    #[allow(deprecated)]
    pub use amdrel_runtime::{run_simulation, simulate_mix};
    pub use amdrel_trace::{
        chrome_trace, resource_gantt, text_timeline, Profiler, TraceBuffer, TraceEvent, TraceSink,
        TrackId,
    };
}
