//! `amdrel` — command-line driver for the partitioning methodology.
//!
//! ```text
//! amdrel analyze   <src.c> [--input name=v,v,..]... [--top N]
//! amdrel partition <src.c> --constraint N [--area A] [--cgcs K]
//!                  [--input name=v,v,..]... [--skip-unprofitable]
//! amdrel sweep     <src.c> --constraint N [--areas A,A,..] [--cgc-list K,K,..]
//!                  [--jobs N] [--json] [--input name=v,v,..]...
//! amdrel explore   <src.c> [--strategy exhaustive|random|sa] [--seed S]
//!                  [--budget N] [--jobs N] [--json] [--constraint N]
//!                  [--areas A,A,..] [--cgc-list K,K,..] [--max-kernels K]
//!                  [--objectives cycles,area,energy,fragmentation,
//!                                worst_region_load,p95,throughput,
//!                                p95_under_faults,degraded_share]
//!                  [--policy fcfs|sjf|priority|affinity] [--njobs N] [--load PCT]
//!                  [--reconfig streamed|region|free]
//!                  [--regions N | --region-shape RxC]
//!                  [--fault-rate PERMILLE] [--fault-seed S] [--deadline CYCLES]
//!                  [--max-retries N] [--degrade] [--input name=v,v,..]...
//! amdrel simulate  [--app ofdm|jpeg|sobel]... [--policy fcfs|sjf|priority|affinity]
//!                  [--seed S] [--njobs N] [--load PCT | --arrival CYCLES]
//!                  [--queue-bound N] [--no-config-cache] [--prefetch]
//!                  [--sketch auto|exact|sketched] [--area A] [--cgcs K]
//!                  [--reconfig streamed|region|free]
//!                  [--regions N | --region-shape RxC]
//!                  [--fault-rate PERMILLE] [--fault-seed S] [--deadline CYCLES]
//!                  [--max-retries N] [--degrade] [--shards K] [--json]
//!                  [--trace FILE] [--trace-format chrome|text] [--profile]
//! amdrel trace     [simulate flags] [--trace FILE] [--trace-format chrome|text]
//! amdrel dot       <src.c> [--block N] [--input name=v,v,..]...
//! ```
//!
//! Sources are mini-C (see the `amdrel-minic` crate docs for the accepted
//! subset); `--input` binds global arrays before profiling. `simulate`
//! takes no source file — it plays a seeded multi-tenant workload of the
//! built-in case studies through the runtime simulator.
//!
//! `explore --objectives` selects the minimised objective vector
//! (default `cycles,area,energy`). Adding `p95` and/or `throughput`
//! scores every candidate platform by simulating a seeded workload mix
//! on it — the source being explored plus the three built-in case
//! studies as background tenants — under `--policy` (default `fcfs`),
//! with `--njobs` jobs (default 64) at `--load` percent offered
//! fine-grain load (default 130). The arrival rate is pinned from the
//! background mix on the base platform, so every candidate platform
//! sees identical offered traffic.
//!
//! `--reconfig` selects the reconfiguration cost model shared by
//! `simulate` and `explore`: `streamed` (the default) prices every load
//! by the full logical footprint on one monolithic fabric; `region`
//! floorplans all tenants jointly onto a region grid — `--regions N`
//! horizontal bands or `--region-shape RxC` rectangles (default 4
//! bands) — and a dispatch reloads only the stale regions its
//! configuration touches, priced by *region* area; `free` is the
//! zero-cost ablation. `--regions` and `--region-shape` are mutually
//! exclusive with each other and with an explicit `--reconfig
//! streamed|free` (either flag implies `--reconfig region`).
//! `--no-config-cache` composes with `streamed` and `region` (every
//! dispatch reloads; in region mode every touched region is treated as
//! stale) but is a no-op under `--reconfig free`, where loads cost
//! nothing whether cached or not — the same holds for `--prefetch`.
//! With one region, `--reconfig region` output is byte-identical to
//! `streamed`. `explore` prices the static `fragmentation` /
//! `worst_region_load` objectives on the same grid (a shape contributes
//! `R×C` uniform regions).
//!
//! The fault flags drive the deterministic fault-injection layer:
//! `--fault-rate` is a per-mille probability (0..=1000) applied to
//! reconfiguration loads, in-flight fine-grain phases, and CGC slots;
//! `--fault-seed` seeds the fault streams independently of the workload
//! seed; `--deadline` reaps jobs still queued after that many cycles;
//! `--max-retries` bounds recovery attempts per phase; `--degrade`
//! reroutes retry-exhausted jobs to a coarse-grain-only fallback
//! instead of aborting them. `--fault-rate 0` (the default) is exactly
//! the fault-free simulator: output is byte-identical.
//!
//! Observability: `--trace FILE` writes the run's deterministic event
//! trace — per-job lifecycle spans on per-resource tracks (scheduler,
//! fabric, CGC slots, regions), timestamped in simulated cycles — in
//! the format `--trace-format` selects: `chrome` (default; the
//! `amdrel-trace/v1` Chrome trace-event JSON, loadable in Perfetto /
//! `chrome://tracing`) or `text` (a plain timeline plus a gantt-style
//! per-resource view). On `explore`, `--trace` requires a runtime
//! objective and traces the contention run of the best frontier point
//! after the search. `amdrel trace` is `simulate` that prints the trace
//! itself to stdout (or `--trace FILE`) instead of the report. Tracing
//! is a pure observer: reports are byte-identical with or without it,
//! and repeated runs produce byte-identical traces. `--profile` prints
//! an `amdrel-profile/v1` wall-clock phase breakdown to **stderr**
//! (never stdout — wall time is nondeterministic and stays out of every
//! deterministic artefact).
//!
//! `--shards K` (default 1) partitions the tenants of `simulate` /
//! `trace` across `K` independent platform replicas (application `i`
//! lives on shard `i % K`) run on scoped threads and folded back with a
//! deterministic shard-order merge. `--shards 1` is byte-identical to
//! the classic single-threaded run; at `K >= 2` the tenants on
//! different shards no longer contend, so the shard count is part of
//! the simulated scenario, not a pure observer.
//!
//! Exit status: `amdrel <cmd> --help` prints that subcommand's usage on
//! stdout and exits 0; an unknown subcommand or malformed flags print
//! the usage on stderr and exit 1.

use amdrel::prelude::*;
use amdrel_coarsegrain::CgcDatapath;
use std::process::ExitCode;

const USAGE: &str = "usage: amdrel <analyze|partition|sweep|explore|simulate|trace|dot> [<src.c>] \
                     [flags] — run 'amdrel --help' for the full flag list";

/// Per-subcommand usage lines (printed by `amdrel <cmd> --help` and on
/// subcommand-specific errors).
const SUBCOMMANDS: &[(&str, &str)] = &[
    (
        "analyze",
        "amdrel analyze <src.c> [--input name=v,v,..]... [--top N]",
    ),
    (
        "partition",
        "amdrel partition <src.c> --constraint N [--area A] [--cgcs K] \
         [--input name=v,v,..]... [--skip-unprofitable]",
    ),
    (
        "sweep",
        "amdrel sweep <src.c> --constraint N [--areas A,A,..] [--cgc-list K,K,..] \
         [--jobs N] [--json] [--input name=v,v,..]...",
    ),
    (
        "explore",
        concat!(
            "amdrel explore <src.c> [flags]\n",
            "  search:\n",
            "    --strategy exhaustive|random|sa   --seed S   --budget N   --jobs N\n",
            "    --constraint N   --areas A,A,..   --cgc-list K,K,..   --max-kernels K\n",
            "    --objectives cycles,area,energy,fragmentation,worst_region_load,p95,",
            "throughput,p95_under_faults,degraded_share\n",
            "    --input name=v,v,.. (repeatable)\n",
            "  workload:\n",
            "    --policy fcfs|sjf|priority|affinity   --njobs N   --load PCT\n",
            "  faults:\n",
            "    --fault-rate PERMILLE   --fault-seed S   --deadline CYCLES\n",
            "    --max-retries N   --degrade\n",
            "  regions:\n",
            "    --reconfig streamed|region|free   --regions N | --region-shape RxC\n",
            "    (--regions/--region-shape are mutually exclusive and imply ",
            "--reconfig region)\n",
            "  observability:\n",
            "    --json   --trace FILE   --trace-format chrome|text   --profile\n",
            "    (--trace needs a runtime objective; it traces the best frontier ",
            "point's contention run)",
        ),
    ),
    (
        "simulate",
        concat!(
            "amdrel simulate [flags]\n",
            "  workload:\n",
            "    --app ofdm|jpeg|sobel (repeatable)   --policy fcfs|sjf|priority|affinity\n",
            "    --seed S   --njobs N   --load PCT | --arrival CYCLES   --queue-bound N\n",
            "    --no-config-cache   --prefetch   --sketch auto|exact|sketched\n",
            "    --area A   --cgcs K   --shards K\n",
            "  faults:\n",
            "    --fault-rate PERMILLE   --fault-seed S   --deadline CYCLES\n",
            "    --max-retries N   --degrade\n",
            "  regions:\n",
            "    --reconfig streamed|region|free   --regions N | --region-shape RxC\n",
            "    (region flags imply --reconfig region; --no-config-cache composes ",
            "with --reconfig region but both it and --prefetch are no-ops under ",
            "--reconfig free)\n",
            "  observability:\n",
            "    --json   --trace FILE   --trace-format chrome|text   --profile\n",
            "  (--load/--arrival and --regions/--region-shape are mutually exclusive pairs)",
        ),
    ),
    (
        "trace",
        "amdrel trace [simulate flags] [--trace FILE] [--trace-format chrome|text] \
         — run the simulate workload and emit its deterministic event trace to \
         stdout (or FILE) instead of the report",
    ),
    (
        "dot",
        "amdrel dot <src.c> [--block N] [--input name=v,v,..]...",
    ),
];

fn usage_for(cmd: &str) -> Option<&'static str> {
    SUBCOMMANDS
        .iter()
        .find(|(name, _)| *name == cmd)
        .map(|(_, usage)| *usage)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    source_path: String,
    inputs: Vec<(String, Vec<i64>)>,
    constraint: Option<u64>,
    area: u64,
    cgcs: usize,
    areas: Vec<u64>,
    cgc_list: Vec<usize>,
    top: usize,
    block: Option<u32>,
    skip_unprofitable: bool,
    strategy: String,
    seed: u64,
    budget: usize,
    jobs: usize,
    json: bool,
    max_kernels: usize,
    objectives: String,
    apps: Vec<String>,
    policy: String,
    njobs: usize,
    arrival: Option<u64>,
    load: Option<u64>,
    queue_bound: usize,
    no_config_cache: bool,
    prefetch: bool,
    sketch: String,
    fault_rate: u16,
    fault_seed: u64,
    deadline: Option<u64>,
    max_retries: u32,
    degrade: bool,
    reconfig: Option<String>,
    regions: Option<usize>,
    region_shape: Option<(usize, usize)>,
    shards: usize,
    trace: Option<String>,
    trace_format: String,
    profile: bool,
}

/// Whether a subcommand takes a mini-C source file as its positional
/// argument (`simulate` and `trace` run the built-in case studies
/// instead).
fn needs_source(command: &str) -> bool {
    !matches!(command, "simulate" | "trace")
}

fn parse_options(args: &[String], with_source: bool) -> Result<Options, String> {
    let mut opts = Options {
        source_path: String::new(),
        inputs: Vec::new(),
        constraint: None,
        area: 1500,
        cgcs: 2,
        areas: vec![1500, 5000],
        cgc_list: vec![2, 3],
        top: 8,
        block: None,
        skip_unprofitable: false,
        strategy: "sa".to_owned(),
        seed: 42,
        budget: 64,
        jobs: 0,
        json: false,
        max_kernels: 8,
        objectives: "cycles,area,energy".to_owned(),
        apps: Vec::new(),
        policy: "fcfs".to_owned(),
        njobs: 64,
        arrival: None,
        load: None,
        queue_bound: 0,
        no_config_cache: false,
        prefetch: false,
        sketch: "auto".to_owned(),
        fault_rate: 0,
        fault_seed: 7,
        deadline: None,
        max_retries: 3,
        degrade: false,
        reconfig: None,
        regions: None,
        region_shape: None,
        shards: 1,
        trace: None,
        trace_format: "chrome".to_owned(),
        profile: false,
    };
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--input" => {
                let v = value_of("--input")?;
                let (name, data) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--input wants name=v,v,.. (got '{v}')"))?;
                let values = data
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse::<i64>()
                            .map_err(|e| format!("input '{name}': {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                opts.inputs.push((name.to_owned(), values));
            }
            "--constraint" => {
                opts.constraint = Some(
                    value_of("--constraint")?
                        .parse()
                        .map_err(|e| format!("--constraint: {e}"))?,
                );
            }
            "--area" => {
                opts.area = value_of("--area")?
                    .parse()
                    .map_err(|e| format!("--area: {e}"))?;
            }
            "--cgcs" => {
                opts.cgcs = value_of("--cgcs")?
                    .parse()
                    .map_err(|e| format!("--cgcs: {e}"))?;
            }
            "--areas" => {
                opts.areas = value_of("--areas")?
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|e| format!("--areas: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--cgc-list" => {
                opts.cgc_list = value_of("--cgc-list")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--cgc-list: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--top" => {
                opts.top = value_of("--top")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--block" => {
                opts.block = Some(
                    value_of("--block")?
                        .parse()
                        .map_err(|e| format!("--block: {e}"))?,
                );
            }
            "--skip-unprofitable" => opts.skip_unprofitable = true,
            "--strategy" => opts.strategy = value_of("--strategy")?,
            "--seed" => {
                opts.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--budget" => {
                opts.budget = value_of("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--jobs" => {
                opts.jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--json" => opts.json = true,
            "--max-kernels" => {
                opts.max_kernels = value_of("--max-kernels")?
                    .parse()
                    .map_err(|e| format!("--max-kernels: {e}"))?;
            }
            "--objectives" => opts.objectives = value_of("--objectives")?,
            "--app" => {
                let v = value_of("--app")?;
                opts.apps
                    .extend(v.split(',').filter(|s| !s.is_empty()).map(str::to_owned));
            }
            "--policy" => opts.policy = value_of("--policy")?,
            "--njobs" => {
                opts.njobs = value_of("--njobs")?
                    .parse()
                    .map_err(|e| format!("--njobs: {e}"))?;
            }
            "--arrival" => {
                let arrival: u64 = value_of("--arrival")?
                    .parse()
                    .map_err(|e| format!("--arrival: {e}"))?;
                if arrival == 0 {
                    return Err("--arrival must be a positive cycle count".to_owned());
                }
                opts.arrival = Some(arrival);
            }
            "--load" => {
                let load: u64 = value_of("--load")?
                    .parse()
                    .map_err(|e| format!("--load: {e}"))?;
                if load == 0 {
                    return Err("--load must be a positive percentage".to_owned());
                }
                opts.load = Some(load);
            }
            "--queue-bound" => {
                opts.queue_bound = value_of("--queue-bound")?
                    .parse()
                    .map_err(|e| format!("--queue-bound: {e}"))?;
            }
            "--no-config-cache" => opts.no_config_cache = true,
            "--prefetch" => opts.prefetch = true,
            "--sketch" => opts.sketch = value_of("--sketch")?,
            "--fault-rate" => {
                let rate: u16 = value_of("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?;
                if rate > 1000 {
                    return Err(format!(
                        "--fault-rate is permille and must be 0..=1000 (got {rate})"
                    ));
                }
                opts.fault_rate = rate;
            }
            "--fault-seed" => {
                opts.fault_seed = value_of("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--deadline" => {
                let deadline: u64 = value_of("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if deadline == 0 {
                    return Err("--deadline must be a positive cycle count".to_owned());
                }
                opts.deadline = Some(deadline);
            }
            "--max-retries" => {
                opts.max_retries = value_of("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--degrade" => opts.degrade = true,
            "--shards" => {
                let shards: usize = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be a positive shard count".to_owned());
                }
                opts.shards = shards;
            }
            "--trace" => opts.trace = Some(value_of("--trace")?),
            "--trace-format" => {
                let v = value_of("--trace-format")?;
                if !matches!(v.as_str(), "chrome" | "text") {
                    return Err(format!(
                        "unknown trace format '{v}' (expected chrome or text)"
                    ));
                }
                opts.trace_format = v;
            }
            "--profile" => opts.profile = true,
            "--reconfig" => opts.reconfig = Some(value_of("--reconfig")?),
            "--regions" => {
                let n: usize = value_of("--regions")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?;
                if n == 0 {
                    return Err("--regions must be a positive region count".to_owned());
                }
                opts.regions = Some(n);
            }
            "--region-shape" => {
                let v = value_of("--region-shape")?;
                let (r, c) = v
                    .split_once('x')
                    .ok_or_else(|| format!("--region-shape wants RxC, e.g. 2x2 (got '{v}')"))?;
                let rows: usize = r
                    .trim()
                    .parse()
                    .map_err(|e| format!("--region-shape rows: {e}"))?;
                let cols: usize = c
                    .trim()
                    .parse()
                    .map_err(|e| format!("--region-shape cols: {e}"))?;
                if rows == 0 || cols == 0 {
                    return Err("--region-shape needs positive dimensions".to_owned());
                }
                opts.region_shape = Some((rows, cols));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => positional.push(other.to_owned()),
        }
    }
    match (with_source, positional.len()) {
        (true, 0) => Err("missing source file".to_owned()),
        (true, 1) => {
            opts.source_path = positional.into_iter().next().expect("len checked");
            Ok(opts)
        }
        (false, 0) => Ok(opts),
        _ => Err(format!("unexpected arguments: {positional:?}")),
    }
}

/// Resolve the `--reconfig`/`--regions`/`--region-shape` selection:
/// `Ok(None)` for the classic full-fabric models (`streamed`, `free`),
/// `Ok(Some((rows, cols)))` for region mode. Either region flag implies
/// `--reconfig region`; a bare `--reconfig region` defaults to 4
/// horizontal bands.
fn region_grid(opts: &Options) -> Result<Option<(usize, usize)>, String> {
    let mode = opts.reconfig.as_deref();
    if let Some(m) = mode {
        if !matches!(m, "streamed" | "region" | "free") {
            return Err(format!(
                "unknown reconfig model '{m}' (expected streamed, region or free)"
            ));
        }
    }
    if opts.regions.is_some() && opts.region_shape.is_some() {
        return Err("--regions and --region-shape are mutually exclusive".to_owned());
    }
    let flagged = opts.regions.is_some() || opts.region_shape.is_some();
    if flagged {
        if let Some(m @ ("streamed" | "free")) = mode {
            return Err(format!(
                "--regions/--region-shape are mutually exclusive with --reconfig {m} \
                 (they imply --reconfig region)"
            ));
        }
    }
    if !flagged && mode != Some("region") {
        return Ok(None);
    }
    Ok(Some(match (opts.regions, opts.region_shape) {
        (Some(n), _) => (n, 1),
        (_, Some(shape)) => shape,
        _ => (4, 1),
    }))
}

/// Build the fault-injection spec and recovery policy selected on the
/// command line. `--fault-rate 0` with no `--deadline` yields
/// [`FaultSpec::none`], which the simulator treats as exactly the
/// fault-free path (byte-identical output).
fn fault_config(opts: &Options) -> (FaultSpec, RecoveryPolicy) {
    let mut faults = FaultSpec::uniform(opts.fault_seed, opts.fault_rate);
    faults.deadline = opts.deadline.and_then(std::num::NonZeroU64::new);
    let recovery = RecoveryPolicy {
        max_retries: opts.max_retries,
        backoff: BackoffSchedule::default(),
        degrade: opts.degrade,
    };
    (faults, recovery)
}

fn analyzed(opts: &Options) -> Result<(amdrel_minic::CompiledProgram, AnalysisReport), String> {
    let source = std::fs::read_to_string(&opts.source_path)
        .map_err(|e| format!("{}: {e}", opts.source_path))?;
    let program = compile(&source, "main").map_err(|e| e.to_string())?;
    let inputs: Vec<(&str, &[i64])> = opts
        .inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    let execution = Interpreter::new(&program.ir)
        .run(&inputs)
        .map_err(|e| e.to_string())?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    Ok((program, analysis))
}

/// Render a recorded event trace in the CLI's `--trace-format`.
///
/// `chrome` produces the `amdrel-trace/v1` Chrome trace-event JSON
/// (loadable in Perfetto or `chrome://tracing`); `text` produces the
/// plain timeline followed by the gantt-style per-resource view. The
/// format string was validated at parse time.
fn render_trace(events: &[TraceEvent], format: &str) -> String {
    match format {
        "text" => {
            let mut out = text_timeline(events);
            out.push_str(&resource_gantt(events, 72));
            out
        }
        _ => chrome_trace(events),
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(
            "usage: amdrel <analyze|partition|sweep|explore|simulate|trace|dot> [<src.c>] [flags] \
             (see --help)"
                .to_owned(),
        );
    };
    if command == "--help" || command == "help" {
        println!("amdrel — hybrid reconfigurable platform partitioning");
        for (_, usage) in SUBCOMMANDS {
            println!("  {usage}");
        }
        return Ok(());
    }
    let Some(cmd_usage) = usage_for(command) else {
        let names: Vec<&str> = SUBCOMMANDS.iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "unknown command '{command}' (expected one of: {})",
            names.join(", ")
        ));
    };
    if rest.iter().any(|a| a == "--help") {
        println!("usage: {cmd_usage}");
        return Ok(());
    }
    let opts = parse_options(rest, needs_source(command))
        .map_err(|e| format!("{e}\nusage: {cmd_usage}"))?;
    match command.as_str() {
        "analyze" => {
            let (program, analysis) = analyzed(&opts)?;
            println!(
                "{} basic blocks, {} operations",
                program.cdfg.len(),
                program.cdfg.total_ops()
            );
            print!(
                "{}",
                analysis.format_table1(
                    &format!("top {} kernels by total weight", opts.top),
                    opts.top
                )
            );
            Ok(())
        }
        "partition" => {
            let constraint = opts.constraint.ok_or("partition needs --constraint")?;
            let (program, analysis) = analyzed(&opts)?;
            let platform = Platform::paper(opts.area, opts.cgcs);
            let cache = MappingCache::new();
            let result = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
                .with_config(EngineConfig {
                    skip_unprofitable: opts.skip_unprofitable,
                })
                .with_mapping_cache(&cache)
                .run(constraint)
                .map_err(|e| e.to_string())?;
            println!(
                "platform: A_FPGA={} with {}",
                opts.area,
                platform.datapath.describe()
            );
            println!("initial (all-FPGA): {} cycles", result.initial_cycles);
            if result.met_without_partitioning {
                println!("constraint already met without partitioning (step-2 exit)");
                return Ok(());
            }
            for m in &result.moves {
                println!(
                    "  move {} ({}) -> t_total {}",
                    m.kernel,
                    m.label,
                    m.breakdown.t_total()
                );
            }
            println!(
                "final: {} cycles ({:.1}% reduction) — constraint {}",
                result.final_cycles(),
                result.reduction_percent(),
                if result.met { "MET" } else { "NOT MET" }
            );
            Ok(())
        }
        "sweep" => {
            let constraint = opts.constraint.ok_or("sweep needs --constraint")?;
            let (program, analysis) = analyzed(&opts)?;
            let datapaths: Vec<CgcDatapath> = opts
                .cgc_list
                .iter()
                .map(|&k| CgcDatapath::uniform(k, amdrel_coarsegrain::CgcGeometry::TWO_BY_TWO))
                .collect();
            let base = Platform::paper(opts.areas[0], opts.cgc_list[0]);
            let cache = MappingCache::new();
            let spec = GridSpec {
                app: &opts.source_path,
                cdfg: &program.cdfg,
                analysis: &analysis,
                base: &base,
                areas: &opts.areas,
                datapaths: &datapaths,
                constraint,
            };
            let grid =
                run_grid_parallel_jobs(&spec, &cache, opts.jobs).map_err(|e| e.to_string())?;
            if opts.json {
                print!(
                    "{}",
                    amdrel::explore::json::grid_to_json(&grid, &cache.stats())
                );
                return Ok(());
            }
            print!("{}", format_paper_table(&grid));
            let stats = cache.stats();
            println!(
                "mappings computed: {} fine-grain, {} coarse-grain ({} cache hits across {} cells)",
                stats.fine_misses,
                stats.coarse_misses,
                stats.hits(),
                grid.cells.len(),
            );
            Ok(())
        }
        "explore" => {
            let objectives = ObjectiveSet::parse(&opts.objectives)?;
            if opts.trace.is_some() && !objectives.needs_runtime() {
                return Err(
                    "--trace on explore needs a runtime objective (p95, throughput, \
                     p95_under_faults or degraded_share): the trace replays the best \
                     frontier point's contention run"
                        .to_owned(),
                );
            }
            let region = region_grid(&opts)?;
            let (program, analysis) = analyzed(&opts)?;
            let strategy: Box<dyn SearchStrategy> = match opts.strategy.as_str() {
                "exhaustive" => Box::new(Exhaustive),
                "random" => Box::new(RandomSampling),
                "sa" => Box::new(SimulatedAnnealing::default()),
                other => {
                    return Err(format!(
                        "unknown strategy '{other}' (expected exhaustive, random or sa)"
                    ))
                }
            };
            let mut base = Platform::paper(opts.areas[0], opts.cgc_list[0]);
            if opts.reconfig.as_deref() == Some("free") {
                base = base.with_reconfig(ReconfigModel::free());
            }
            let cache = MappingCache::new();
            // Contention-aware objectives score each candidate platform
            // by simulating the explored source alongside the built-in
            // case studies as background tenants.
            let contention = if objectives.needs_runtime() {
                let policy = policy_by_name(&opts.policy).ok_or_else(|| {
                    format!(
                        "unknown policy '{}' (expected fcfs, sjf, priority or affinity)",
                        opts.policy
                    )
                })?;
                let background = amdrel::apps::runtime::standard_mix(&base)
                    .map_err(|e| format!("building background tenants: {e}"))?;
                // Pin one absolute arrival rate (derived from the
                // background mix on the base platform) so every
                // candidate platform is scored under identical offered
                // traffic, not traffic scaled to its own speed.
                let load = opts.load.unwrap_or(130);
                let arrival = WorkloadSpec::mean_interarrival_for(&background, load);
                let (faults, recovery) = fault_config(&opts);
                let mut rt = RuntimeEvaluator::new(background, policy)
                    .with_seed(opts.seed)
                    .with_njobs(opts.njobs)
                    .with_load(load)
                    .with_arrival(arrival)
                    .with_faults(faults)
                    .with_recovery(recovery);
                if let Some((rows, cols)) = region {
                    rt = rt.with_region_reconfig(rows * cols);
                }
                Some(rt)
            } else {
                None
            };
            // Without --constraint, target half the all-FPGA cycle count
            // of the base configuration (a constraint that forces real
            // partitioning without being unreachable).
            let constraint = match opts.constraint {
                Some(c) => c,
                None => {
                    let initial = PartitioningEngine::new(&program.cdfg, &analysis, &base)
                        .with_mapping_cache(&cache)
                        .run(u64::MAX)
                        .map_err(|e| e.to_string())?
                        .initial_cycles;
                    (initial / 2).max(1)
                }
            };
            let datapaths: Vec<CgcDatapath> = opts
                .cgc_list
                .iter()
                .map(|&k| CgcDatapath::uniform(k, amdrel_coarsegrain::CgcGeometry::TWO_BY_TWO))
                .collect();
            let space = DesignSpace {
                areas: opts.areas.clone(),
                datapaths,
                max_kernel_budget: opts.max_kernels.min(analysis.kernels().len()),
                constraint,
            };
            let mut evaluator = Evaluator::new(
                &opts.source_path,
                &program.cdfg,
                &analysis,
                &base,
                EnergyModel::default(),
                &cache,
            )
            .with_objectives(objectives);
            if let Some((rows, cols)) = region {
                evaluator = evaluator.with_regions(rows * cols);
            }
            if let Some(rt) = &contention {
                evaluator = evaluator.with_runtime(rt);
            }
            let config = ExploreConfig {
                seed: opts.seed,
                eval_budget: opts.budget,
                jobs: opts.jobs,
            };
            let profiler = Profiler::new();
            let report = profiler
                .time("explore.search", || {
                    explore(&evaluator, &space, strategy.as_ref(), &config)
                })
                .map_err(|e| e.to_string())?;
            if let Some(path) = &opts.trace {
                // Replay the contention run of the best frontier point
                // (p95 when scored, overall cycles otherwise) through a
                // trace sink. The replay is a pure observer: it reuses
                // the memoised engine cell and does not count as an
                // extra simulation in the report's statistics.
                let best = report
                    .best_p95()
                    .or_else(|| report.best_cycles())
                    .ok_or("nothing to trace: the explored frontier is empty")?;
                let buffer = TraceBuffer::new();
                profiler
                    .time("explore.trace", || {
                        evaluator.trace_point(&space, best.point, &buffer)
                    })
                    .map_err(|e| e.to_string())?;
                let rendered = render_trace(&buffer.events(), &opts.trace_format);
                std::fs::write(path, rendered)
                    .map_err(|e| format!("writing trace to {path}: {e}"))?;
            }
            if opts.json {
                print!("{}", amdrel::explore::json::report_to_json(&report));
            } else {
                print!("{}", report.format_table());
            }
            if opts.profile {
                eprintln!("{}", profiler.to_json());
            }
            Ok(())
        }
        // `trace` is `simulate` with tracing forced on and the rendered
        // trace (rather than the report) as the stdout artefact.
        "simulate" | "trace" => {
            let region = region_grid(&opts)?;
            let mut platform = Platform::paper(opts.area, opts.cgcs);
            if opts.reconfig.as_deref() == Some("free") {
                platform = platform.with_reconfig(ReconfigModel::free());
            }
            let selected: Vec<String> = if opts.apps.is_empty() {
                vec!["ofdm".to_owned(), "jpeg".to_owned(), "sobel".to_owned()]
            } else {
                opts.apps.clone()
            };
            let mut profiles = Vec::with_capacity(selected.len());
            for name in &selected {
                let profile = match name.as_str() {
                    "ofdm" => amdrel::apps::runtime::ofdm_profile(&platform),
                    "jpeg" => amdrel::apps::runtime::jpeg_profile(&platform),
                    "sobel" => amdrel::apps::runtime::sobel_profile(&platform),
                    other => {
                        return Err(format!(
                            "unknown app '{other}' (expected ofdm, jpeg or sobel)"
                        ))
                    }
                };
                profiles.push(profile.map_err(|e| format!("{name}: {e}"))?);
            }
            let policy = policy_by_name(&opts.policy).ok_or_else(|| {
                format!(
                    "unknown policy '{}' (expected fcfs, sjf, priority or affinity)",
                    opts.policy
                )
            })?;
            if opts.load.is_some() && opts.arrival.is_some() {
                return Err("--load and --arrival are mutually exclusive".to_owned());
            }
            let load = opts.load.unwrap_or(120);
            let mut spec = WorkloadSpec::uniform(opts.seed, opts.njobs, &profiles, load);
            if let Some(arrival) = opts.arrival {
                spec.mean_interarrival = arrival;
            }
            let sketch = SketchMode::parse(&opts.sketch).ok_or_else(|| {
                format!(
                    "unknown sketch mode '{}' (expected auto, exact or sketched)",
                    opts.sketch
                )
            })?;
            let (faults, recovery) = fault_config(&opts);
            // The joint floorplan is frozen before the simulation starts,
            // so region mode stays a pure function of the flag values.
            let plan = region.map(|(rows, cols)| {
                RegionPlan::new(
                    &profiles,
                    &FabricGrid::shaped(platform.fpga.usable_area(), rows, cols),
                )
            });
            // `--queue-bound 0` keeps its historical meaning: unbounded.
            let mut sim = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .config_cache(!opts.no_config_cache)
                .prefetch(opts.prefetch)
                .queue_bound(std::num::NonZeroUsize::new(opts.queue_bound))
                .sketch_mode(sketch)
                .shards(opts.shards)
                .faults(faults)
                .recovery(recovery);
            if let Some(plan) = &plan {
                sim = sim.regions(plan);
            }
            let tracing = command == "trace" || opts.trace.is_some();
            let buffer = TraceBuffer::new();
            if tracing {
                sim = sim.trace(&buffer);
            }
            let profiler = Profiler::new();
            let report = profiler.time("sim.run", || sim.run_mix(&spec));
            if tracing {
                let events = buffer.events();
                let rendered =
                    profiler.time("trace.render", || render_trace(&events, &opts.trace_format));
                match &opts.trace {
                    Some(path) => {
                        std::fs::write(path, rendered)
                            .map_err(|e| format!("writing trace to {path}: {e}"))?;
                        if command == "trace" {
                            println!("trace: {} events written to {path}", events.len());
                        }
                    }
                    // Only reachable for the `trace` subcommand: plain
                    // `simulate` traces iff `--trace FILE` was given.
                    None => print!("{rendered}"),
                }
            }
            if command == "simulate" {
                if opts.json {
                    print!("{}", amdrel::runtime::report_to_json(&report));
                } else {
                    println!(
                        "platform: A_FPGA={} with {} — {} jobs, seed {}, mean interarrival {}",
                        opts.area,
                        platform.datapath.describe(),
                        opts.njobs,
                        opts.seed,
                        spec.mean_interarrival,
                    );
                    if let Some((rows, cols)) = region {
                        println!(
                            "reconfig: region mode, {rows}x{cols} grid ({} regions)",
                            rows * cols
                        );
                    }
                    print!("{}", report.format_table());
                }
            }
            if opts.profile {
                eprintln!("{}", profiler.to_json());
            }
            Ok(())
        }
        "dot" => {
            let (program, _) = analyzed(&opts)?;
            match opts.block {
                Some(b) => {
                    let id = BlockId(b);
                    let bb = program
                        .cdfg
                        .get(id)
                        .ok_or_else(|| format!("no block bb{b}"))?;
                    print!("{}", amdrel::cdfg::dot::dfg_to_dot(&bb.dfg));
                }
                None => print!("{}", amdrel::cdfg::dot::cdfg_to_dot(&program.cdfg)),
            }
            Ok(())
        }
        other => unreachable!("command '{other}' was validated against SUBCOMMANDS"),
    }
}
