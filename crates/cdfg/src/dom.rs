//! Dominator computation over the control-flow side of a [`Cdfg`].
//!
//! Implements the iterative dominance algorithm of Cooper, Harvey & Kennedy
//! ("A Simple, Fast Dominance Algorithm") over the reverse post-order. The
//! loop analysis ([`crate::loops`]) uses dominance to recognise natural
//! loops — the paper's kernels are "basic blocks inside loops", so dominance
//! is what turns raw control edges into kernel candidacy.

use crate::cfg::{BlockId, Cdfg};
use serde::{Deserialize, Serialize};

/// The dominator tree of a [`Cdfg`] (reachable blocks only).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dominators {
    /// Immediate dominator per block; `None` for the entry block and for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
    reachable: Vec<bool>,
}

impl Dominators {
    /// Compute dominators for `cdfg`.
    ///
    /// # Panics
    ///
    /// Panics if the CDFG is empty.
    pub fn compute(cdfg: &Cdfg) -> Self {
        let entry = cdfg.entry();
        let rpo = cdfg.reverse_postorder();
        // Map block → its RPO position, for the intersection walk.
        let mut rpo_pos = vec![usize::MAX; cdfg.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let mut reachable = vec![false; cdfg.len()];
        for &b in &rpo {
            reachable[b.index()] = true;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; cdfg.len()];
        idom[entry.index()] = Some(entry); // temporary self-idom sentinel

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.index()] > rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_pos[b.index()] > rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor seeds the meet.
                let mut new_idom: Option<BlockId> = None;
                for &p in cdfg.preds(b) {
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[entry.index()] = None; // drop the sentinel
        Dominators {
            idom,
            entry,
            reachable,
        }
    }

    /// The immediate dominator of `b`, or `None` for the entry block and
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Unreachable blocks are dominated by nothing and dominate nothing
    /// (except themselves).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable.get(b.index()).copied().unwrap_or(false) {
            return false;
        }
        let mut cur = b;
        while let Some(d) = self.idom(cur) {
            if d == a {
                return true;
            }
            cur = d;
        }
        false
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.index()).copied().unwrap_or(false)
    }

    /// The entry block these dominators were computed from.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BasicBlock;
    use crate::dfg::Dfg;

    fn block(g: &mut Cdfg, label: &str) -> BlockId {
        g.add_block(BasicBlock::from_dfg(label, Dfg::new(label)))
    }

    /// The classic diamond: 0 → {1,2} → 3.
    #[test]
    fn diamond_dominance() {
        let mut g = Cdfg::new("diamond");
        let b0 = block(&mut g, "b0");
        let b1 = block(&mut g, "b1");
        let b2 = block(&mut g, "b2");
        let b3 = block(&mut g, "b3");
        g.add_edge(b0, b1).unwrap();
        g.add_edge(b0, b2).unwrap();
        g.add_edge(b1, b3).unwrap();
        g.add_edge(b2, b3).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(b0), None);
        assert_eq!(dom.idom(b1), Some(b0));
        assert_eq!(dom.idom(b2), Some(b0));
        assert_eq!(dom.idom(b3), Some(b0)); // join dominated by fork, not arms
        assert!(dom.dominates(b0, b3));
        assert!(!dom.dominates(b1, b3));
        assert!(dom.dominates(b3, b3));
    }

    /// Cooper–Harvey–Kennedy's paper example (their Figure 2):
    /// 5→{4,3}, 4→1, 3→2, 1→2, 2→{1, exit-ish}, with entry 5.
    #[test]
    fn chk_figure2() {
        let mut g = Cdfg::new("chk");
        let n5 = block(&mut g, "n5");
        let n4 = block(&mut g, "n4");
        let n3 = block(&mut g, "n3");
        let n2 = block(&mut g, "n2");
        let n1 = block(&mut g, "n1");
        g.add_edge(n5, n4).unwrap();
        g.add_edge(n5, n3).unwrap();
        g.add_edge(n4, n1).unwrap();
        g.add_edge(n3, n2).unwrap();
        g.add_edge(n1, n2).unwrap();
        g.add_edge(n2, n1).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(n4), Some(n5));
        assert_eq!(dom.idom(n3), Some(n5));
        // Both 1 and 2 are join points reachable two ways; idom is the entry.
        assert_eq!(dom.idom(n1), Some(n5));
        assert_eq!(dom.idom(n2), Some(n5));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut g = Cdfg::new("loop");
        let entry = block(&mut g, "entry");
        let head = block(&mut g, "head");
        let body = block(&mut g, "body");
        let exit = block(&mut g, "exit");
        g.add_edge(entry, head).unwrap();
        g.add_edge(head, body).unwrap();
        g.add_edge(body, head).unwrap();
        g.add_edge(head, exit).unwrap();
        let dom = Dominators::compute(&g);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, head));
        assert_eq!(dom.idom(body), Some(head));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut g = Cdfg::new("unreach");
        let entry = block(&mut g, "entry");
        let island = block(&mut g, "island");
        let _ = entry;
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(island), None);
        assert!(!dom.is_reachable(island));
        assert!(dom.dominates(island, island)); // reflexive only
        assert!(!dom.dominates(entry, island));
    }

    #[test]
    fn single_block_graph() {
        let mut g = Cdfg::new("one");
        let only = block(&mut g, "only");
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(only), None);
        assert!(dom.dominates(only, only));
        assert_eq!(dom.entry(), only);
    }
}
