//! Operation kinds carried by [`Dfg`](crate::Dfg) nodes.
//!
//! The paper's analysis step distinguishes *basic operations* by cost class:
//! ALU-type word operations (weight 1), multiplications (weight 2) and memory
//! accesses. [`OpClass`] captures exactly that taxonomy so that the analysis,
//! area and latency models in the downstream crates can all be keyed off one
//! classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse cost class of an operation.
///
/// The paper's weight table ("we give a weight equal to 1 for the ALU
/// operations and a weight equal to 2 for the multiplication ones") is keyed
/// by this classification, as are the FPGA area library and the CGC node
/// capability model (each CGC node contains a multiplier and an ALU).
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{OpClass, OpKind};
///
/// assert_eq!(OpKind::Add.class(), OpClass::Alu);
/// assert_eq!(OpKind::Mul.class(), OpClass::Mul);
/// assert_eq!(OpKind::Load.class(), OpClass::Mem);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Word-level ALU operation: add/sub, logic, shifts, comparisons, select.
    Alu,
    /// Multiplication.
    Mul,
    /// Division or remainder. The paper's DFGs contain none ("no divisions
    /// are present in the DFGs") but the IR supports them for generality.
    Div,
    /// Memory access through the shared data memory (array load/store).
    Mem,
    /// Boundary pseudo-operation (live-in, live-out, constant). Occupies no
    /// hardware and takes no time; it only anchors data edges.
    Boundary,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Alu => "alu",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::Mem => "mem",
            OpClass::Boundary => "boundary",
        };
        f.write_str(s)
    }
}

/// A data-flow operation.
///
/// Every node of a [`Dfg`](crate::Dfg) carries one `OpKind`. The set mirrors
/// what the mini-C frontend can produce: integer arithmetic, bitwise logic,
/// shifts, comparisons, a select (the data side of a conditional), array
/// loads/stores and the three boundary pseudo-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Arithmetic negation.
    Neg,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Signed less-than comparison.
    Lt,
    /// Signed less-or-equal comparison.
    Le,
    /// Signed greater-than comparison.
    Gt,
    /// Signed greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Two-way multiplexer: `select(cond, a, b)`.
    Select,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Not produced by the case-study
    /// applications, kept for IR completeness.
    Div,
    /// Integer remainder.
    Rem,
    /// Array element load from the shared data memory.
    Load,
    /// Array element store to the shared data memory.
    Store,
    /// Value live into the basic block (produced elsewhere).
    LiveIn,
    /// Value live out of the basic block (consumed elsewhere).
    LiveOut,
    /// Compile-time constant.
    Const,
}

impl OpKind {
    /// All operation kinds, in declaration order. Useful for exhaustive
    /// tables (area libraries, weight tables) and for property tests.
    pub const ALL: [OpKind; 24] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Neg,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Lt,
        OpKind::Le,
        OpKind::Gt,
        OpKind::Ge,
        OpKind::Eq,
        OpKind::Ne,
        OpKind::Select,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Rem,
        OpKind::Load,
        OpKind::Store,
        OpKind::LiveIn,
        OpKind::LiveOut,
        OpKind::Const,
    ];

    /// The cost class this operation belongs to.
    pub fn class(self) -> OpClass {
        match self {
            OpKind::Add
            | OpKind::Sub
            | OpKind::Neg
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Not
            | OpKind::Shl
            | OpKind::Shr
            | OpKind::Lt
            | OpKind::Le
            | OpKind::Gt
            | OpKind::Ge
            | OpKind::Eq
            | OpKind::Ne
            | OpKind::Select => OpClass::Alu,
            OpKind::Mul => OpClass::Mul,
            OpKind::Div | OpKind::Rem => OpClass::Div,
            OpKind::Load | OpKind::Store => OpClass::Mem,
            OpKind::LiveIn | OpKind::LiveOut | OpKind::Const => OpClass::Boundary,
        }
    }

    /// Whether this operation occupies hardware and scheduling slots.
    ///
    /// Boundary pseudo-ops ([`LiveIn`](OpKind::LiveIn),
    /// [`LiveOut`](OpKind::LiveOut), [`Const`](OpKind::Const)) do not.
    pub fn is_schedulable(self) -> bool {
        self.class() != OpClass::Boundary
    }

    /// Whether this operation reads or writes the shared data memory.
    pub fn is_mem(self) -> bool {
        self.class() == OpClass::Mem
    }

    /// Whether this is a comparison producing a 1-bit result.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge | OpKind::Eq | OpKind::Ne
        )
    }

    /// Short lower-case mnemonic, stable across versions (used in DOT dumps
    /// and reports).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Neg => "neg",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Gt => "gt",
            OpKind::Ge => "ge",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Select => "select",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Rem => "rem",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::LiveIn => "live_in",
            OpKind::LiveOut => "live_out",
            OpKind::Const => "const",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_unique_mnemonic() {
        let mut seen = std::collections::HashSet::new();
        for kind in OpKind::ALL {
            assert!(seen.insert(kind.mnemonic()), "duplicate {kind}");
        }
    }

    #[test]
    fn class_partitions_kinds() {
        for kind in OpKind::ALL {
            match kind.class() {
                OpClass::Boundary => assert!(!kind.is_schedulable()),
                _ => assert!(kind.is_schedulable()),
            }
        }
    }

    #[test]
    fn comparisons_are_alu() {
        for kind in OpKind::ALL.into_iter().filter(|k| k.is_cmp()) {
            assert_eq!(kind.class(), OpClass::Alu);
        }
    }

    #[test]
    fn mem_ops_are_loads_and_stores_only() {
        let mem: Vec<_> = OpKind::ALL.into_iter().filter(|k| k.is_mem()).collect();
        assert_eq!(mem, vec![OpKind::Load, OpKind::Store]);
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(OpKind::Mul.to_string(), "mul");
        assert_eq!(OpClass::Boundary.to_string(), "boundary");
    }

    #[test]
    fn all_table_is_exhaustive() {
        // A compile error here (non-exhaustive match) is the real assertion;
        // the count pins the ALL table against it.
        for kind in OpKind::ALL {
            match kind {
                OpKind::Add
                | OpKind::Sub
                | OpKind::Neg
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Not
                | OpKind::Shl
                | OpKind::Shr
                | OpKind::Lt
                | OpKind::Le
                | OpKind::Gt
                | OpKind::Ge
                | OpKind::Eq
                | OpKind::Ne
                | OpKind::Select
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Rem
                | OpKind::Load
                | OpKind::Store
                | OpKind::LiveIn
                | OpKind::LiveOut
                | OpKind::Const => (),
            }
        }
        assert_eq!(OpKind::ALL.len(), 24);
    }
}
