//! The data-flow graph of one basic block.

use crate::op::{OpClass, OpKind};
use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside one [`Dfg`].
///
/// Node ids are dense (`0..dfg.len()`), assigned in insertion order, and are
/// only meaningful within the graph that issued them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// One operation node of a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgNode {
    /// The operation performed by this node.
    pub kind: OpKind,
    /// Datapath width of the produced value, in bits (the case-study
    /// applications are 16/32-bit fixed point).
    pub bitwidth: u16,
    /// Optional human-readable tag (variable name, array name, …).
    pub label: Option<String>,
}

impl DfgNode {
    /// A node with the given kind and bitwidth, no label.
    pub fn new(kind: OpKind, bitwidth: u16) -> Self {
        DfgNode {
            kind,
            bitwidth,
            label: None,
        }
    }

    /// A node with a label attached.
    pub fn with_label(kind: OpKind, bitwidth: u16, label: impl Into<String>) -> Self {
        DfgNode {
            kind,
            bitwidth,
            label: Some(label.into()),
        }
    }
}

/// A data-flow graph: the operations of one basic block and the data
/// dependencies between them.
///
/// The graph is a DAG by construction discipline (edges are added by the
/// frontend from producers to later consumers); [`Dfg::validate`] checks
/// acyclicity explicitly. Parallel edges are collapsed — a dependency either
/// exists or it does not, which is all scheduling needs.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
///
/// # fn main() -> Result<(), amdrel_cdfg::GraphError> {
/// let mut dfg = Dfg::new("mac");
/// let a = dfg.add_op(OpKind::LiveIn, 16);
/// let b = dfg.add_op(OpKind::LiveIn, 16);
/// let m = dfg.add_op(OpKind::Mul, 32);
/// let acc = dfg.add_op(OpKind::Add, 32);
/// dfg.add_edge(a, m)?;
/// dfg.add_edge(b, m)?;
/// dfg.add_edge(m, acc)?;
/// assert_eq!(dfg.len(), 4);
/// assert!(dfg.validate().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    name: String,
    nodes: Vec<DfgNode>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Dfg {
    /// An empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            edge_count: 0,
        }
    }

    /// The graph's name (normally the owning basic-block label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of (deduplicated) data edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, node: DfgNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Convenience: append an unlabeled node of `kind`/`bitwidth`.
    pub fn add_op(&mut self, kind: OpKind, bitwidth: u16) -> NodeId {
        self.add_node(DfgNode::new(kind, bitwidth))
    }

    /// Add a data dependency `from → to`.
    ///
    /// Adding an edge that already exists is a no-op. Self-loops are
    /// rejected: a value cannot depend on itself within one basic block.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] if either endpoint does not exist,
    /// [`GraphError::SelfLoop`] for `from == to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        if self.succs[from.index()].contains(&to) {
            return Ok(());
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edge_count += 1;
        Ok(())
    }

    fn check_id(&self, id: NodeId) -> Result<(), GraphError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: id,
                len: self.nodes.len(),
            })
        }
    }

    /// The node payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// Fallible lookup of a node payload.
    pub fn get(&self, id: NodeId) -> Option<&DfgNode> {
        self.nodes.get(id.index())
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over `(id, node)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, &DfgNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Direct predecessors (producers) of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Direct successors (consumers) of `id`.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.preds(n).is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.succs(n).is_empty())
            .collect()
    }

    /// A topological order of all nodes (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if the graph contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<NodeId> = self.node_ids().filter(|n| indeg[n.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            order.push(n);
            for &s in self.succs(n) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == self.len() {
            Ok(order)
        } else {
            Err(GraphError::Cycle {
                graph: self.name.clone(),
            })
        }
    }

    /// Validate structural invariants: acyclicity and pred/succ symmetry.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] if a cycle exists.
    pub fn validate(&self) -> Result<(), GraphError> {
        debug_assert!(self.preds.len() == self.nodes.len());
        debug_assert!(self.succs.len() == self.nodes.len());
        self.topo_order().map(|_| ())
    }

    /// Count of *schedulable* operations (boundary pseudo-ops excluded).
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_schedulable())
            .count()
    }

    /// Histogram of schedulable operations per [`OpClass`].
    pub fn class_histogram(&self) -> HashMap<OpClass, usize> {
        let mut hist = HashMap::new();
        for node in &self.nodes {
            if node.kind.is_schedulable() {
                *hist.entry(node.kind.class()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Number of [`LiveIn`](OpKind::LiveIn) boundary nodes — the words the
    /// block must read from shared storage per execution.
    pub fn live_in_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == OpKind::LiveIn)
            .count()
    }

    /// Number of [`LiveOut`](OpKind::LiveOut) boundary nodes.
    pub fn live_out_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == OpKind::LiveOut)
            .count()
    }
}

impl Default for Dfg {
    fn default() -> Self {
        Dfg::new("dfg")
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dfg({}: {} nodes, {} edges)",
            self.name,
            self.len(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        // a → b, a → c, b → d, c → d
        let mut g = Dfg::new("diamond");
        let a = g.add_op(OpKind::LiveIn, 32);
        let b = g.add_op(OpKind::Add, 32);
        let c = g.add_op(OpKind::Mul, 32);
        let d = g.add_op(OpKind::Sub, 32);
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.preds(d), &[b, c]);
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let (mut g, [a, b, _, _]) = diamond();
        let before = g.edge_count();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), before);
        assert_eq!(g.preds(b).len(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let (mut g, [a, ..]) = diamond();
        assert!(matches!(g.add_edge(a, a), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut g, [a, ..]) = diamond();
        let bogus = NodeId(999);
        assert!(matches!(
            g.add_edge(a, bogus),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.node_ids() {
            for &s in g.succs(n) {
                assert!(pos[&n] < pos[&s], "{n} must precede {s}");
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dfg::new("cyc");
        let a = g.add_op(OpKind::Add, 32);
        let b = g.add_op(OpKind::Sub, 32);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert!(matches!(g.topo_order(), Err(GraphError::Cycle { .. })));
        assert!(g.validate().is_err());
    }

    #[test]
    fn histogram_excludes_boundary() {
        let (g, _) = diamond();
        let hist = g.class_histogram();
        assert_eq!(hist.get(&OpClass::Alu), Some(&2)); // add, sub
        assert_eq!(hist.get(&OpClass::Mul), Some(&1));
        assert_eq!(hist.get(&OpClass::Boundary), None);
        assert_eq!(g.op_count(), 3);
    }

    #[test]
    fn live_counts() {
        let mut g = Dfg::new("io");
        g.add_op(OpKind::LiveIn, 16);
        g.add_op(OpKind::LiveIn, 16);
        g.add_op(OpKind::LiveOut, 16);
        assert_eq!(g.live_in_count(), 2);
        assert_eq!(g.live_out_count(), 1);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Dfg::new("empty");
        assert!(g.is_empty());
        assert!(g.validate().is_ok());
        assert!(g.topo_order().unwrap().is_empty());
    }

    #[test]
    fn display_is_informative() {
        let (g, _) = diamond();
        let s = g.to_string();
        assert!(s.contains("diamond") && s.contains("4 nodes"));
    }
}
