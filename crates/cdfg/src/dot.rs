//! Graphviz DOT export for DFGs and CDFGs (debugging / documentation aid).

use crate::cfg::Cdfg;
use crate::dfg::Dfg;
use crate::op::OpClass;
use std::fmt::Write as _;

/// Render a [`Dfg`] as a Graphviz `digraph`.
///
/// Nodes are coloured by [`OpClass`] so a glance shows where the multipliers
/// (the CGC-friendly word-level work) sit.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{dot, Dfg, OpKind};
///
/// let mut dfg = Dfg::new("g");
/// dfg.add_op(OpKind::Add, 16);
/// let text = dot::dfg_to_dot(&dfg);
/// assert!(text.starts_with("digraph"));
/// ```
pub fn dfg_to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(dfg.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, node) in dfg.iter() {
        let color = class_color(node.kind.class());
        let label = match &node.label {
            Some(l) => format!("{}\\n{} ({}b)", escape(l), node.kind, node.bitwidth),
            None => format!("{} ({}b)", node.kind, node.bitwidth),
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", style=filled, fillcolor=\"{}\"];",
            id, label, color
        );
    }
    for id in dfg.node_ids() {
        for &s in dfg.succs(id) {
            let _ = writeln!(out, "  {} -> {};", id, s);
        }
    }
    out.push_str("}\n");
    out
}

/// Render the control side of a [`Cdfg`] as a Graphviz `digraph`.
///
/// Each block is annotated with its operation count and live-in/out widths.
pub fn cdfg_to_dot(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(cdfg.name()));
    let _ = writeln!(out, "  node [shape=record, fontname=\"monospace\"];");
    for (id, block) in cdfg.iter() {
        let _ = writeln!(
            out,
            "  {} [label=\"{{{}|ops: {}|in/out: {}/{}}}\"];",
            id,
            escape(&block.label),
            block.dfg.op_count(),
            block.live_in,
            block.live_out,
        );
    }
    for id in cdfg.block_ids() {
        for &s in cdfg.succs(id) {
            let _ = writeln!(out, "  {} -> {};", id, s);
        }
    }
    out.push_str("}\n");
    out
}

fn class_color(class: OpClass) -> &'static str {
    match class {
        OpClass::Alu => "#cde8ff",
        OpClass::Mul => "#ffd9b3",
        OpClass::Div => "#ffb3b3",
        OpClass::Mem => "#d9f2d9",
        OpClass::Boundary => "#eeeeee",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BasicBlock;
    use crate::op::OpKind;

    #[test]
    fn dfg_dot_contains_nodes_and_edges() {
        let mut g = Dfg::new("t");
        let a = g.add_op(OpKind::Mul, 16);
        let b = g.add_op(OpKind::Add, 16);
        g.add_edge(a, b).unwrap();
        let dot = dfg_to_dot(&g);
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("mul"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn cdfg_dot_contains_blocks() {
        let mut g = Cdfg::new("app");
        let b0 = g.add_block(BasicBlock::from_dfg("init", Dfg::new("init")));
        let b1 = g.add_block(BasicBlock::from_dfg("loop", Dfg::new("loop")));
        g.add_edge(b0, b1).unwrap();
        let dot = cdfg_to_dot(&g);
        assert!(dot.contains("init"));
        assert!(dot.contains("bb0 -> bb1;"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = Dfg::new("quo\"te");
        g.add_node(crate::dfg::DfgNode::with_label(OpKind::Add, 8, "a\"b"));
        let dot = dfg_to_dot(&g);
        assert!(dot.contains("quo\\\"te"));
        assert!(dot.contains("a\\\"b"));
    }
}
