//! The control side of the CDFG: basic blocks and control-flow edges.

use crate::dfg::Dfg;
use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a basic block inside one [`Cdfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// One basic block: a label, its data-flow graph, and the interface widths
/// used by the communication model.
///
/// `live_in` / `live_out` are the number of scalar words the block consumes
/// from / produces into the shared data memory per execution. The frontend
/// fills them from its liveness analysis; they drive `t_comm` in eq. (2) of
/// the paper when the block is moved to the coarse-grain hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Human-readable label (`f.bb3` style).
    pub label: String,
    /// The block's data-flow graph.
    pub dfg: Dfg,
    /// Scalar words read from shared storage per execution.
    pub live_in: u32,
    /// Scalar words written to shared storage per execution.
    pub live_out: u32,
}

impl BasicBlock {
    /// A block wrapping `dfg`, with live-in/out derived from the DFG's
    /// boundary nodes.
    pub fn from_dfg(label: impl Into<String>, dfg: Dfg) -> Self {
        let live_in = dfg.live_in_count() as u32;
        let live_out = dfg.live_out_count() as u32;
        BasicBlock {
            label: label.into(),
            dfg,
            live_in,
            live_out,
        }
    }
}

/// A control-data flow graph: basic blocks plus control edges.
///
/// This is the model of computation the whole methodology operates on
/// (step 1 of Figure 2). Control edges carry no payload — the partitioning
/// flow needs reachability, dominance and loop structure, not branch
/// conditions (those live inside the frontend's IR).
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{BasicBlock, Cdfg, Dfg};
///
/// # fn main() -> Result<(), amdrel_cdfg::GraphError> {
/// let mut cdfg = Cdfg::new("loop");
/// let head = cdfg.add_block(BasicBlock::from_dfg("head", Dfg::new("head")));
/// let body = cdfg.add_block(BasicBlock::from_dfg("body", Dfg::new("body")));
/// let exit = cdfg.add_block(BasicBlock::from_dfg("exit", Dfg::new("exit")));
/// cdfg.add_edge(head, body)?;
/// cdfg.add_edge(body, head)?; // back edge
/// cdfg.add_edge(head, exit)?;
/// assert_eq!(cdfg.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdfg {
    name: String,
    blocks: Vec<BasicBlock>,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    entry: BlockId,
    edge_count: usize,
}

impl Cdfg {
    /// An empty CDFG named `name`. The first block added becomes the entry.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            blocks: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            entry: BlockId(0),
            edge_count: 0,
        }
    }

    /// The CDFG's name (normally the source function or application name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of control edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The entry block id.
    ///
    /// # Panics
    ///
    /// Panics if the CDFG is empty.
    pub fn entry(&self) -> BlockId {
        assert!(!self.is_empty(), "entry() on empty CDFG");
        self.entry
    }

    /// Append a block, returning its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Add a control edge `from → to`. Duplicate edges are collapsed.
    ///
    /// Control self-loops are legal (a one-block loop body).
    ///
    /// # Errors
    ///
    /// [`GraphError::BlockOutOfRange`] if either endpoint does not exist.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if self.succs[from.index()].contains(&to) {
            return Ok(());
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edge_count += 1;
        Ok(())
    }

    fn check_id(&self, id: BlockId) -> Result<(), GraphError> {
        if id.index() < self.blocks.len() {
            Ok(())
        } else {
            Err(GraphError::BlockOutOfRange {
                block: id,
                len: self.blocks.len(),
            })
        }
    }

    /// The block payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this graph.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block payload.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this graph.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Fallible block lookup.
    pub fn get(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// Iterator over block ids in insertion order.
    pub fn block_ids(&self) -> impl ExactSizeIterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterator over `(id, block)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (BlockId, &BasicBlock)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Control-flow predecessors of `id`.
    pub fn preds(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// Control-flow successors of `id`.
    pub fn succs(&self, id: BlockId) -> &[BlockId] {
        &self.succs[id.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order (the
    /// traversal order used by the dominator computation).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.len()];
        let mut postorder = Vec::with_capacity(self.len());
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs(b).len() {
                let s = self.succs(b)[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }

    /// Whether every block is reachable from the entry.
    pub fn is_connected(&self) -> bool {
        self.reverse_postorder().len() == self.len()
    }

    /// Total schedulable operations across all blocks.
    pub fn total_ops(&self) -> usize {
        self.blocks.iter().map(|b| b.dfg.op_count()).sum()
    }

    /// Validate the CDFG: every block's DFG must be acyclic.
    ///
    /// # Errors
    ///
    /// Propagates the first failing block's [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        for block in &self.blocks {
            block.dfg.validate()?;
        }
        Ok(())
    }
}

impl fmt::Display for Cdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cdfg({}: {} blocks, {} edges, {} ops)",
            self.name,
            self.len(),
            self.edge_count(),
            self.total_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn loop_cfg() -> (Cdfg, [BlockId; 4]) {
        // entry → head; head → body, exit; body → head
        let mut g = Cdfg::new("loop");
        let entry = g.add_block(BasicBlock::from_dfg("entry", Dfg::new("entry")));
        let head = g.add_block(BasicBlock::from_dfg("head", Dfg::new("head")));
        let body = g.add_block(BasicBlock::from_dfg("body", Dfg::new("body")));
        let exit = g.add_block(BasicBlock::from_dfg("exit", Dfg::new("exit")));
        g.add_edge(entry, head).unwrap();
        g.add_edge(head, body).unwrap();
        g.add_edge(head, exit).unwrap();
        g.add_edge(body, head).unwrap();
        (g, [entry, head, body, exit])
    }

    #[test]
    fn build_and_query() {
        let (g, [entry, head, body, exit]) = loop_cfg();
        assert_eq!(g.len(), 4);
        assert_eq!(g.entry(), entry);
        assert_eq!(g.succs(head), &[body, exit]);
        assert_eq!(g.preds(head), &[entry, body]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (g, [entry, ..]) = loop_cfg();
        let rpo = g.reverse_postorder();
        assert_eq!(rpo[0], entry);
        assert_eq!(rpo.len(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn rpo_orders_preds_before_succs_ignoring_back_edges() {
        let (g, [entry, head, body, exit]) = loop_cfg();
        let rpo = g.reverse_postorder();
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(entry) < pos(head));
        assert!(pos(head) < pos(body));
        assert!(pos(head) < pos(exit));
    }

    #[test]
    fn unreachable_block_detected() {
        let (mut g, _) = loop_cfg();
        g.add_block(BasicBlock::from_dfg("island", Dfg::new("island")));
        assert!(!g.is_connected());
    }

    #[test]
    fn self_loop_edge_is_legal() {
        let mut g = Cdfg::new("tight");
        let b = g.add_block(BasicBlock::from_dfg("b", Dfg::new("b")));
        g.add_edge(b, b).unwrap();
        assert_eq!(g.succs(b), &[b]);
    }

    #[test]
    fn from_dfg_derives_live_counts() {
        let mut dfg = Dfg::new("d");
        dfg.add_op(OpKind::LiveIn, 16);
        dfg.add_op(OpKind::LiveIn, 16);
        dfg.add_op(OpKind::LiveOut, 16);
        let bb = BasicBlock::from_dfg("d", dfg);
        assert_eq!((bb.live_in, bb.live_out), (2, 1));
    }

    #[test]
    fn total_ops_sums_blocks() {
        let mut g = Cdfg::new("sum");
        let mut d1 = Dfg::new("d1");
        d1.add_op(OpKind::Add, 32);
        d1.add_op(OpKind::Mul, 32);
        let mut d2 = Dfg::new("d2");
        d2.add_op(OpKind::Sub, 32);
        d2.add_op(OpKind::Const, 32); // boundary, not counted
        g.add_block(BasicBlock::from_dfg("b1", d1));
        g.add_block(BasicBlock::from_dfg("b2", d2));
        assert_eq!(g.total_ops(), 3);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let (mut g, [entry, ..]) = loop_cfg();
        assert!(matches!(
            g.add_edge(entry, BlockId(42)),
            Err(GraphError::BlockOutOfRange { .. })
        ));
    }
}
