//! ASAP / ALAP levels and critical-path measures over a [`Dfg`].
//!
//! The fine-grain mapping algorithm of the paper (Figure 3) "classifies the
//! nodes in the DFG … according to their As Soon As Possible (ASAP) levels"
//! and executes nodes "in increasing order relative to their ASAP levels".
//! Levels here are the classic unit-delay ASAP levels of De Micheli
//! (reference \[12\] of the paper): sources sit at level 1, every other node
//! one past its deepest predecessor.

use crate::dfg::{Dfg, NodeId};
use crate::op::OpKind;
use crate::GraphError;
use serde::{Deserialize, Serialize};

/// Unit-delay scheduling levels of a [`Dfg`].
///
/// Produced by [`asap_levels`] / [`alap_levels`]. Levels are 1-based, matching
/// the paper's pseudocode (`level = 1; while (level <= max_level)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Levels {
    levels: Vec<u32>,
    max_level: u32,
}

impl Levels {
    /// The level of `id` (1-based). Nodes of an empty graph have no levels.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the graph these levels were
    /// computed from.
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// The largest level in the graph (`max_level` in Figure 3); 0 for an
    /// empty graph.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// All node ids at `level`, in id order.
    pub fn nodes_at(&self, level: u32) -> Vec<NodeId> {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == level)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Slice of all levels indexed by node id.
    pub fn as_slice(&self) -> &[u32] {
        &self.levels
    }
}

/// Compute unit-delay ASAP levels.
///
/// Boundary pseudo-ops participate in the level structure (they anchor
/// edges) but schedulers skip them via [`OpKind::is_schedulable`].
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{asap_levels, Dfg, OpKind};
///
/// # fn main() -> Result<(), amdrel_cdfg::GraphError> {
/// let mut dfg = Dfg::new("chain");
/// let a = dfg.add_op(OpKind::LiveIn, 16);
/// let b = dfg.add_op(OpKind::Mul, 16);
/// let c = dfg.add_op(OpKind::Add, 16);
/// dfg.add_edge(a, b)?;
/// dfg.add_edge(b, c)?;
/// let lv = asap_levels(&dfg)?;
/// assert_eq!(lv.level(a), 1);
/// assert_eq!(lv.level(b), 2);
/// assert_eq!(lv.level(c), 3);
/// assert_eq!(lv.max_level(), 3);
/// # Ok(())
/// # }
/// ```
pub fn asap_levels(dfg: &Dfg) -> Result<Levels, GraphError> {
    let order = dfg.topo_order()?;
    let mut levels = vec![0u32; dfg.len()];
    let mut max_level = 0;
    for n in order {
        let lvl = dfg
            .preds(n)
            .iter()
            .map(|p| levels[p.index()])
            .max()
            .unwrap_or(0)
            + 1;
        levels[n.index()] = lvl;
        max_level = max_level.max(lvl);
    }
    Ok(Levels { levels, max_level })
}

/// Compute unit-delay ALAP levels for a given horizon.
///
/// Sinks sit at `horizon`; every other node one level before its earliest
/// successor. `horizon` is usually [`Levels::max_level`] of the ASAP result.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic;
/// [`GraphError::HorizonTooShort`] if `horizon` is smaller than the graph's
/// critical-path length in levels.
pub fn alap_levels(dfg: &Dfg, horizon: u32) -> Result<Levels, GraphError> {
    let order = dfg.topo_order()?;
    let mut levels = vec![0u32; dfg.len()];
    for &n in order.iter().rev() {
        let lvl = dfg
            .succs(n)
            .iter()
            .map(|s| levels[s.index()])
            .min()
            .map(|m| {
                m.checked_sub(1)
                    .ok_or(GraphError::HorizonTooShort { horizon })
            })
            .transpose()?
            .unwrap_or(horizon);
        if lvl == 0 && !dfg.is_empty() {
            return Err(GraphError::HorizonTooShort { horizon });
        }
        levels[n.index()] = lvl;
    }
    let max_level = levels.iter().copied().max().unwrap_or(0);
    Ok(Levels { levels, max_level })
}

/// Per-node slack (`alap - asap`). Zero-slack nodes are on a critical path.
///
/// # Errors
///
/// Propagates errors from [`asap_levels`] / [`alap_levels`].
pub fn mobility(dfg: &Dfg) -> Result<Vec<u32>, GraphError> {
    let asap = asap_levels(dfg)?;
    let alap = alap_levels(dfg, asap.max_level())?;
    Ok(dfg
        .node_ids()
        .map(|n| alap.level(n) - asap.level(n))
        .collect())
}

/// Latency-weighted critical-path length.
///
/// `latency` gives each operation's delay in abstract cycles; boundary
/// pseudo-ops always contribute zero regardless of `latency`. The result is
/// the length of the longest path measured as the sum of node latencies — a
/// lower bound on any schedule of the DFG.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
pub fn critical_path(dfg: &Dfg, mut latency: impl FnMut(OpKind) -> u64) -> Result<u64, GraphError> {
    let order = dfg.topo_order()?;
    let mut finish = vec![0u64; dfg.len()];
    let mut longest = 0;
    for n in order {
        let start = dfg
            .preds(n)
            .iter()
            .map(|p| finish[p.index()])
            .max()
            .unwrap_or(0);
        let kind = dfg.node(n).kind;
        let lat = if kind.is_schedulable() {
            latency(kind)
        } else {
            0
        };
        finish[n.index()] = start + lat;
        longest = longest.max(finish[n.index()]);
    }
    Ok(longest)
}

/// Longest path (in latency) from each node to any sink, *including* the
/// node's own latency. This is the classic list-scheduling priority function
/// used by the coarse-grain mapper.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
pub fn path_to_sink(
    dfg: &Dfg,
    mut latency: impl FnMut(OpKind) -> u64,
) -> Result<Vec<u64>, GraphError> {
    let order = dfg.topo_order()?;
    let mut dist = vec![0u64; dfg.len()];
    for &n in order.iter().rev() {
        let below = dfg
            .succs(n)
            .iter()
            .map(|s| dist[s.index()])
            .max()
            .unwrap_or(0);
        let kind = dfg.node(n).kind;
        let lat = if kind.is_schedulable() {
            latency(kind)
        } else {
            0
        };
        dist[n.index()] = below + lat;
    }
    Ok(dist)
}

/// The instruction-level-parallelism profile of a DFG: schedulable
/// operations per ASAP level (index 0 = level 1).
///
/// The profile explains coarse-grain scaling: a datapath with more
/// compute slots than the profile's peak gains nothing on that block
/// (dependency-limited), while blocks whose profile exceeds the slot
/// count are resource-limited and speed up with more CGCs.
///
/// # Errors
///
/// [`GraphError::Cycle`] if the graph is cyclic.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{ilp_profile, Dfg, OpKind};
///
/// # fn main() -> Result<(), amdrel_cdfg::GraphError> {
/// let mut dfg = Dfg::new("w");
/// let a = dfg.add_op(OpKind::Add, 32);
/// let b = dfg.add_op(OpKind::Add, 32);
/// let c = dfg.add_op(OpKind::Add, 32);
/// dfg.add_edge(a, c)?;
/// dfg.add_edge(b, c)?;
/// assert_eq!(ilp_profile(&dfg)?, vec![2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn ilp_profile(dfg: &Dfg) -> Result<Vec<usize>, GraphError> {
    let levels = asap_levels(dfg)?;
    let mut profile = vec![0usize; levels.max_level() as usize];
    for n in dfg.node_ids() {
        if dfg.node(n).kind.is_schedulable() {
            profile[(levels.level(n) - 1) as usize] += 1;
        }
    }
    // Boundary-only levels may be zero; trim trailing zeros for a clean
    // profile but keep interior zeros (they are real stalls).
    while profile.last() == Some(&0) {
        profile.pop();
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        let mut g = Dfg::new("diamond");
        let a = g.add_op(OpKind::LiveIn, 32);
        let b = g.add_op(OpKind::Add, 32);
        let c = g.add_op(OpKind::Mul, 32);
        let d = g.add_op(OpKind::Sub, 32);
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn asap_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let lv = asap_levels(&g).unwrap();
        assert_eq!(lv.level(a), 1);
        assert_eq!(lv.level(b), 2);
        assert_eq!(lv.level(c), 2);
        assert_eq!(lv.level(d), 3);
        assert_eq!(lv.max_level(), 3);
        assert_eq!(lv.nodes_at(2), vec![b, c]);
    }

    #[test]
    fn alap_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let lv = alap_levels(&g, 3).unwrap();
        assert_eq!(lv.level(a), 1);
        assert_eq!(lv.level(b), 2);
        assert_eq!(lv.level(c), 2);
        assert_eq!(lv.level(d), 3);
    }

    #[test]
    fn alap_with_slack() {
        // chain a→b plus isolated node c: with horizon 2, c floats to 2.
        let mut g = Dfg::new("slack");
        let a = g.add_op(OpKind::Add, 32);
        let b = g.add_op(OpKind::Add, 32);
        let c = g.add_op(OpKind::Add, 32);
        g.add_edge(a, b).unwrap();
        let lv = alap_levels(&g, 2).unwrap();
        assert_eq!(lv.level(a), 1);
        assert_eq!(lv.level(b), 2);
        assert_eq!(lv.level(c), 2);
    }

    #[test]
    fn alap_horizon_too_short() {
        let (g, _) = diamond();
        assert!(matches!(
            alap_levels(&g, 2),
            Err(GraphError::HorizonTooShort { horizon: 2 })
        ));
    }

    #[test]
    fn mobility_diamond_is_zero() {
        // Every diamond node is on a critical path.
        let (g, _) = diamond();
        assert_eq!(mobility(&g).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn mobility_nonzero_for_slack_node() {
        let mut g = Dfg::new("m");
        let a = g.add_op(OpKind::Add, 32);
        let b = g.add_op(OpKind::Add, 32);
        let c = g.add_op(OpKind::Add, 32);
        let d = g.add_op(OpKind::Add, 32);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap(); // c can slide to level 2
        assert_eq!(mobility(&g).unwrap()[c.index()], 1);
    }

    #[test]
    fn critical_path_weighted() {
        let (g, _) = diamond();
        // LiveIn=0 (boundary), Add=1, Mul=2, Sub=1 → longest a-c-d = 3.
        let cp = critical_path(&g, |k| match k {
            OpKind::Mul => 2,
            _ => 1,
        })
        .unwrap();
        assert_eq!(cp, 3);
    }

    #[test]
    fn path_to_sink_priorities() {
        let (g, [a, b, c, d]) = diamond();
        let p = path_to_sink(&g, |k| if k == OpKind::Mul { 2 } else { 1 }).unwrap();
        // d: 1; b: 1+1=2; c: 2+1=3; a: boundary 0 + max(2,3)=3.
        assert_eq!(p[d.index()], 1);
        assert_eq!(p[b.index()], 2);
        assert_eq!(p[c.index()], 3);
        assert_eq!(p[a.index()], 3);
    }

    #[test]
    fn empty_graph_levels() {
        let g = Dfg::new("empty");
        let lv = asap_levels(&g).unwrap();
        assert_eq!(lv.max_level(), 0);
        assert_eq!(critical_path(&g, |_| 1).unwrap(), 0);
    }

    #[test]
    fn ilp_profile_diamond() {
        let (g, _) = diamond();
        // Level 1 holds only the (boundary) LiveIn → not counted; levels
        // 2 and 3 hold {add, mul} and {sub}.
        assert_eq!(ilp_profile(&g).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn ilp_profile_sums_to_op_count() {
        let g = crate::synth::random_dfg(5, &crate::synth::SynthConfig::default());
        let profile = ilp_profile(&g).unwrap();
        assert_eq!(profile.iter().sum::<usize>(), g.op_count());
    }

    #[test]
    fn ilp_profile_empty() {
        assert!(ilp_profile(&Dfg::new("e")).unwrap().is_empty());
    }
}
