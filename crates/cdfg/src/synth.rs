//! Deterministic synthetic DFG generation.
//!
//! Benches and property tests need DFGs of controlled size and shape without
//! pulling a frontend in. The generator uses an internal SplitMix64 stream so
//! the same seed always yields the same graph (no dependency on `rand`, no
//! wall-clock input — reproducible across runs and machines).

use crate::dfg::{Dfg, NodeId};
use crate::op::OpKind;

/// A deterministic SplitMix64 pseudo-random stream.
///
/// Small, fast, and good enough for structural test data. Not a
/// cryptographic generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used in test-data generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An independent child stream, seeded from this stream's next value
    /// (the standard SplitMix64 splitting discipline). The parent advances
    /// by one step, so repeated forks yield distinct, reproducible
    /// children — handy for giving each array element or worker its own
    /// stream without sharing mutable state.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Shape parameters for [`random_dfg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of schedulable nodes to generate.
    pub nodes: usize,
    /// Probability of an edge between an earlier and a later node
    /// (per candidate pair, capped by `max_fanin`).
    pub edge_prob: f64,
    /// Maximum predecessors per node (2 models binary operators).
    pub max_fanin: usize,
    /// Fraction of nodes that are multiplications (rest are ALU-class adds).
    pub mul_fraction: f64,
    /// Fraction of nodes that are memory loads.
    pub load_fraction: f64,
    /// Bitwidth stamped on every node.
    pub bitwidth: u16,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            nodes: 32,
            edge_prob: 0.25,
            max_fanin: 2,
            mul_fraction: 0.3,
            load_fraction: 0.1,
            bitwidth: 16,
        }
    }
}

/// Generate a random DAG-shaped DFG.
///
/// Nodes are created in topological order and edges only ever point
/// forward, so the result is acyclic by construction. Nodes left without
/// predecessors act as graph inputs.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::synth::{random_dfg, SynthConfig};
///
/// let dfg = random_dfg(42, &SynthConfig::default());
/// assert_eq!(dfg.len(), 32);
/// assert!(dfg.validate().is_ok());
/// // Determinism: same seed, same graph.
/// assert_eq!(dfg, random_dfg(42, &SynthConfig::default()));
/// ```
pub fn random_dfg(seed: u64, cfg: &SynthConfig) -> Dfg {
    let mut rng = SplitMix64::new(seed);
    let mut dfg = Dfg::new(format!("synth_{seed}"));
    let mut ids: Vec<NodeId> = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let r = rng.unit_f64();
        let kind = if r < cfg.mul_fraction {
            OpKind::Mul
        } else if r < cfg.mul_fraction + cfg.load_fraction {
            OpKind::Load
        } else {
            OpKind::Add
        };
        let id = dfg.add_op(kind, cfg.bitwidth);
        // Wire up to max_fanin random earlier nodes.
        if i > 0 {
            let mut fanin = 0;
            // Sample candidate predecessors, biased toward recent nodes so
            // the graph has depth rather than being a flat fan.
            let attempts = i.clamp(1, 8);
            for _ in 0..attempts {
                if fanin >= cfg.max_fanin || rng.unit_f64() >= cfg.edge_prob * 4.0 {
                    continue;
                }
                let back = 1 + rng.below(i.min(12) as u64) as usize;
                let pred = ids[i - back];
                if dfg.add_edge(pred, id).is_ok() {
                    fanin += 1;
                }
            }
        }
        ids.push(id);
    }
    dfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_matches_reference_vectors() {
        // The published SplitMix64 test vectors (Vigna's reference C
        // implementation, seed 0) — guards the exact output sequence that
        // seeded explorations and synthetic workloads depend on.
        let mut rng = SplitMix64::new(0);
        for expected in [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ] {
            assert_eq!(rng.next_u64(), expected);
        }
        let mut rng = SplitMix64::new(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(rng.next_u64(), 0x901D_4F65_2FB4_72CB);
        assert_eq!(rng.next_u64(), 0xA7CE_2464_40F7_4527);
    }

    #[test]
    fn fork_yields_independent_deterministic_children() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let mut child_a = a.fork();
        let mut child_b = b.fork();
        for _ in 0..32 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
        }
        // Forking advanced the parents identically, and the parent and
        // child streams diverge.
        let next = a.next_u64();
        assert_eq!(next, b.next_u64());
        assert_ne!(next, child_a.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_dfg_is_acyclic_across_seeds() {
        for seed in 0..50 {
            let dfg = random_dfg(seed, &SynthConfig::default());
            assert!(dfg.validate().is_ok(), "seed {seed} produced a cycle");
        }
    }

    #[test]
    fn random_dfg_respects_node_count_and_fanin() {
        let cfg = SynthConfig {
            nodes: 100,
            max_fanin: 2,
            ..SynthConfig::default()
        };
        let dfg = random_dfg(9, &cfg);
        assert_eq!(dfg.len(), 100);
        for n in dfg.node_ids() {
            assert!(dfg.preds(n).len() <= 2);
        }
    }

    #[test]
    fn mul_fraction_zero_yields_no_muls() {
        let cfg = SynthConfig {
            mul_fraction: 0.0,
            load_fraction: 0.0,
            ..SynthConfig::default()
        };
        let dfg = random_dfg(3, &cfg);
        assert!(dfg.iter().all(|(_, n)| n.kind == OpKind::Add));
    }
}
