//! # amdrel-cdfg — Control-Data Flow Graph IR
//!
//! The model of computation of the AMDREL hybrid-reconfigurable partitioning
//! flow (Galanis et al., DATE 2004). Everything downstream — the analysis
//! step, the fine-grain temporal partitioner (Figure 3 of the paper), the
//! coarse-grain CGC scheduler, and the partitioning engine (Figure 2) —
//! consumes the [`Cdfg`]/[`Dfg`] types defined here.
//!
//! * [`Dfg`] — the data-flow graph of one basic block: operation nodes
//!   ([`OpKind`]) and data-dependency edges.
//! * [`Cdfg`] — basic blocks ([`BasicBlock`]) plus control edges.
//! * [`asap_levels`]/[`alap_levels`] — the unit-delay scheduling levels the
//!   fine-grain mapper classifies nodes by.
//! * [`Dominators`]/[`LoopInfo`] — dominance and natural loops, which decide
//!   kernel candidacy ("basic blocks inside loops").
//! * [`dot`] — Graphviz export; [`synth`] — deterministic random DFGs for
//!   tests and benches.
//!
//! # Examples
//!
//! Build a multiply-accumulate DFG and inspect its ASAP levels:
//!
//! ```
//! use amdrel_cdfg::{asap_levels, Dfg, OpKind};
//!
//! # fn main() -> Result<(), amdrel_cdfg::GraphError> {
//! let mut dfg = Dfg::new("mac");
//! let x = dfg.add_op(OpKind::LiveIn, 16);
//! let h = dfg.add_op(OpKind::LiveIn, 16);
//! let m = dfg.add_op(OpKind::Mul, 32);
//! let acc = dfg.add_op(OpKind::Add, 32);
//! dfg.add_edge(x, m)?;
//! dfg.add_edge(h, m)?;
//! dfg.add_edge(m, acc)?;
//!
//! let levels = asap_levels(&dfg)?;
//! assert_eq!(levels.level(m), 2);
//! assert_eq!(levels.level(acc), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cfg;
pub mod dfg;
pub mod dom;
pub mod dot;
pub mod loops;
pub mod op;
pub mod schedule;
pub mod synth;

pub use cfg::{BasicBlock, BlockId, Cdfg};
pub use dfg::{Dfg, DfgNode, NodeId};
pub use dom::Dominators;
pub use loops::{LoopInfo, NaturalLoop};
pub use op::{OpClass, OpKind};
pub use schedule::{
    alap_levels, asap_levels, critical_path, ilp_profile, mobility, path_to_sink, Levels,
};

use std::fmt;

/// Errors raised by graph construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// The offending id.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// A block id referenced a block that does not exist.
    BlockOutOfRange {
        /// The offending id.
        block: BlockId,
        /// Number of blocks in the graph.
        len: usize,
    },
    /// A data edge would make a node depend on itself.
    SelfLoop {
        /// The node with the attempted self-edge.
        node: NodeId,
    },
    /// The graph contains a cycle where a DAG is required.
    Cycle {
        /// Name of the offending graph.
        graph: String,
    },
    /// An ALAP horizon shorter than the graph's critical path was requested.
    HorizonTooShort {
        /// The requested horizon.
        horizon: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            GraphError::BlockOutOfRange { block, len } => {
                write!(f, "block {block} out of range (graph has {len} blocks)")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "data edge {node} -> {node} would form a self-loop")
            }
            GraphError::Cycle { graph } => {
                write!(
                    f,
                    "graph '{graph}' contains a cycle where a DAG is required"
                )
            }
            GraphError::HorizonTooShort { horizon } => {
                write!(
                    f,
                    "ALAP horizon {horizon} is shorter than the critical path"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<GraphError>();
        let e = GraphError::Cycle { graph: "g".into() };
        assert!(e.to_string().contains("cycle"));
    }
}
