//! Natural-loop recognition and loop-nesting depth.
//!
//! The analysis step of the paper restricts kernel candidates to "basic
//! blocks inside loops" (the critical basic blocks "are often located in
//! nested loops"). This module recognises natural loops from back edges
//! (`tail → header` where `header` dominates `tail`) and derives each
//! block's nesting depth, which the profiler's kernel extraction consumes.

use crate::cfg::{BlockId, Cdfg};
use crate::dom::Dominators;
use serde::{Deserialize, Serialize};

/// One natural loop: its header and member blocks (header included).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge; dominates every member).
    pub header: BlockId,
    /// All blocks in the loop, header first, rest in discovery order.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Number of blocks in the loop (≥ 1).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A natural loop always has at least its header, so this is `false`;
    /// provided for API symmetry with collection types.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The loop structure of a [`Cdfg`]: all natural loops plus per-block
/// nesting depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Analyse `cdfg` (computes dominators internally).
    ///
    /// Loops sharing a header are merged into a single natural loop, the
    /// conventional treatment for multiple back edges to one header (e.g. a
    /// `continue` inside a `while`).
    ///
    /// # Panics
    ///
    /// Panics if the CDFG is empty.
    pub fn analyze(cdfg: &Cdfg) -> Self {
        let dom = Dominators::compute(cdfg);
        Self::analyze_with(cdfg, &dom)
    }

    /// Analyse with precomputed dominators (avoids recomputation when the
    /// caller already has them).
    pub fn analyze_with(cdfg: &Cdfg, dom: &Dominators) -> Self {
        // Collect back edges per header.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (tail, header)
        for b in cdfg.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for &s in cdfg.succs(b) {
                if dom.dominates(s, b) {
                    back_edges.push((b, s));
                }
            }
        }
        back_edges.sort_by_key(|&(_, h)| h);

        // Grow each loop body backwards from the tails.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        let mut i = 0;
        while i < back_edges.len() {
            let header = back_edges[i].1;
            let mut in_loop = vec![false; cdfg.len()];
            in_loop[header.index()] = true;
            let mut blocks = vec![header];
            let mut stack: Vec<BlockId> = Vec::new();
            while i < back_edges.len() && back_edges[i].1 == header {
                let tail = back_edges[i].0;
                if !in_loop[tail.index()] {
                    in_loop[tail.index()] = true;
                    blocks.push(tail);
                    stack.push(tail);
                }
                i += 1;
            }
            while let Some(b) = stack.pop() {
                for &p in cdfg.preds(b) {
                    if dom.is_reachable(p) && !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        blocks.push(p);
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop { header, blocks });
        }

        // Depth = number of loops containing the block.
        let mut depth = vec![0u32; cdfg.len()];
        for l in &loops {
            for &b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// All recognised natural loops, ordered by header id.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Nesting depth of `b`: 0 = not in any loop, 1 = innermost level of a
    /// non-nested loop, etc.
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// Whether `b` sits inside at least one loop.
    pub fn in_loop(&self, b: BlockId) -> bool {
        self.depth(b) > 0
    }

    /// The maximum nesting depth in the graph.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BasicBlock;
    use crate::dfg::Dfg;

    fn block(g: &mut Cdfg, label: &str) -> BlockId {
        g.add_block(BasicBlock::from_dfg(label, Dfg::new(label)))
    }

    #[test]
    fn simple_while_loop() {
        let mut g = Cdfg::new("while");
        let entry = block(&mut g, "entry");
        let head = block(&mut g, "head");
        let body = block(&mut g, "body");
        let exit = block(&mut g, "exit");
        g.add_edge(entry, head).unwrap();
        g.add_edge(head, body).unwrap();
        g.add_edge(body, head).unwrap();
        g.add_edge(head, exit).unwrap();
        let li = LoopInfo::analyze(&g);
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert_eq!(l.header, head);
        assert!(l.contains(body) && l.contains(head));
        assert!(!l.contains(entry) && !l.contains(exit));
        assert_eq!(li.depth(body), 1);
        assert_eq!(li.depth(entry), 0);
        assert!(li.in_loop(head));
    }

    #[test]
    fn nested_loops_depth_two() {
        // entry → oh; oh → ob; ob → ih; ih → ib; ib → ih(back); ih → ob2;
        // ob2 → oh(back); oh → exit.
        let mut g = Cdfg::new("nested");
        let entry = block(&mut g, "entry");
        let oh = block(&mut g, "outer_head");
        let ob = block(&mut g, "outer_body");
        let ih = block(&mut g, "inner_head");
        let ib = block(&mut g, "inner_body");
        let ob2 = block(&mut g, "outer_tail");
        let exit = block(&mut g, "exit");
        g.add_edge(entry, oh).unwrap();
        g.add_edge(oh, ob).unwrap();
        g.add_edge(ob, ih).unwrap();
        g.add_edge(ih, ib).unwrap();
        g.add_edge(ib, ih).unwrap();
        g.add_edge(ih, ob2).unwrap();
        g.add_edge(ob2, oh).unwrap();
        g.add_edge(oh, exit).unwrap();
        let li = LoopInfo::analyze(&g);
        assert_eq!(li.loops().len(), 2);
        assert_eq!(li.depth(ib), 2);
        assert_eq!(li.depth(ih), 2);
        assert_eq!(li.depth(ob), 1);
        assert_eq!(li.depth(ob2), 1);
        assert_eq!(li.depth(exit), 0);
        assert_eq!(li.max_depth(), 2);
    }

    #[test]
    fn self_loop_block() {
        let mut g = Cdfg::new("tight");
        let entry = block(&mut g, "entry");
        let b = block(&mut g, "spin");
        let exit = block(&mut g, "exit");
        g.add_edge(entry, b).unwrap();
        g.add_edge(b, b).unwrap();
        g.add_edge(b, exit).unwrap();
        let li = LoopInfo::analyze(&g);
        assert_eq!(li.loops().len(), 1);
        assert_eq!(li.loops()[0].blocks, vec![b]);
        assert_eq!(li.depth(b), 1);
    }

    #[test]
    fn two_back_edges_one_header_merge() {
        // head → b1 → head, head → b2 → head: one loop {head, b1, b2}.
        let mut g = Cdfg::new("continue");
        let entry = block(&mut g, "entry");
        let head = block(&mut g, "head");
        let b1 = block(&mut g, "b1");
        let b2 = block(&mut g, "b2");
        let exit = block(&mut g, "exit");
        g.add_edge(entry, head).unwrap();
        g.add_edge(head, b1).unwrap();
        g.add_edge(head, b2).unwrap();
        g.add_edge(b1, head).unwrap();
        g.add_edge(b2, head).unwrap();
        g.add_edge(head, exit).unwrap();
        let li = LoopInfo::analyze(&g);
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert_eq!(l.len(), 3);
        assert!(l.contains(b1) && l.contains(b2));
        assert_eq!(li.depth(b1), 1);
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let mut g = Cdfg::new("straight");
        let a = block(&mut g, "a");
        let b = block(&mut g, "b");
        g.add_edge(a, b).unwrap();
        let li = LoopInfo::analyze(&g);
        assert!(li.loops().is_empty());
        assert_eq!(li.max_depth(), 0);
    }
}
