//! Property-based tests for the graph IR invariants.

use amdrel_cdfg::synth::{random_dfg, SynthConfig};
use amdrel_cdfg::{alap_levels, asap_levels, critical_path, mobility, path_to_sink, OpKind};
use proptest::prelude::*;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        2usize..120,
        0.05f64..0.6,
        1usize..4,
        0.0f64..0.5,
        0.0f64..0.3,
    )
        .prop_map(
            |(nodes, edge_prob, max_fanin, mul_fraction, load_fraction)| SynthConfig {
                nodes,
                edge_prob,
                max_fanin,
                mul_fraction,
                load_fraction,
                bitwidth: 16,
            },
        )
}

proptest! {
    /// ASAP levels strictly increase along every data edge.
    #[test]
    fn asap_respects_edges(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let lv = asap_levels(&dfg).unwrap();
        for n in dfg.node_ids() {
            for &s in dfg.succs(n) {
                prop_assert!(lv.level(n) < lv.level(s));
            }
        }
    }

    /// ALAP levels (at the ASAP horizon) also respect all edges, and every
    /// node's ALAP is at or after its ASAP.
    #[test]
    fn alap_respects_edges_and_bounds(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let asap = asap_levels(&dfg).unwrap();
        let alap = alap_levels(&dfg, asap.max_level()).unwrap();
        for n in dfg.node_ids() {
            prop_assert!(asap.level(n) <= alap.level(n));
            for &s in dfg.succs(n) {
                prop_assert!(alap.level(n) < alap.level(s));
            }
        }
    }

    /// Mobility is exactly alap - asap and never negative (checked via the
    /// subtraction not panicking and matching the direct computation).
    #[test]
    fn mobility_matches_direct(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let asap = asap_levels(&dfg).unwrap();
        let alap = alap_levels(&dfg, asap.max_level()).unwrap();
        let mob = mobility(&dfg).unwrap();
        for n in dfg.node_ids() {
            prop_assert_eq!(mob[n.index()], alap.level(n) - asap.level(n));
        }
    }

    /// The unit-latency critical path equals the maximum ASAP level over
    /// schedulable-only graphs (all synth nodes are schedulable).
    #[test]
    fn unit_critical_path_is_max_level(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let lv = asap_levels(&dfg).unwrap();
        let cp = critical_path(&dfg, |_| 1).unwrap();
        prop_assert_eq!(cp, u64::from(lv.max_level()));
    }

    /// path_to_sink of any source node equals the weighted critical path of
    /// the subgraph below it; in particular the max over all nodes equals
    /// the graph's critical path.
    #[test]
    fn max_path_to_sink_is_critical_path(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let lat = |k: OpKind| if k == OpKind::Mul { 2 } else { 1 };
        let p = path_to_sink(&dfg, lat).unwrap();
        let cp = critical_path(&dfg, lat).unwrap();
        prop_assert_eq!(p.iter().copied().max().unwrap_or(0), cp);
    }

    /// Topological order emitted by the graph is a permutation of all nodes
    /// that respects every edge.
    #[test]
    fn topo_order_is_valid_permutation(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let order = dfg.topo_order().unwrap();
        prop_assert_eq!(order.len(), dfg.len());
        let mut pos = vec![usize::MAX; dfg.len()];
        for (i, n) in order.iter().enumerate() {
            pos[n.index()] = i;
        }
        prop_assert!(pos.iter().all(|&p| p != usize::MAX));
        for n in dfg.node_ids() {
            for &s in dfg.succs(n) {
                prop_assert!(pos[n.index()] < pos[s.index()]);
            }
        }
    }

    /// Generated graphs honour the configured fan-in cap.
    #[test]
    fn synth_fanin_cap(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        for n in dfg.node_ids() {
            prop_assert!(dfg.preds(n).len() <= cfg.max_fanin);
        }
    }
}
