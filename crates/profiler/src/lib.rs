//! # amdrel-profiler — analysis step of the AMDREL partitioning flow
//!
//! Implements step 3 of the paper's Figure 2: identify the dominant
//! kernels of the application by combining
//!
//! * **dynamic analysis** — run the program on representative inputs and
//!   count how often every basic block executes (the paper places Lex
//!   counters in the source; here the [`Interpreter`] counts block entries
//!   of the same IR the partitioner sees), and
//! * **static analysis** — a weighted operation count per basic block
//!   ([`bb_weight`], weights ALU = 1 / MUL = 2 exactly as §4).
//!
//! The two are combined by eq. (1), `total_weight = exec_freq × bb_weight`,
//! and blocks inside loops are ranked in descending order of total weight
//! ([`AnalysisReport`]) — that ordering is the queue the partitioning
//! engine drains when it moves kernels to the coarse-grain datapath.
//!
//! # Examples
//!
//! ```
//! use amdrel_minic::compile;
//! use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     int data[32];
//!     int main() {
//!         int acc = 0;
//!         for (int i = 0; i < 32; i++) {
//!             acc += data[i] * data[i];
//!         }
//!         return acc;
//!     }
//! "#;
//! let program = compile(src, "main")?;
//! let exec = Interpreter::new(&program.ir).run(&[("data", &[3; 32])])?;
//! let report =
//!     AnalysisReport::analyze(&program.cdfg, &exec.block_counts, &WeightTable::paper());
//! let top = report.top_kernels(1);
//! assert_eq!(top[0].exec_freq, 32); // the loop body dominates
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod interp;
mod weights;

pub use analysis::{AnalysisReport, BlockProfile};
pub use interp::{Execution, Interpreter, DEFAULT_STEP_LIMIT};
pub use weights::{bb_weight, WeightTable};

use std::fmt;

/// Errors produced by profiling runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// An input name did not match any global array.
    UnknownInput {
        /// The unmatched name.
        name: String,
    },
    /// An input vector was longer than its target array.
    InputTooLong {
        /// The input name.
        name: String,
        /// Provided length.
        len: usize,
        /// Array capacity.
        capacity: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Shift amount outside `0..64`.
    ShiftOutOfRange {
        /// The offending amount.
        amount: i64,
    },
    /// Array access outside its bounds.
    IndexOutOfBounds {
        /// Array name.
        array: String,
        /// The offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// The configured instruction budget was exhausted.
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::UnknownInput { name } => {
                write!(f, "input '{name}' does not name a global array")
            }
            ProfileError::InputTooLong {
                name,
                len,
                capacity,
            } => write!(
                f,
                "input '{name}' has {len} values but the array holds {capacity}"
            ),
            ProfileError::DivisionByZero => f.write_str("division by zero"),
            ProfileError::ShiftOutOfRange { amount } => {
                write!(f, "shift amount {amount} outside 0..64")
            }
            ProfileError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for '{array}' (len {len})")
            }
            ProfileError::StepLimit { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ProfileError>();
        assert!(ProfileError::DivisionByZero.to_string().contains("zero"));
    }
}
