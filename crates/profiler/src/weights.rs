//! Static analysis: weighted operation counting per basic block.
//!
//! §3.1 of the paper: "Since operations in a basic block do not have a
//! uniform cost, a weighted sum is calculated and aggregated at the basic
//! block level … The weights indicate the delay allocated to each basic
//! operator." The experiments use ALU = 1 and MUL = 2; memory accesses are
//! counted alongside basic operations.

use amdrel_cdfg::{Dfg, OpClass};
use serde::{Deserialize, Serialize};

/// Per-class operation weights for eq. (1)'s `bb_weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightTable {
    /// Weight of ALU-class operations (paper: 1).
    pub alu: u64,
    /// Weight of multiplications (paper: 2).
    pub mul: u64,
    /// Weight of divisions (absent from the paper's DFGs; default 16
    /// reflects a typical iterative divider).
    pub div: u64,
    /// Weight of memory accesses (counted by the paper; weight 1 here).
    pub mem: u64,
}

impl WeightTable {
    /// The paper's weights: ALU 1, MUL 2, memory access 1, DIV 16.
    pub fn paper() -> Self {
        WeightTable {
            alu: 1,
            mul: 2,
            div: 16,
            mem: 1,
        }
    }

    /// The weight of one operation class. Boundary pseudo-ops weigh 0.
    pub fn class_weight(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Mem => self.mem,
            OpClass::Boundary => 0,
        }
    }
}

impl Default for WeightTable {
    fn default() -> Self {
        WeightTable::paper()
    }
}

/// The `bb_weight` of eq. (1): the weighted sum of a block's operations.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
/// use amdrel_profiler::{bb_weight, WeightTable};
///
/// let mut dfg = Dfg::new("mac");
/// dfg.add_op(OpKind::Mul, 16);
/// dfg.add_op(OpKind::Add, 16);
/// dfg.add_op(OpKind::Const, 16); // boundary: free
/// assert_eq!(bb_weight(&dfg, &WeightTable::paper()), 3); // 2 + 1
/// ```
pub fn bb_weight(dfg: &Dfg, table: &WeightTable) -> u64 {
    dfg.iter()
        .map(|(_, n)| table.class_weight(n.kind.class()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::OpKind;

    #[test]
    fn paper_weights() {
        let t = WeightTable::paper();
        assert_eq!(t.class_weight(OpClass::Alu), 1);
        assert_eq!(t.class_weight(OpClass::Mul), 2);
        assert_eq!(t.class_weight(OpClass::Boundary), 0);
    }

    #[test]
    fn weight_sums_by_class() {
        let mut dfg = Dfg::new("w");
        for _ in 0..3 {
            dfg.add_op(OpKind::Add, 32);
        }
        for _ in 0..2 {
            dfg.add_op(OpKind::Mul, 32);
        }
        dfg.add_op(OpKind::Load, 32);
        dfg.add_op(OpKind::LiveIn, 32);
        let custom = WeightTable {
            alu: 1,
            mul: 2,
            div: 16,
            mem: 5,
        };
        assert_eq!(bb_weight(&dfg, &custom), 3 + 4 + 5);
    }

    #[test]
    fn empty_block_weighs_zero() {
        assert_eq!(bb_weight(&Dfg::new("e"), &WeightTable::paper()), 0);
    }
}
