//! The combined analysis step (step 3 of Figure 2): merge dynamic
//! execution frequencies with static block weights, compute eq. (1)'s
//! `total_weight = exec_freq × bb_weight`, and extract the ordered kernel
//! list the partitioning engine consumes.

use crate::weights::{bb_weight, WeightTable};
use amdrel_cdfg::{BlockId, Cdfg, LoopInfo};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Analysis results for one basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockProfile {
    /// The block.
    pub block: BlockId,
    /// The block's label.
    pub label: String,
    /// Dynamic execution frequency (`Iter(BB)` in eqs. (3)/(4)).
    pub exec_freq: u64,
    /// Static weighted operation count (`bb_weight` in eq. (1)).
    pub bb_weight: u64,
    /// `exec_freq × bb_weight` (eq. (1)).
    pub total_weight: u64,
    /// Loop-nesting depth (kernel candidates have depth ≥ 1).
    pub loop_depth: u32,
}

/// Output of the analysis step: per-block profiles plus the kernel
/// ordering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    blocks: Vec<BlockProfile>,
    kernels: Vec<BlockId>,
}

impl AnalysisReport {
    /// Run the analysis over a CDFG and its measured execution counts
    /// (`exec_freq[i]` belongs to block `i`).
    ///
    /// Kernels are the blocks inside loops with non-zero dynamic weight,
    /// "sorted in descending order of computational complexity" (§3.1);
    /// ties break toward the lower block id for determinism.
    ///
    /// # Panics
    ///
    /// Panics if `exec_freq.len() != cdfg.len()`.
    pub fn analyze(cdfg: &Cdfg, exec_freq: &[u64], table: &WeightTable) -> Self {
        assert_eq!(
            exec_freq.len(),
            cdfg.len(),
            "one execution count per CDFG block"
        );
        let loops = LoopInfo::analyze(cdfg);
        let blocks: Vec<BlockProfile> = cdfg
            .iter()
            .map(|(id, bb)| {
                let w = bb_weight(&bb.dfg, table);
                let freq = exec_freq[id.index()];
                BlockProfile {
                    block: id,
                    label: bb.label.clone(),
                    exec_freq: freq,
                    bb_weight: w,
                    total_weight: freq.saturating_mul(w),
                    loop_depth: loops.depth(id),
                }
            })
            .collect();
        let mut kernels: Vec<BlockId> = blocks
            .iter()
            .filter(|b| b.loop_depth >= 1 && b.total_weight > 0)
            .map(|b| b.block)
            .collect();
        kernels.sort_by_key(|&id| {
            let b = &blocks[id.index()];
            (std::cmp::Reverse(b.total_weight), id)
        });
        AnalysisReport { blocks, kernels }
    }

    /// Profile of every block, in block order.
    pub fn blocks(&self) -> &[BlockProfile] {
        &self.blocks
    }

    /// Profile of one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BlockProfile {
        &self.blocks[id.index()]
    }

    /// Kernel candidates in descending `total_weight` order — the order
    /// the partitioning engine moves them to the coarse-grain hardware.
    pub fn kernels(&self) -> &[BlockId] {
        &self.kernels
    }

    /// The `n` heaviest kernels (Table 1 reports the top 8).
    pub fn top_kernels(&self, n: usize) -> Vec<&BlockProfile> {
        self.kernels
            .iter()
            .take(n)
            .map(|&id| self.block(id))
            .collect()
    }

    /// Total dynamic weight over all blocks (a proxy for whole-application
    /// work).
    pub fn total_dynamic_weight(&self) -> u64 {
        self.blocks.iter().map(|b| b.total_weight).sum()
    }

    /// Render the paper's Table 1 ("Ordered total weights of basic
    /// blocks") for this application: block number, execution frequency,
    /// operations weight, total weight.
    pub fn format_table1(&self, title: &str, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>14}",
            "BB no.", "exec. freq.", "ops weight", "total weight"
        );
        for b in self.top_kernels(n) {
            let _ = writeln!(
                out,
                "{:<10} {:>12} {:>12} {:>14}",
                b.block.index(),
                b.exec_freq,
                b.bb_weight,
                b.total_weight
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;

    fn analyze_src(
        src: &str,
        inputs: &[(&str, &[i64])],
    ) -> (amdrel_minic::CompiledProgram, AnalysisReport) {
        let c = compile(src, "main").unwrap();
        let exec = crate::Interpreter::new(&c.ir).run(inputs).unwrap();
        let report = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        (c, report)
    }

    #[test]
    fn hot_inner_loop_ranks_first() {
        let src = r#"
            int a[64];
            int main() {
                int light = 0;
                for (int i = 0; i < 4; i++) { light = light + 1; }
                int heavy = 0;
                for (int i = 0; i < 64; i++) {
                    heavy = heavy + a[i] * a[i] * 3;
                }
                return light + heavy;
            }
        "#;
        let (_, report) = analyze_src(src, &[]);
        let kernels = report.kernels();
        assert!(!kernels.is_empty());
        let first = report.block(kernels[0]);
        // The heavy body must outrank everything else.
        for &k in &kernels[1..] {
            assert!(report.block(k).total_weight <= first.total_weight);
        }
        assert!(first.bb_weight >= 4, "heavy body has mul+mul+add+loads");
        assert_eq!(first.exec_freq, 64);
    }

    #[test]
    fn total_weight_is_product(/* eq. (1) */) {
        let (_, report) = analyze_src(
            "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i * i; } return s; }",
            &[],
        );
        for b in report.blocks() {
            assert_eq!(b.total_weight, b.exec_freq * b.bb_weight);
        }
    }

    #[test]
    fn kernels_exclude_straightline_blocks() {
        let (_, report) = analyze_src(
            "int main() { int x = 3 * 3; for (int i = 0; i < 4; i++) { x += i * x; } return x; }",
            &[],
        );
        for &k in report.kernels() {
            assert!(report.block(k).loop_depth >= 1);
        }
    }

    #[test]
    fn kernels_sorted_descending() {
        let (_, report) = analyze_src(
            r#"
            int main() {
                int a = 0;
                for (int i = 0; i < 100; i++) { a += i * i * i; }
                int b = 0;
                for (int i = 0; i < 10; i++) { b += i; }
                return a + b;
            }
            "#,
            &[],
        );
        let ws: Vec<u64> = report
            .kernels()
            .iter()
            .map(|&k| report.block(k).total_weight)
            .collect();
        let mut sorted = ws.clone();
        sorted.sort_by(|x, y| y.cmp(x));
        assert_eq!(ws, sorted);
    }

    #[test]
    fn table1_formatting() {
        let (_, report) = analyze_src(
            "int main() { int s = 0; for (int i = 0; i < 8; i++) { s += i * i; } return s; }",
            &[],
        );
        let t = report.format_table1("test app", 8);
        assert!(t.contains("BB no."));
        assert!(t.contains("total weight"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "one execution count per CDFG block")]
    fn mismatched_counts_panic() {
        let c = compile("int main() { return 0; }", "main").unwrap();
        AnalysisReport::analyze(&c.cdfg, &[], &WeightTable::paper());
    }
}
