//! The IR interpreter — the dynamic-analysis half of the paper's step 3.
//!
//! The paper instruments the C source with Lex-placed counters, compiles
//! and runs it on representative inputs, and reads back per-basic-block
//! execution counts. Here the same effect comes from interpreting the very
//! IR the partitioner works on: every block entry bumps a counter, so
//! `exec_freq` aligns with CDFG blocks by construction.
//!
//! Arithmetic is 64-bit two's complement with wrapping, the common choice
//! for simulating 32-bit DSP code with headroom. Division by zero and
//! out-of-bounds array accesses abort with a [`ProfileError`], as does
//! exceeding the configurable step budget (which turns accidental infinite
//! loops into errors instead of hangs).

use crate::ProfileError;
use amdrel_minic::ast::{BinOp, UnOp};
use amdrel_minic::ir::{ArrayRef, Instr, IrProgram, Operand, Terminator};
use std::collections::HashMap;

/// Result of one interpreted run.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Per-block entry counts, indexed by IR/CDFG block index.
    pub block_counts: Vec<u64>,
    /// Total instructions retired (terminators excluded).
    pub instrs_retired: u64,
    /// The entry function's return value, if it returned one.
    pub return_value: Option<i64>,
    /// Final contents of every global array, by name.
    pub globals: HashMap<String, Vec<i64>>,
}

impl Execution {
    /// Final contents of the named global array.
    pub fn global(&self, name: &str) -> Option<&[i64]> {
        self.globals.get(name).map(Vec::as_slice)
    }
}

/// Interpreter for a compiled [`IrProgram`].
///
/// # Examples
///
/// ```
/// use amdrel_minic::compile_to_ir;
/// use amdrel_profiler::Interpreter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ir = compile_to_ir(
///     "int out[1]; int main() { out[0] = 6 * 7; return out[0]; }",
///     "main",
/// )?;
/// let exec = Interpreter::new(&ir).run(&[])?;
/// assert_eq!(exec.return_value, Some(42));
/// assert_eq!(exec.global("out"), Some(&[42][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter<'p> {
    ir: &'p IrProgram,
    step_limit: u64,
}

/// Default instruction budget: generous enough for a 256×256 JPEG encode,
/// small enough to stop runaways in seconds.
pub const DEFAULT_STEP_LIMIT: u64 = 500_000_000;

impl<'p> Interpreter<'p> {
    /// An interpreter with the default step budget.
    pub fn new(ir: &'p IrProgram) -> Self {
        Interpreter {
            ir,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Replace the step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Run the program. `inputs` overwrites named global arrays before
    /// execution (shorter vectors set a prefix; the rest keeps its
    /// initialiser value).
    ///
    /// # Errors
    ///
    /// [`ProfileError`] on unknown input names, oversized inputs, division
    /// by zero, out-of-range shifts/indices, or step-budget exhaustion.
    pub fn run(&self, inputs: &[(&str, &[i64])]) -> Result<Execution, ProfileError> {
        let f = &self.ir.entry;
        let mut globals: Vec<Vec<i64>> = self.ir.globals.iter().map(|g| g.init.clone()).collect();
        for (name, data) in inputs {
            let gi = self
                .ir
                .globals
                .iter()
                .position(|g| g.name == *name)
                .ok_or_else(|| ProfileError::UnknownInput {
                    name: (*name).to_owned(),
                })?;
            if data.len() > globals[gi].len() {
                return Err(ProfileError::InputTooLong {
                    name: (*name).to_owned(),
                    len: data.len(),
                    capacity: globals[gi].len(),
                });
            }
            globals[gi][..data.len()].copy_from_slice(data);
        }

        let mut locals: Vec<Vec<i64>> = f.arrays.iter().map(|a| vec![0; a.len]).collect();
        let mut vars: Vec<i64> = vec![0; f.vars.len()];
        let mut counts = vec![0u64; f.blocks.len()];
        let mut retired: u64 = 0;
        let mut block = f.entry();
        let return_value = loop {
            counts[block.index()] += 1;
            let b = &f.blocks[block.index()];
            for instr in &b.instrs {
                retired += 1;
                if retired > self.step_limit {
                    return Err(ProfileError::StepLimit {
                        limit: self.step_limit,
                    });
                }
                self.exec_instr(instr, &mut vars, &mut globals, &mut locals)?;
            }
            match &b.term {
                Terminator::Jump(t) => block = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    block = if read(*cond, &vars) != 0 {
                        *then_bb
                    } else {
                        *else_bb
                    };
                }
                Terminator::Return(v) => break v.map(|v| read(v, &vars)),
            }
        };

        let globals_out = self
            .ir
            .globals
            .iter()
            .zip(globals)
            .map(|(g, data)| (g.name.clone(), data))
            .collect();
        Ok(Execution {
            block_counts: counts,
            instrs_retired: retired,
            return_value,
            globals: globals_out,
        })
    }

    fn exec_instr(
        &self,
        instr: &Instr,
        vars: &mut [i64],
        globals: &mut [Vec<i64>],
        locals: &mut [Vec<i64>],
    ) -> Result<(), ProfileError> {
        match instr {
            Instr::Bin { op, dst, lhs, rhs } => {
                let a = read(*lhs, vars);
                let b = read(*rhs, vars);
                vars[dst.index()] = eval_bin(*op, a, b)?;
            }
            Instr::Un { op, dst, src } => {
                let v = read(*src, vars);
                vars[dst.index()] = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                    UnOp::LogicalNot => i64::from(v == 0),
                };
            }
            Instr::Copy { dst, src } => {
                vars[dst.index()] = read(*src, vars);
            }
            Instr::Load { dst, array, index } => {
                let i = read(*index, vars);
                let slice = array_slice(*array, globals, locals);
                let name = self.array_name(*array);
                let v = checked_index(slice, i, name)?;
                vars[dst.index()] = v;
            }
            Instr::Store {
                array,
                index,
                value,
            } => {
                let i = read(*index, vars);
                let v = read(*value, vars);
                let name = self.array_name(*array);
                let slice = array_slice_mut(*array, globals, locals);
                let cell = checked_index_mut(slice, i, name)?;
                *cell = v;
            }
        }
        Ok(())
    }

    fn array_name(&self, array: ArrayRef) -> String {
        match array {
            ArrayRef::Global(g) => self.ir.globals[g as usize].name.clone(),
            ArrayRef::Local(a) => self.ir.entry.arrays[a as usize].name.clone(),
        }
    }
}

fn read(op: Operand, vars: &[i64]) -> i64 {
    match op {
        Operand::Var(v) => vars[v.index()],
        Operand::Const(c) => c,
    }
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Result<i64, ProfileError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(ProfileError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(ProfileError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if !(0..64).contains(&b) {
                return Err(ProfileError::ShiftOutOfRange { amount: b });
            }
            a.wrapping_shl(b as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&b) {
                return Err(ProfileError::ShiftOutOfRange { amount: b });
            }
            a.wrapping_shr(b as u32)
        }
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
    })
}

fn array_slice<'a>(array: ArrayRef, globals: &'a [Vec<i64>], locals: &'a [Vec<i64>]) -> &'a [i64] {
    match array {
        ArrayRef::Global(g) => &globals[g as usize],
        ArrayRef::Local(a) => &locals[a as usize],
    }
}

fn array_slice_mut<'a>(
    array: ArrayRef,
    globals: &'a mut [Vec<i64>],
    locals: &'a mut [Vec<i64>],
) -> &'a mut [i64] {
    match array {
        ArrayRef::Global(g) => &mut globals[g as usize],
        ArrayRef::Local(a) => &mut locals[a as usize],
    }
}

fn checked_index(slice: &[i64], i: i64, name: String) -> Result<i64, ProfileError> {
    usize::try_from(i)
        .ok()
        .and_then(|i| slice.get(i).copied())
        .ok_or(ProfileError::IndexOutOfBounds {
            array: name,
            index: i,
            len: slice.len(),
        })
}

fn checked_index_mut(slice: &mut [i64], i: i64, name: String) -> Result<&mut i64, ProfileError> {
    let len = slice.len();
    usize::try_from(i)
        .ok()
        .and_then(move |idx| slice.get_mut(idx))
        .ok_or(ProfileError::IndexOutOfBounds {
            array: name,
            index: i,
            len,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile_to_ir;

    fn run(src: &str) -> Execution {
        let ir = compile_to_ir(src, "main").unwrap();
        Interpreter::new(&ir).run(&[]).unwrap()
    }

    fn run_err(src: &str) -> ProfileError {
        let ir = compile_to_ir(src, "main").unwrap();
        Interpreter::new(&ir).run(&[]).unwrap_err()
    }

    #[test]
    fn arithmetic_and_logic() {
        let e = run(
            "int main() { int a = 7; int b = 3; return (a / b) * 100 + (a % b) * 10 + (a ^ b); }",
        );
        assert_eq!(e.return_value, Some(200 + 10 + 4));
    }

    #[test]
    fn shifts_and_comparisons() {
        let e = run("int main() { int x = 1 << 10; return (x >> 3) + (x > 0) + (x == 1024); }");
        assert_eq!(e.return_value, Some(128 + 1 + 1));
    }

    #[test]
    fn loop_counts_are_exact() {
        let src = "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }";
        let e = run(src);
        assert_eq!(e.return_value, Some(45));
        // Body executed exactly 10 times: find a block with count 10 that
        // is not the (11×) condition block.
        assert!(e.block_counts.contains(&10));
        assert!(e.block_counts.contains(&11));
    }

    #[test]
    fn nested_loop_counts_multiply() {
        let src = "int main() { int n = 0; for (int i = 0; i < 6; i++) { for (int j = 0; j < 7; j++) { n++; } } return n; }";
        let e = run(src);
        assert_eq!(e.return_value, Some(42));
        assert!(e.block_counts.contains(&42));
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let e =
            run("int main() { int i = 100; int n = 0; do { n++; i++; } while (i < 0); return n; }");
        assert_eq!(e.return_value, Some(1));
    }

    #[test]
    fn short_circuit_semantics() {
        // Division by zero on the RHS must NOT run when the LHS is false.
        let e = run(
            "int main() { int zero = 0; int t = 0; if (zero && (1 / zero)) { t = 1; } return t; }",
        );
        assert_eq!(e.return_value, Some(0));
    }

    #[test]
    fn ternary_evaluation() {
        let e = run("int main() { int a = 5; return a > 3 ? a * 2 : a - 1; }");
        assert_eq!(e.return_value, Some(10));
    }

    #[test]
    fn global_arrays_and_inputs() {
        let ir = compile_to_ir(
            "int x[4]; int y[4]; int main() { for (int i = 0; i < 4; i++) { y[i] = x[i] * x[i]; } return y[3]; }",
            "main",
        )
        .unwrap();
        let e = Interpreter::new(&ir).run(&[("x", &[1, 2, 3, 4])]).unwrap();
        assert_eq!(e.return_value, Some(16));
        assert_eq!(e.global("y"), Some(&[1, 4, 9, 16][..]));
    }

    #[test]
    fn function_inlining_preserves_semantics() {
        let e = run(
            "int fib_step(int a, int b) { return a + b; }\n             int main() { int a = 0; int b = 1; for (int i = 0; i < 10; i++) { int c = fib_step(a, b); a = b; b = c; } return a; }",
        );
        assert_eq!(e.return_value, Some(55)); // fib(10)
    }

    #[test]
    fn local_arrays_are_zeroed() {
        let e = run("int main() { int buf[8]; int s = 0; for (int i = 0; i < 8; i++) { s += buf[i]; } return s; }");
        assert_eq!(e.return_value, Some(0));
    }

    #[test]
    fn division_by_zero_reported() {
        assert!(matches!(
            run_err("int main() { int z = 0; return 1 / z; }"),
            ProfileError::DivisionByZero
        ));
    }

    #[test]
    fn index_out_of_bounds_reported() {
        let e = run_err("int a[4]; int main() { int i = 9; return a[i]; }");
        assert!(matches!(
            e,
            ProfileError::IndexOutOfBounds {
                index: 9,
                len: 4,
                ..
            }
        ));
    }

    #[test]
    fn negative_index_reported() {
        let e = run_err("int a[4]; int main() { int i = 0 - 1; return a[i]; }");
        assert!(matches!(
            e,
            ProfileError::IndexOutOfBounds { index: -1, .. }
        ));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let ir = compile_to_ir(
            "int main() { int x = 1; while (1) { x++; } return x; }",
            "main",
        )
        .unwrap();
        let e = Interpreter::new(&ir)
            .with_step_limit(10_000)
            .run(&[])
            .unwrap_err();
        assert!(matches!(e, ProfileError::StepLimit { limit: 10_000 }));
    }

    #[test]
    fn unknown_input_rejected() {
        let ir = compile_to_ir("int main() { return 0; }", "main").unwrap();
        assert!(matches!(
            Interpreter::new(&ir).run(&[("nope", &[1])]),
            Err(ProfileError::UnknownInput { .. })
        ));
    }

    #[test]
    fn oversized_input_rejected() {
        let ir = compile_to_ir("int a[2]; int main() { return a[0]; }", "main").unwrap();
        assert!(matches!(
            Interpreter::new(&ir).run(&[("a", &[1, 2, 3])]),
            Err(ProfileError::InputTooLong { .. })
        ));
    }

    #[test]
    fn wrapping_arithmetic_matches_two_complement() {
        let e = run("int main() { long big = 0x7FFFFFFFFFFFFFFF; return (big + 1) < 0; }");
        assert_eq!(e.return_value, Some(1));
    }

    #[test]
    fn break_and_continue_semantics() {
        let e = run(
            "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i == 3) { continue; } if (i == 7) { break; } s += i; } return s; }",
        );
        // 0+1+2+4+5+6 = 18
        assert_eq!(e.return_value, Some(18));
    }
}
