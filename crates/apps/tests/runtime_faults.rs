//! Acceptance tests for the deterministic fault-injection and recovery
//! layer on the real case-study mix (ISSUE 7): an inert fault spec
//! reproduces the committed `BENCH_runtime.json` baseline exactly, and
//! under live faults graceful degradation strictly beats
//! abort-on-exhaustion on goodput and job loss while configuration
//! affinity keeps its reconfiguration-stall advantage.

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_runtime::{
    policy_by_name, AppProfile, FaultSpec, Job, RecoveryPolicy, Simulation, WorkloadSpec,
};
use std::sync::OnceLock;

/// The standard mix on the paper's small platform, built once.
fn mix() -> &'static (Platform, Vec<AppProfile>) {
    static MIX: OnceLock<(Platform, Vec<AppProfile>)> = OnceLock::new();
    MIX.get_or_init(|| {
        let platform = Platform::paper(1500, 2);
        let profiles = standard_mix(&platform).expect("standard mix builds");
        (platform, profiles)
    })
}

/// The exact seeded 400-job stream the committed `BENCH_runtime.json`
/// baseline was generated from (`examples/bench_report.rs`).
fn baseline_stream(profiles: &[AppProfile]) -> Vec<Job> {
    WorkloadSpec::uniform(42, 400, profiles, 130).generate(profiles)
}

/// Extract `"key": <integer>` from a JSON fragment without a JSON
/// parser (no serde in the offline vendor set).
fn json_u64(fragment: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let start = fragment
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {fragment}"))
        + needle.len();
    fragment[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not an integer in {fragment}"))
}

/// The committed `BENCH_runtime.json` row for `policy`, located by name.
fn committed_policy_row(bench: &str, policy: &str) -> String {
    bench
        .lines()
        .find(|l| l.contains(&format!("\"name\": \"{policy}\"")))
        .unwrap_or_else(|| panic!("no {policy} row in BENCH_runtime.json"))
        .to_owned()
}

#[test]
fn inert_fault_spec_reproduces_the_committed_baseline() {
    let bench = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_runtime.json"
    ))
    .expect("committed BENCH_runtime.json");
    assert!(
        bench.contains("\"schema\": \"amdrel-runtime-report/v5\""),
        "baseline schema must be v4"
    );
    let (platform, profiles) = mix();
    let jobs = baseline_stream(profiles);
    for name in ["fcfs", "sjf", "priority", "affinity"] {
        let policy = policy_by_name(name).expect("built-in policy");
        // Thread a zero-rate spec (and a non-default recovery policy)
        // through the engine: every simulated quantity must match the
        // committed baseline, which was produced by the same path.
        let report = Simulation::new(platform)
            .profiles(profiles)
            .policy(policy.as_ref())
            .faults(FaultSpec::uniform(99, 0))
            .recovery(RecoveryPolicy {
                max_retries: 11,
                degrade: true,
                ..RecoveryPolicy::default()
            })
            .run(&jobs);
        let row = committed_policy_row(&bench, name);
        assert_eq!(report.completed(), json_u64(&row, "completed"), "{name}");
        assert_eq!(report.makespan, json_u64(&row, "makespan"), "{name}");
        assert_eq!(report.p50_latency, json_u64(&row, "p50_latency"), "{name}");
        assert_eq!(report.p95_latency, json_u64(&row, "p95_latency"), "{name}");
        assert_eq!(
            report.reconfig_loads,
            json_u64(&row, "reconfig_loads"),
            "{name}"
        );
        assert_eq!(
            report.reliability.injected, 0,
            "{name}: inert spec injected"
        );
    }
}

#[test]
fn committed_reliability_row_replays_exactly() {
    let bench = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_runtime.json"
    ))
    .expect("committed BENCH_runtime.json");
    let row = bench
        .lines()
        .find(|l| l.contains("\"reliability\""))
        .expect("reliability row in BENCH_runtime.json")
        .to_owned();
    let (platform, profiles) = mix();
    let jobs = baseline_stream(profiles);
    let fcfs = policy_by_name("fcfs").expect("built-in policy");
    let report = Simulation::new(platform)
        .profiles(profiles)
        .policy(fcfs.as_ref())
        .faults(FaultSpec::uniform(
            json_u64(&row, "fault_seed"),
            json_u64(&row, "fault_rate_permille") as u16,
        ))
        .recovery(RecoveryPolicy {
            max_retries: json_u64(&row, "max_retries") as u32,
            degrade: true,
            ..RecoveryPolicy::default()
        })
        .run(&jobs);
    let r = &report.reliability;
    assert_eq!(r.injected, json_u64(&row, "injected"));
    assert_eq!(r.retries, json_u64(&row, "retries"));
    assert_eq!(r.degraded, json_u64(&row, "degraded"));
    assert_eq!(r.aborted, json_u64(&row, "aborted"));
    assert_eq!(report.makespan, json_u64(&row, "makespan"));
    assert_eq!(report.completed(), json_u64(&row, "completed"));
}

#[test]
fn graceful_degradation_strictly_beats_abort_on_exhaustion() {
    let (platform, profiles) = mix();
    let jobs = baseline_stream(profiles);
    // No retry budget: every injected fault immediately exhausts
    // recovery, so the abort/degrade fork is exercised on every fault.
    let exhausted = RecoveryPolicy {
        max_retries: 0,
        degrade: false,
        ..RecoveryPolicy::default()
    };
    let degrading = RecoveryPolicy {
        degrade: true,
        ..exhausted
    };
    let faults = FaultSpec::uniform(7, 60);
    let sim = Simulation::new(platform)
        .profiles(profiles)
        .policy(&amdrel_runtime::Fcfs)
        .faults(faults);
    let abort = sim.recovery(exhausted).run(&jobs);
    let degrade = sim.recovery(degrading).run(&jobs);

    // Identical injection: the fault streams are policy-independent.
    assert_eq!(
        abort.reliability.injected, degrade.reliability.injected,
        "recovery policy must not perturb the fault streams"
    );
    assert!(abort.reliability.injected > 0, "faults were live");

    // Abort drops jobs; degradation salvages every one of them.
    assert!(
        abort.reliability.aborted > 0,
        "zero retry budget must abort under faults"
    );
    assert_eq!(degrade.reliability.aborted, 0, "degradation never drops");
    assert!(degrade.reliability.degraded > 0, "fallback path was taken");
    assert!(
        degrade.completed() > abort.completed(),
        "degradation completes strictly more jobs: {} vs {}",
        degrade.completed(),
        abort.completed()
    );
    assert!(
        degrade.goodput_jobs_per_mcycle() > abort.goodput_jobs_per_mcycle(),
        "degradation goodput {:.4} must strictly beat abort goodput {:.4}",
        degrade.goodput_jobs_per_mcycle(),
        abort.goodput_jobs_per_mcycle()
    );
    // Aggregate conservation holds for both recovery modes.
    for r in [&abort, &degrade] {
        assert_eq!(
            r.arrived(),
            r.completed() + r.rejected() + r.reliability.aborted + r.reliability.deadline_misses
        );
    }
}

#[test]
fn affinity_still_reduces_reconfig_stall_under_faults() {
    let (platform, profiles) = mix();
    let jobs = baseline_stream(profiles);
    let faults = FaultSpec::uniform(7, 30);
    let recovery = RecoveryPolicy {
        degrade: true,
        ..RecoveryPolicy::default()
    };
    let run = |name: &str| {
        let policy = policy_by_name(name).expect("built-in policy");
        Simulation::new(platform)
            .profiles(profiles)
            .policy(policy.as_ref())
            .faults(faults)
            .recovery(recovery)
            .run(&jobs)
    };
    let fcfs = run("fcfs");
    let affinity = run("affinity");
    assert!(fcfs.reliability.injected > 0, "faults were live");
    assert!(
        affinity.reconfig_stall_cycles < fcfs.reconfig_stall_cycles,
        "affinity keeps its stall advantage under faults: {} vs {}",
        affinity.reconfig_stall_cycles,
        fcfs.reconfig_stall_cycles
    );
    assert!(
        affinity.reconfig_loads < fcfs.reconfig_loads,
        "affinity batches configurations under faults too"
    );
}
