//! End-to-end exploration of the case studies — including the PR's
//! acceptance criterion: seeded simulated annealing on OFDM finds an
//! exhaustive-grid optimum with measurably fewer engine evaluations.

use amdrel_apps::{ofdm, paper, sobel};
use amdrel_core::{EnergyModel, MappingCache, Platform};
use amdrel_explore::{
    explore, DesignSpace, Evaluator, Exhaustive, ExploreConfig, ExploreReport, RandomSampling,
    SimulatedAnnealing,
};
use amdrel_profiler::{AnalysisReport, WeightTable};

/// The OFDM application as the authors measured it: a synthetic CDFG
/// carrying the exact Table 1 `exec_freq`/`bb_weight` profile.
fn ofdm_profile() -> (amdrel_cdfg::Cdfg, AnalysisReport) {
    let profile = paper::synthesize_profile(&paper::OFDM_TABLE1, 44);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    (profile.cdfg, analysis)
}

fn run_ofdm(
    strategy_report: impl FnOnce(&Evaluator<'_>, &DesignSpace) -> ExploreReport,
) -> ExploreReport {
    let (cdfg, analysis) = ofdm_profile();
    let base = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let eval = Evaluator::new(
        "OFDM transmitter",
        &cdfg,
        &analysis,
        &base,
        EnergyModel::default(),
        &cache,
    );
    let space = ofdm::design_space();
    strategy_report(&eval, &space)
}

#[test]
fn sa_finds_an_exhaustive_optimum_with_fewer_evaluations() {
    let exhaustive = run_ofdm(|eval, space| {
        explore(eval, space, &Exhaustive, &ExploreConfig::default()).unwrap()
    });
    // `amdrel explore --strategy sa --seed 42` equivalent.
    let sa = run_ofdm(|eval, space| {
        explore(
            eval,
            space,
            &SimulatedAnnealing::default(),
            &ExploreConfig {
                seed: 42,
                eval_budget: 64,
                jobs: 0,
            },
        )
        .unwrap()
    });

    assert!(!sa.frontier.is_empty(), "SA produced an empty frontier");

    // SA recovers the exhaustive optimum for at least one objective.
    let matches_optimum = [
        (
            sa.best_cycles().map(|p| p.cycles),
            exhaustive.best_cycles().map(|p| p.cycles),
        ),
        (
            sa.best_area().map(|p| p.area),
            exhaustive.best_area().map(|p| p.area),
        ),
        (
            sa.best_energy().map(|p| p.energy_total()),
            exhaustive.best_energy().map(|p| p.energy_total()),
        ),
    ]
    .iter()
    .filter(|(got, want)| got.is_some() && got == want)
    .count();
    assert!(
        matches_optimum >= 1,
        "SA missed every exhaustive optimum:\nSA:\n{}\nexhaustive:\n{}",
        sa.format_table(),
        exhaustive.format_table()
    );

    // ... while doing measurably less work (these exact counts also feed
    // the committed BENCH_explore.json baseline).
    assert!(
        sa.stats.engine_runs < exhaustive.stats.engine_runs,
        "SA ran the engine {} times, exhaustive only {}",
        sa.stats.engine_runs,
        exhaustive.stats.engine_runs
    );
    assert!(
        sa.stats.points_evaluated < exhaustive.stats.points_evaluated,
        "SA evaluated {} points, exhaustive {}",
        sa.stats.points_evaluated,
        exhaustive.stats.points_evaluated
    );
    assert_eq!(
        exhaustive.stats.engine_runs as usize,
        ofdm::design_space().cells(),
        "exhaustive runs the engine once per cell"
    );
}

#[test]
fn random_sampling_on_ofdm_is_reasonable() {
    let random = run_ofdm(|eval, space| {
        explore(
            eval,
            space,
            &RandomSampling,
            &ExploreConfig {
                seed: 7,
                eval_budget: 48,
                jobs: 0,
            },
        )
        .unwrap()
    });
    assert!(!random.frontier.is_empty());
    assert_eq!(random.stats.points_evaluated, 48);
    // Every frontier point is a real, consistently-priced OFDM point.
    for p in &random.frontier {
        assert!(p.cycles <= p.initial_cycles);
        assert!(p.speedup() >= 1.0);
    }
}

/// Pre/post-refactor differential anchor: the exhaustive cycle optimum
/// on the compiled OFDM workload (the exact configuration `bench_report`
/// runs) equals the value committed in `BENCH_explore.json` *before*
/// the N-objective generalisation — evidence the static 3-objective
/// path stayed bit-identical through the refactor.
#[test]
fn exhaustive_optimum_matches_the_committed_prerefactor_baseline() {
    use amdrel_profiler::WeightTable;
    let workload = ofdm::workload(2004);
    let (program, execution) = workload.compile_and_profile().unwrap();
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let base = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &analysis,
        &base,
        EnergyModel::default(),
        &cache,
    );
    let report = explore(
        &eval,
        &ofdm::design_space(),
        &Exhaustive,
        &ExploreConfig::default(),
    )
    .unwrap();
    assert_eq!(
        report.best_cycles().map(|p| p.cycles),
        Some(86_010),
        "exhaustive optimum drifted from the committed pre-refactor baseline"
    );
    assert_eq!(
        report.objectives,
        ["cycles", "area", "energy"],
        "default objective vector changed"
    );
    assert_eq!(
        report.frontier.len(),
        3,
        "frontier size per BENCH_explore.json"
    );
}

#[test]
fn paper_configurations_sit_in_the_explored_space() {
    // The paper's four Table 2 cells are all members of the OFDM space,
    // so exhaustive exploration subsumes the published experiment.
    let space = ofdm::design_space();
    assert_eq!(space.constraint, paper::OFDM_CONSTRAINT);
    for &area in &[1500u64, 5000] {
        assert!(space.areas.contains(&area), "missing paper area {area}");
    }
    let described: Vec<String> = space.datapaths.iter().map(|d| d.describe()).collect();
    for want in ["two 2x2 CGCs", "three 2x2 CGCs"] {
        assert!(described.iter().any(|d| d == want), "missing {want}");
    }
}

#[test]
fn sobel_design_space_carries_the_callers_constraint() {
    let space = sobel::design_space(12_345);
    assert_eq!(space.constraint, 12_345);
    assert!(!space.is_empty());
    assert_eq!(space.len(), space.cells() * space.budgets());
}
