//! Acceptance tests for the multi-tenant runtime simulator on the real
//! case-study mix (ISSUE 4): a seeded 3-app workload where SJF beats
//! FCFS on p95 latency, and a nonzero reconfiguration-stall count that
//! shrinks as the configuration cache and prefetch are enabled.

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_runtime::{
    policy_by_name, AppProfile, AppShare, Fcfs, PriorityFirst, ShortestJobFirst, SimConfig,
    Simulation, WorkloadSpec,
};
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The standard mix on the paper's small platform, built once
/// (compile + profile + partition of all three apps).
fn mix() -> &'static (Platform, Vec<AppProfile>) {
    static MIX: OnceLock<(Platform, Vec<AppProfile>)> = OnceLock::new();
    MIX.get_or_init(|| {
        let platform = Platform::paper(1500, 2);
        let profiles = standard_mix(&platform).expect("standard mix builds");
        (platform, profiles)
    })
}

/// A moderately overloaded seeded stream: 160 jobs at 130% fine-grain
/// offered load with a service-provider mix (frequent OFDM symbols and
/// Sobel frames, occasional JPEG batch encodes), so queues form and
/// policy choice matters.
fn stream(profiles: &[AppProfile]) -> Vec<amdrel_runtime::Job> {
    let mix = [
        AppShare { app: 0, weight: 14 }, // ofdm
        AppShare { app: 1, weight: 1 },  // jpeg
        AppShare { app: 2, weight: 7 },  // sobel
    ];
    let total: u64 = mix.iter().map(|s| u64::from(s.weight)).sum();
    let mean_fine: u64 = mix
        .iter()
        .map(|s| profiles[s.app].fine_cycles * u64::from(s.weight))
        .sum::<u64>()
        / total;
    let spec = WorkloadSpec {
        seed: 42,
        jobs: 160,
        mean_interarrival: mean_fine * 100 / 130,
        mix: mix.to_vec(),
    };
    spec.generate(profiles)
}

#[test]
fn profiles_are_three_distinct_tenants() {
    let (_, profiles) = mix();
    let names: Vec<&str> = profiles.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["ofdm", "jpeg", "sobel"]);
    for p in profiles {
        assert!(p.fine_cycles > 0, "{}: fine phase", p.name);
        assert!(p.coarse_cycles > 0, "{}: moved kernels", p.name);
        assert!(!p.config.partition_areas.is_empty(), "{}: config", p.name);
    }
    // Distinct configurations — swapping tenants must reconfigure.
    assert_ne!(profiles[0].config.id, profiles[1].config.id);
    assert_ne!(profiles[1].config.id, profiles[2].config.id);
}

#[test]
fn sjf_beats_fcfs_on_p95_latency() {
    let (platform, profiles) = mix();
    let jobs = stream(profiles);
    let sim = Simulation::new(platform).profiles(profiles);
    let fcfs = sim.policy(&Fcfs).run(&jobs);
    let sjf = sim.policy(&ShortestJobFirst).run(&jobs);
    assert_eq!(fcfs.arrived(), 160);
    assert_eq!(fcfs.completed(), sjf.completed(), "work-conserving drain");
    assert!(
        sjf.p95_latency < fcfs.p95_latency,
        "SJF p95 {} should beat FCFS p95 {}",
        sjf.p95_latency,
        fcfs.p95_latency
    );
}

#[test]
fn priority_policy_protects_the_urgent_tenant() {
    let (platform, profiles) = mix();
    let jobs = stream(profiles);
    let sim = Simulation::new(platform).profiles(profiles);
    let fcfs = sim.policy(&Fcfs).run(&jobs);
    let prio = sim.policy(&PriorityFirst).run(&jobs);
    // ofdm (priority 2) is profile 0.
    assert!(
        prio.apps[0].p95_latency <= fcfs.apps[0].p95_latency,
        "priority dispatch should not worsen the urgent tenant's p95"
    );
}

#[test]
fn reconfiguration_stall_shrinks_with_cache_and_prefetch() {
    let (platform, profiles) = mix();
    let jobs = stream(profiles);
    let no_cache = SimConfig {
        config_cache: false,
        ..SimConfig::default()
    };
    let cached = SimConfig::default();
    let prefetched = SimConfig {
        prefetch: true,
        ..SimConfig::default()
    };
    let sim = Simulation::new(platform).profiles(profiles).policy(&Fcfs);
    let r_none = sim.config(no_cache).run(&jobs);
    let r_cache = sim.config(cached).run(&jobs);
    let r_pf = sim.config(prefetched).run(&jobs);
    assert!(
        r_pf.reconfig_stall_cycles > 0,
        "contention still reconfigures"
    );
    assert!(
        r_cache.reconfig_stall_cycles < r_none.reconfig_stall_cycles,
        "cache: {} < {}",
        r_cache.reconfig_stall_cycles,
        r_none.reconfig_stall_cycles
    );
    assert!(
        r_pf.reconfig_stall_cycles < r_cache.reconfig_stall_cycles,
        "prefetch: {} < {}",
        r_pf.reconfig_stall_cycles,
        r_cache.reconfig_stall_cycles
    );
    assert!(r_pf.makespan <= r_cache.makespan);
    assert_eq!(
        r_pf.reconfig_loads, r_cache.reconfig_loads,
        "prefetch overlaps loads, it does not skip them"
    );
}

#[test]
fn simulation_on_real_mix_is_bit_deterministic_across_policies() {
    let (platform, profiles) = mix();
    let jobs = stream(profiles);
    for name in ["fcfs", "sjf", "priority", "affinity"] {
        let policy = policy_by_name(name).unwrap();
        let sim = Simulation::new(platform)
            .profiles(profiles)
            .policy(policy.as_ref());
        let a = sim.run(&jobs);
        let b = sim.run(&jobs);
        assert_eq!(a, b, "policy {name}");
        assert_eq!(
            amdrel_runtime::report_to_json(&a),
            amdrel_runtime::report_to_json(&b)
        );
    }
}

#[test]
fn admission_bound_sheds_load_under_overload() {
    let (platform, profiles) = mix();
    // Heavier overload to force a standing queue.
    let jobs = WorkloadSpec::uniform(7, 120, profiles, 250).generate(profiles);
    let bounded = SimConfig {
        queue_bound: NonZeroUsize::new(4),
        ..SimConfig::default()
    };
    let r = Simulation::new(platform)
        .profiles(profiles)
        .policy(&Fcfs)
        .config(bounded)
        .run(&jobs);
    assert!(r.rejected() > 0, "250% load against a 4-deep queue rejects");
    assert_eq!(r.arrived(), r.completed() + r.rejected());
}
