//! Floorplan acceptance on the case studies — the PR's criteria: the
//! `fragmentation` objective produces a non-trivial frontier on OFDM,
//! region-granular partial reconfiguration measurably beats streamed
//! full-fabric loads on the standard mix, and a single full-fabric
//! region reproduces the scalar pool bit-for-bit on the real profiles.

use amdrel_apps::{ofdm, paper, runtime::standard_mix};
use amdrel_core::{EnergyModel, MappingCache, Platform};
use amdrel_explore::{explore, Evaluator, Exhaustive, ExploreConfig, ObjectiveSet};
use amdrel_floorplan::FabricGrid;
use amdrel_profiler::{AnalysisReport, WeightTable};
use amdrel_runtime::{ConfigAffinity, Fcfs, RegionPlan, Simulation, WorkloadSpec};

#[test]
fn fragmentation_objective_yields_a_nontrivial_ofdm_frontier() {
    // `amdrel explore --strategy exhaustive
    //  --objectives cycles,area,fragmentation --regions 4` equivalent.
    let profile = paper::synthesize_profile(&paper::OFDM_TABLE1, 44);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    let base = Platform::paper(1500, 2);
    let space = ofdm::design_space();
    let run = || {
        let cache = MappingCache::new();
        let eval = Evaluator::new(
            "OFDM transmitter",
            &profile.cdfg,
            &analysis,
            &base,
            EnergyModel::default(),
            &cache,
        )
        .with_objectives(ObjectiveSet::parse("cycles,area,fragmentation").unwrap())
        .with_regions(4);
        explore(&eval, &space, &Exhaustive, &ExploreConfig::default()).unwrap()
    };
    let report = run();
    assert!(
        report.frontier.len() >= 2,
        "a non-trivial frontier trades cycles against area/fragmentation: {:?}",
        report.frontier.len()
    );
    for p in &report.frontier {
        let frag = p.objectives.values()[2];
        assert!(frag <= 1000, "fragmentation is a permille: {frag}");
    }
    // The objective actually discriminates between frontier points.
    let distinct: std::collections::BTreeSet<u64> = report
        .frontier
        .iter()
        .map(|p| p.objectives.values()[2])
        .collect();
    assert!(
        distinct.len() >= 2,
        "fragmentation must vary across the frontier: {distinct:?}"
    );
    // Pure integer placement: bit-stable across evaluators.
    assert_eq!(report.frontier, run().frontier);
}

#[test]
fn region_reconfiguration_beats_streamed_loads_on_the_standard_mix() {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).unwrap();
    let spec = WorkloadSpec::uniform(42, 300, &profiles, 130);
    let plan = RegionPlan::new(
        &profiles,
        &FabricGrid::uniform(platform.fpga.usable_area(), 4),
    );
    for (name, policy) in [
        ("fcfs", &Fcfs as &dyn amdrel_runtime::SchedulePolicy),
        ("affinity", &ConfigAffinity),
    ] {
        let base = Simulation::new(&platform)
            .profiles(&profiles)
            .policy(policy);
        let streamed = base.run_mix(&spec);
        let region = base.regions(&plan).run_mix(&spec);
        assert_eq!(
            streamed.completed(),
            region.completed(),
            "{name}: same work either way"
        );
        assert!(
            region.reconfig_stall_cycles < streamed.reconfig_stall_cycles,
            "{name}: partial reconfiguration must stall less ({} vs {})",
            region.reconfig_stall_cycles,
            streamed.reconfig_stall_cycles
        );
        assert!(
            region.reconfig_loads < streamed.reconfig_loads,
            "{name}: disjoint residency must cut reloads ({} vs {})",
            region.reconfig_loads,
            streamed.reconfig_loads
        );
    }
}

#[test]
fn one_full_fabric_region_replays_the_real_mix_bit_identically() {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).unwrap();
    let spec = WorkloadSpec::uniform(7, 200, &profiles, 120);
    let plan = RegionPlan::new(&profiles, &FabricGrid::full(platform.fpga.usable_area()));
    assert!(!plan.is_partial());
    let base = Simulation::new(&platform).profiles(&profiles);
    assert_eq!(
        base.run_mix(&spec),
        base.regions(&plan).run_mix(&spec),
        "a full-fabric plan must not perturb the scalar pool"
    );
}
