//! Acceptance test for contention-aware co-exploration: on the seeded
//! standard mix, the Pareto frontier with a runtime objective (`p95`)
//! enabled contains at least one platform point the static 3-objective
//! frontier does not — i.e. simulating multi-tenant load genuinely
//! changes which platforms the methodology recommends. The same seeded
//! configuration is what `bench_report` records in the committed
//! `BENCH_explore_contention.json`.

use amdrel_apps::{ofdm, runtime as apps_runtime};
use amdrel_core::{EnergyModel, MappingCache, Platform};
use amdrel_explore::{
    explore, Evaluator, Exhaustive, ExploreConfig, ExploreReport, ObjectiveSet, PointIdx,
};
use amdrel_profiler::{AnalysisReport, WeightTable};
use std::collections::BTreeSet;

/// Run the exhaustive exploration of the OFDM design space, statically
/// or with the `p95` contention objective enabled.
fn explore_ofdm(contention: bool) -> ExploreReport {
    let workload = ofdm::workload(apps_runtime::PROFILE_SEED);
    let (program, execution) = workload.compile_and_profile().unwrap();
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let base = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let runtime = apps_runtime::contention_evaluator("ofdm", &base).unwrap();
    let mut eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &analysis,
        &base,
        EnergyModel::default(),
        &cache,
    );
    if contention {
        eval = eval
            .with_objectives(ObjectiveSet::parse("cycles,area,energy,p95").unwrap())
            .with_runtime(&runtime);
    }
    explore(
        &eval,
        &ofdm::design_space(),
        &Exhaustive,
        &ExploreConfig::default(),
    )
    .unwrap()
}

fn points(report: &ExploreReport) -> BTreeSet<PointIdx> {
    report.frontier.iter().map(|p| p.point).collect()
}

#[test]
fn contention_aware_frontier_adds_platform_points() {
    let static_report = explore_ofdm(false);
    let contention_report = explore_ofdm(true);

    assert_eq!(static_report.objectives, ["cycles", "area", "energy"]);
    assert_eq!(
        contention_report.objectives,
        ["cycles", "area", "energy", "p95"]
    );
    assert_eq!(
        contention_report.stats.sim_runs, 216,
        "one seeded simulation per design point"
    );

    // Adding an objective never deletes a static trade-off: every
    // (cycles, area, energy) triple of the static frontier is still
    // represented.
    for p in &static_report.frontier {
        assert!(
            contention_report
                .frontier
                .iter()
                .any(|q| (q.cycles, q.area, q.energy_total())
                    == (p.cycles, p.area, p.energy_total())),
            "static trade-off {:?} lost under contention objectives",
            p.point
        );
    }

    // THE acceptance criterion: the contention-aware frontier includes
    // at least one platform point absent from the static frontier —
    // a platform that only pays off once multi-tenant load is priced.
    let added: Vec<PointIdx> = points(&contention_report)
        .difference(&points(&static_report))
        .copied()
        .collect();
    assert!(
        !added.is_empty(),
        "contention objectives changed nothing:\nstatic:\n{}\ncontention:\n{}",
        static_report.format_table(),
        contention_report.format_table()
    );
    assert!(
        contention_report.frontier.len() > static_report.frontier.len(),
        "contention frontier should widen ({} vs {})",
        contention_report.frontier.len(),
        static_report.frontier.len()
    );

    // Every added point carries real contention metrics.
    for p in &contention_report.frontier {
        let c = p.contention.expect("runtime objective scored");
        assert!(c.completed > 0, "simulation completed work");
        assert_eq!(p.objectives.values()[3], c.p95_latency);
    }
}

#[test]
fn contention_exploration_is_seed_deterministic() {
    let a = explore_ofdm(true);
    let b = explore_ofdm(true);
    assert_eq!(a.frontier, b.frontier, "same seed, same frontier");
    assert_eq!(a.stats, b.stats, "same seed, same effort");
}
