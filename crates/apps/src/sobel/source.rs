//! Mini-C source of the Sobel edge detector.
//!
//! A third case study beyond the paper's two: a classic multimedia kernel
//! of the same era and domain (the paper's platform "mainly targets the
//! DSP and multimedia domains"). The 3×3 gradient stencil is a single
//! fat straight-line loop body — a different kernel shape from the OFDM
//! butterfly (unrolled pairs) and the JPEG fast-DCT (folded symmetry),
//! which makes it a useful extra point for the partitioning engine.
//!
//! Integer-only: |Gx| + |Gy| magnitude approximation with a threshold.

/// Generate the detector source for a `dim × dim` greyscale image.
///
/// # Panics
///
/// Panics if `dim < 3`.
pub fn sobel_source(dim: usize) -> String {
    assert!(dim >= 3, "Sobel needs at least a 3x3 image");
    let pixels = dim * dim;
    format!(
        r#"
/* Sobel edge detection over a {dim}x{dim} greyscale image:
   |Gx| + |Gy| gradient magnitude, thresholded to a binary edge map. */

int image[{pixels}];    /* input pixels, 0..255 */
int edges[{pixels}];    /* output: 0 or 1 */
int threshold[1];       /* input: edge threshold */

int main() {{
    int th = threshold[0];
    int count = 0;
    for (int y = 1; y < {dim} - 1; y++) {{
        for (int x = 1; x < {dim} - 1; x++) {{
            int p00 = image[(y - 1) * {dim} + x - 1];
            int p01 = image[(y - 1) * {dim} + x];
            int p02 = image[(y - 1) * {dim} + x + 1];
            int p10 = image[y * {dim} + x - 1];
            int p12 = image[y * {dim} + x + 1];
            int p20 = image[(y + 1) * {dim} + x - 1];
            int p21 = image[(y + 1) * {dim} + x];
            int p22 = image[(y + 1) * {dim} + x + 1];
            int gx = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
            int gy = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
            if (gx < 0) {{ gx = 0 - gx; }}
            if (gy < 0) {{ gy = 0 - gy; }}
            int mag = gx + gy;
            int edge = 0;
            if (mag > th) {{ edge = 1; }}
            edges[y * {dim} + x] = edge;
            count += edge;
        }}
    }}
    return count;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles_for_various_dims() {
        for dim in [3usize, 8, 32] {
            amdrel_minic::compile(&sobel_source(dim), "main")
                .unwrap_or_else(|e| panic!("dim {dim}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_image_rejected() {
        let _ = sobel_source(2);
    }
}
