//! The Sobel edge-detector case study (an extension beyond the paper's
//! two applications, same DSP/multimedia domain).

pub mod reference;
pub mod source;

pub use reference::{detect, SobelOutput};
pub use source::sobel_source;

use crate::Workload;
use amdrel_cdfg::synth::SplitMix64;

/// Build the Sobel workload for a `dim × dim` synthetic image.
///
/// # Panics
///
/// Panics if `dim < 3`.
pub fn workload(dim: usize, seed: u64) -> Workload {
    let image = test_image(dim, seed);
    Workload {
        name: format!("Sobel edge detector ({dim}x{dim})"),
        source: sobel_source(dim),
        inputs: vec![
            ("image".to_owned(), image),
            ("threshold".to_owned(), vec![160]),
        ],
    }
}

/// The Sobel exploration entry point: the
/// [standard space](crate::standard_design_space) under a caller-chosen
/// timing constraint (Sobel is not in the paper, so there is no published
/// constant — half the workload's all-FPGA cycle count is a good
/// starting point).
pub fn design_space(constraint: u64) -> amdrel_explore::DesignSpace {
    crate::standard_design_space(constraint)
}

/// A deterministic image with structured edges: blocks of alternating
/// intensity plus noise.
pub fn test_image(dim: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut img = Vec::with_capacity(dim * dim);
    for y in 0..dim {
        for x in 0..dim {
            let tile = ((x / 8) + (y / 8)) % 2;
            let base = if tile == 0 { 60 } else { 190 };
            img.push(base + (rng.next_u64() % 11) as i64);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::Interpreter;

    #[test]
    fn minic_matches_reference_bit_exactly() {
        let dim = 24;
        let w = workload(dim, 5);
        let program = compile(&w.source, "main").expect("Sobel compiles");
        let exec = Interpreter::new(&program.ir)
            .run(&w.input_refs())
            .expect("Sobel runs");
        let expected = detect(&w.inputs[0].1, dim, 160);
        assert_eq!(exec.return_value, Some(expected.count));
        assert_eq!(exec.global("edges").unwrap(), &expected.edges[..]);
    }

    #[test]
    fn stencil_body_is_the_dominant_kernel() {
        let dim = 24;
        let w = workload(dim, 5);
        let program = compile(&w.source, "main").unwrap();
        let exec = Interpreter::new(&program.ir).run(&w.input_refs()).unwrap();
        let report = amdrel_profiler::AnalysisReport::analyze(
            &program.cdfg,
            &exec.block_counts,
            &amdrel_profiler::WeightTable::paper(),
        );
        let top = report.top_kernels(1)[0];
        // Interior pixel count, possibly split across the abs-branching
        // blocks; the top kernel must at least run per interior pixel.
        let interior = ((dim - 2) * (dim - 2)) as u64;
        assert_eq!(top.exec_freq, interior);
        assert!(top.bb_weight >= 20, "stencil body weight {}", top.bb_weight);
    }

    #[test]
    fn partitioning_accelerates_the_detector() {
        use amdrel_core::{PartitioningEngine, Platform};
        let w = workload(32, 9);
        let (program, exec) = w.compile_and_profile().unwrap();
        let report = amdrel_profiler::AnalysisReport::analyze(
            &program.cdfg,
            &exec.block_counts,
            &amdrel_profiler::WeightTable::paper(),
        );
        let platform = Platform::paper(1500, 2);
        let r = PartitioningEngine::new(&program.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        assert!(r.final_cycles() < r.initial_cycles);
        assert!(r.reduction_percent() > 30.0);
    }
}
