//! Bit-exact Rust reference of the Sobel mini-C source.

/// Edge map plus edge count, exactly as the mini-C `main` computes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SobelOutput {
    /// Binary edge map (`dim × dim`, border pixels stay 0).
    pub edges: Vec<i64>,
    /// Number of edge pixels (the `main` return value).
    pub count: i64,
}

/// Run the detector on a `dim × dim` image with the given threshold.
///
/// # Panics
///
/// Panics if `image.len() != dim * dim` or `dim < 3`.
pub fn detect(image: &[i64], dim: usize, threshold: i64) -> SobelOutput {
    assert!(dim >= 3, "Sobel needs at least a 3x3 image");
    assert_eq!(image.len(), dim * dim, "image size");
    let mut edges = vec![0i64; dim * dim];
    let mut count = 0i64;
    for y in 1..dim - 1 {
        for x in 1..dim - 1 {
            let p = |dy: usize, dx: usize| image[(y + dy - 1) * dim + (x + dx - 1)];
            let gx = (p(0, 2) + 2 * p(1, 2) + p(2, 2)) - (p(0, 0) + 2 * p(1, 0) + p(2, 0));
            let gy = (p(2, 0) + 2 * p(2, 1) + p(2, 2)) - (p(0, 0) + 2 * p(0, 1) + p(0, 2));
            let mag = gx.abs() + gy.abs();
            let edge = i64::from(mag > threshold);
            edges[y * dim + x] = edge;
            count += edge;
        }
    }
    SobelOutput { edges, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_has_no_edges() {
        let img = vec![100i64; 64];
        let out = detect(&img, 8, 50);
        assert_eq!(out.count, 0);
        assert!(out.edges.iter().all(|&e| e == 0));
    }

    #[test]
    fn vertical_step_detected_along_the_boundary() {
        // Left half 0, right half 255: edges along the column boundary.
        let dim = 8;
        let img: Vec<i64> = (0..dim * dim)
            .map(|i| if i % dim < dim / 2 { 0 } else { 255 })
            .collect();
        let out = detect(&img, dim, 100);
        assert!(out.count > 0);
        // Edge pixels concentrate at columns dim/2 - 1 and dim/2.
        for y in 1..dim - 1 {
            assert_eq!(out.edges[y * dim + dim / 2 - 1], 1);
            assert_eq!(out.edges[y * dim + dim / 2], 1);
            assert_eq!(out.edges[y * dim + 1], 0);
        }
    }

    #[test]
    fn border_pixels_never_fire() {
        let img: Vec<i64> = (0..64).map(|i| (i * 37) % 256).collect();
        let out = detect(&img, 8, 1);
        for i in 0..8 {
            assert_eq!(out.edges[i], 0, "top row");
            assert_eq!(out.edges[56 + i], 0, "bottom row");
            assert_eq!(out.edges[i * 8], 0, "left col");
            assert_eq!(out.edges[i * 8 + 7], 0, "right col");
        }
    }

    #[test]
    #[should_panic(expected = "image size")]
    fn wrong_size_panics() {
        let _ = detect(&[0; 10], 8, 10);
    }
}
