//! The IEEE 802.11a OFDM transmitter front-end case study.

pub mod reference;
pub mod source;

pub use reference::{transmit, twiddles_q14, OfdmFrame};
pub use source::{OFDM_SOURCE, PAYLOAD_BITS, SYMBOLS};

use crate::Workload;
use amdrel_cdfg::synth::SplitMix64;

/// Build the OFDM workload: the mini-C source plus the paper-sized input
/// set (6 payload symbols of pseudo-random bits, Q14 twiddle tables).
///
/// `seed` drives the payload generator; the same seed always produces the
/// same workload.
pub fn workload(seed: u64) -> Workload {
    let bits = random_bits(seed);
    let (cos_tab, sin_tab) = twiddles_q14();
    Workload {
        name: "OFDM transmitter".to_owned(),
        source: OFDM_SOURCE.to_owned(),
        inputs: vec![
            ("bits".to_owned(), bits),
            ("cos_tab".to_owned(), cos_tab),
            ("sin_tab".to_owned(), sin_tab),
        ],
    }
}

/// The OFDM exploration entry point: the
/// [standard space](crate::standard_design_space) under the paper's
/// Table 2 timing constraint (60 000 cycles).
pub fn design_space() -> amdrel_explore::DesignSpace {
    crate::standard_design_space(crate::paper::OFDM_CONSTRAINT)
}

/// Deterministic pseudo-random payload bits for 6 symbols.
pub fn random_bits(seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..PAYLOAD_BITS)
        .map(|_| (rng.next_u64() & 1) as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::Interpreter;

    #[test]
    fn minic_matches_reference_bit_exactly() {
        let w = workload(42);
        let program = compile(&w.source, "main").expect("OFDM source compiles");
        let exec = Interpreter::new(&program.ir)
            .run(&w.input_refs())
            .expect("OFDM source runs");
        let frame = transmit(&w.inputs[0].1);
        assert_eq!(exec.return_value, Some(frame.checksum), "checksum");
        assert_eq!(exec.global("out_re").unwrap(), &frame.re[..], "real frame");
        assert_eq!(exec.global("out_im").unwrap(), &frame.im[..], "imag frame");
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(7).inputs, workload(7).inputs);
        assert_ne!(random_bits(1), random_bits(2));
    }

    #[test]
    fn block_count_is_paper_scale() {
        // The paper reports 18 source-level basic blocks for its OFDM
        // code (Lex counts blocks in the original functions). Our CDFG is
        // the fully-inlined whole program, so every call site carries its
        // own copy of the callee's blocks — a few dozen blocks total is
        // the equivalent scale.
        let w = workload(1);
        let program = compile(&w.source, "main").unwrap();
        let n = program.cdfg.len();
        assert!(
            (10..=90).contains(&n),
            "OFDM CDFG has {n} blocks, expected paper-scale"
        );
    }
}
