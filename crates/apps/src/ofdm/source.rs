//! The mini-C source of the IEEE 802.11a OFDM transmitter front-end.
//!
//! Re-implementation of the AMDREL industrial application the paper
//! evaluates (§4): "the front-end of the baseband processing of an IEEE
//! 802.11a OFDM transmitter. The front-end consists of the Quadrature
//! Amplitude Modulation (QAM) unit, the IFFT block and the cyclic prefix
//! unit." The workload size matches the paper: **6 payload symbols**.
//!
//! Structure (fixed point, Q14 twiddles, ALU + MUL only — no division,
//! matching the paper's observation that "no divisions are present in the
//! DFGs"):
//!
//! * 16-QAM Gray mapping of 4-bit groups onto 48 data subcarriers, BPSK
//!   pilots on 4 pilot subcarriers;
//! * 64-point radix-2 decimation-in-time IFFT with computed bit-reversal
//!   and per-stage `>> 1` scaling;
//! * 16-sample cyclic prefix, producing 80 samples per symbol.

/// Number of OFDM payload symbols (the paper's experimental input size).
pub const SYMBOLS: usize = 6;

/// Payload bits consumed: 6 symbols × 48 carriers × 4 bits (16-QAM).
pub const PAYLOAD_BITS: usize = SYMBOLS * 48 * 4;

/// The transmitter in mini-C.
pub const OFDM_SOURCE: &str = r#"
/* IEEE 802.11a OFDM transmitter front-end: 16-QAM -> 64-pt IFFT -> CP.
   Fixed point; twiddles in Q14 supplied through cos_tab/sin_tab. */

int bits[1152];        /* input payload: 6 * 48 * 4 bits               */
int cos_tab[32];       /* input: cos(2*pi*k/64) in Q14, k = 0..31      */
int sin_tab[32];       /* input: sin(2*pi*k/64) in Q14, k = 0..31      */

int qam_re[64];        /* current symbol's frequency-domain points     */
int qam_im[64];
int data_bins[48];     /* data subcarrier indices, computed at start   */
int work_re[64];       /* IFFT working buffers                         */
int work_im[64];
int out_re[480];       /* 6 symbols * 80 samples (64 + 16 CP)          */
int out_im[480];
int bitrev[64];        /* 6-bit reversal table, computed at start      */

/* Gray-mapped 16-QAM levels indexed by (b1 << 1) | b0:
   00->-3 01->-1 11->1 10->3 */
int qam_levels[4] = {-3, -1, 3, 1};

int qam16_level(int b1, int b0) {
    return qam_levels[(b1 << 1) | b0];
}

/* Fill data_bins with the 48 data subcarrier indices: bins 1..26 and
   38..63 minus the pilot bins {7, 21, 43, 57}. */
void build_data_bins() {
    int idx = 0;
    for (int bin = 1; bin <= 26; bin++) {
        if (bin != 7 && bin != 21) {
            data_bins[idx] = bin;
            idx++;
        }
    }
    for (int hbin = 38; hbin < 64; hbin++) {
        if (hbin != 43 && hbin != 57) {
            data_bins[idx] = hbin;
            idx++;
        }
    }
}

/* Map 48 data groups of 4 bits onto the data subcarriers of symbol s.
   Pilots (bins 7, 21, 43, 57) are BPSK +1; DC and the guard bins stay
   zero. */
void map_symbol(int s) {
    int base = s * 192;           /* 48 carriers * 4 bits */
    for (int k = 0; k < 64; k++) {
        qam_re[k] = 0;
        qam_im[k] = 0;
    }
    for (int g = 0; g < 48; g++) {
        int b3 = bits[base + g * 4];
        int b2 = bits[base + g * 4 + 1];
        int b1 = bits[base + g * 4 + 2];
        int b0 = bits[base + g * 4 + 3];
        int bin = data_bins[g];
        qam_re[bin] = qam16_level(b3, b2) * 4096;   /* scale to Q14-ish */
        qam_im[bin] = qam16_level(b1, b0) * 4096;
    }
    /* BPSK pilots */
    qam_re[7]  = 4096;
    qam_re[21] = 4096;
    qam_re[43] = 4096;
    qam_re[57] = 4096;
}

/* 64-point radix-2 DIT IFFT with >>1 scaling per stage.
   Stage 1 is special-cased (its twiddle is W^0 = 1, so the butterfly
   degenerates to add/sub) and the remaining stages process butterflies
   in unrolled pairs - the classic hand optimisation of 2000s DSP code,
   and bit-exact with the rolled loop since the pairs are independent.
   The unrolled pair body is the transmitter's hottest basic block. */
void ifft64() {
    for (int i = 0; i < 64; i++) {
        int r = bitrev[i];
        work_re[i] = qam_re[r];
        work_im[i] = qam_im[r];
    }
    /* stage 1: trivial twiddles */
    for (int p = 0; p < 64; p += 2) {
        int ar = work_re[p];
        int ai = work_im[p];
        int br = work_re[p + 1];
        int bi = work_im[p + 1];
        work_re[p] = (ar + br) >> 1;
        work_im[p] = (ai + bi) >> 1;
        work_re[p + 1] = (ar - br) >> 1;
        work_im[p + 1] = (ai - bi) >> 1;
    }
    /* stages 2..6: butterflies two at a time */
    int half = 2;
    int step = 16;                 /* twiddle stride */
    while (half < 64) {
        for (int group = 0; group < 64; group += half * 2) {
            for (int k = 0; k < half; k += 2) {
                /* all loads first so the two butterflies stay independent */
                int tw = k * step;
                int c = cos_tab[tw];
                int sn = sin_tab[tw];     /* +sin for the inverse FFT */
                int tw2 = tw + step;
                int c2 = cos_tab[tw2];
                int sn2 = sin_tab[tw2];
                int i0 = group + k;
                int i1 = i0 + half;
                int j0 = i0 + 1;
                int j1 = i1 + 1;
                int ar = work_re[i0];
                int ai = work_im[i0];
                int br = work_re[i1];
                int bi = work_im[i1];
                int ar2 = work_re[j0];
                int ai2 = work_im[j0];
                int br2 = work_re[j1];
                int bi2 = work_im[j1];
                /* butterfly k */
                int tr = (c * br - sn * bi) >> 14;
                int ti = (c * bi + sn * br) >> 14;
                work_re[i0] = (ar + tr) >> 1;
                work_im[i0] = (ai + ti) >> 1;
                work_re[i1] = (ar - tr) >> 1;
                work_im[i1] = (ai - ti) >> 1;
                /* butterfly k + 1 */
                int tr2 = (c2 * br2 - sn2 * bi2) >> 14;
                int ti2 = (c2 * bi2 + sn2 * br2) >> 14;
                work_re[j0] = (ar2 + tr2) >> 1;
                work_im[j0] = (ai2 + ti2) >> 1;
                work_re[j1] = (ar2 - tr2) >> 1;
                work_im[j1] = (ai2 - ti2) >> 1;
            }
        }
        half = half * 2;
        step = step >> 1;
    }
}

/* Prepend the 16-sample cyclic prefix and store 80 output samples. */
void cyclic_prefix(int s) {
    int base = s * 80;
    for (int p = 0; p < 16; p++) {
        out_re[base + p] = work_re[48 + p];
        out_im[base + p] = work_im[48 + p];
    }
    for (int q = 0; q < 64; q++) {
        out_re[base + 16 + q] = work_re[q];
        out_im[base + 16 + q] = work_im[q];
    }
}

int main() {
    /* 6-bit bit-reversal table */
    for (int i = 0; i < 64; i++) {
        int v = i;
        int r = 0;
        for (int b = 0; b < 6; b++) {
            r = (r << 1) | (v & 1);
            v = v >> 1;
        }
        bitrev[i] = r;
    }
    build_data_bins();
    for (int s = 0; s < 6; s++) {
        map_symbol(s);
        ifft64();
        cyclic_prefix(s);
    }
    /* checksum over the time-domain frame */
    int acc = 0;
    for (int n = 0; n < 480; n++) {
        int re = out_re[n];
        int im = out_im[n];
        if (re < 0) { re = 0 - re; }
        if (im < 0) { im = 0 - im; }
        acc = (acc + re + im) & 0xFFFFFF;
    }
    return acc;
}
"#;
