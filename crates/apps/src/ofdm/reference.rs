//! Bit-exact Rust reference of the OFDM transmitter mini-C source.
//!
//! Used to validate the interpreter's semantics: running the mini-C code
//! through the profiler must produce exactly the same time-domain frame
//! (and checksum) as this native implementation, because both perform the
//! same 64-bit integer arithmetic.

/// Q14 twiddle tables for a 64-point (I)FFT: `(cos, sin)(2πk/64)` for
/// `k = 0..32`.
pub fn twiddles_q14() -> (Vec<i64>, Vec<i64>) {
    let mut cos_tab = Vec::with_capacity(32);
    let mut sin_tab = Vec::with_capacity(32);
    for k in 0..32 {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / 64.0;
        cos_tab.push((theta.cos() * 16384.0).round() as i64);
        sin_tab.push((theta.sin() * 16384.0).round() as i64);
    }
    (cos_tab, sin_tab)
}

/// The frame produced by the transmitter: 6 symbols × 80 complex samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfdmFrame {
    /// Real parts, 480 samples.
    pub re: Vec<i64>,
    /// Imaginary parts, 480 samples.
    pub im: Vec<i64>,
    /// The checksum returned by `main` (24-bit sum of absolute values).
    pub checksum: i64,
}

fn qam16_level(b1: i64, b0: i64) -> i64 {
    const LEVELS: [i64; 4] = [-3, -1, 3, 1]; // Gray map, index (b1<<1)|b0
    LEVELS[((b1 << 1) | b0) as usize]
}

fn data_bins() -> Vec<usize> {
    let mut bins = Vec::with_capacity(48);
    for bin in 1..=26 {
        if bin != 7 && bin != 21 {
            bins.push(bin);
        }
    }
    for bin in 38..64 {
        if bin != 43 && bin != 57 {
            bins.push(bin);
        }
    }
    bins
}

fn bitrev6(i: usize) -> usize {
    let mut v = i;
    let mut r = 0;
    for _ in 0..6 {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    r
}

/// Run the transmitter on `bits` (1152 payload bits, values 0/1).
///
/// # Panics
///
/// Panics if `bits.len() != 1152` or any bit is not 0/1.
pub fn transmit(bits: &[i64]) -> OfdmFrame {
    assert_eq!(bits.len(), super::source::PAYLOAD_BITS, "payload size");
    assert!(bits.iter().all(|&b| b == 0 || b == 1), "bits must be 0/1");
    let (cos_tab, sin_tab) = twiddles_q14();
    let bins = data_bins();

    let mut out_re = vec![0i64; 480];
    let mut out_im = vec![0i64; 480];

    for s in 0..6 {
        // QAM mapping.
        let mut qam_re = [0i64; 64];
        let mut qam_im = [0i64; 64];
        let base = s * 192;
        for (g, &bin) in bins.iter().enumerate() {
            let b3 = bits[base + g * 4];
            let b2 = bits[base + g * 4 + 1];
            let b1 = bits[base + g * 4 + 2];
            let b0 = bits[base + g * 4 + 3];
            qam_re[bin] = qam16_level(b3, b2) * 4096;
            qam_im[bin] = qam16_level(b1, b0) * 4096;
        }
        for pilot in [7, 21, 43, 57] {
            qam_re[pilot] = 4096;
        }

        // 64-point radix-2 DIT IFFT, >>1 per stage, Q14 twiddles.
        let mut work_re = [0i64; 64];
        let mut work_im = [0i64; 64];
        for i in 0..64 {
            work_re[i] = qam_re[bitrev6(i)];
            work_im[i] = qam_im[bitrev6(i)];
        }
        let mut half = 1usize;
        let mut step = 32usize;
        while half < 64 {
            let mut group = 0;
            while group < 64 {
                for k in 0..half {
                    let c = cos_tab[k * step];
                    let sn = sin_tab[k * step];
                    let i0 = group + k;
                    let i1 = i0 + half;
                    let tr = (c * work_re[i1] - sn * work_im[i1]) >> 14;
                    let ti = (c * work_im[i1] + sn * work_re[i1]) >> 14;
                    let ar = work_re[i0];
                    let ai = work_im[i0];
                    work_re[i0] = (ar + tr) >> 1;
                    work_im[i0] = (ai + ti) >> 1;
                    work_re[i1] = (ar - tr) >> 1;
                    work_im[i1] = (ai - ti) >> 1;
                }
                group += half * 2;
            }
            half *= 2;
            step >>= 1;
        }

        // Cyclic prefix.
        let base = s * 80;
        out_re[base..base + 16].copy_from_slice(&work_re[48..64]);
        out_im[base..base + 16].copy_from_slice(&work_im[48..64]);
        out_re[base + 16..base + 80].copy_from_slice(&work_re[..64]);
        out_im[base + 16..base + 80].copy_from_slice(&work_im[..64]);
    }

    let mut acc: i64 = 0;
    for n in 0..480 {
        acc = (acc + out_re[n].abs() + out_im[n].abs()) & 0xFF_FFFF;
    }
    OfdmFrame {
        re: out_re,
        im: out_im,
        checksum: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bits() -> Vec<i64> {
        // Deterministic pseudo-payload.
        (0..super::super::source::PAYLOAD_BITS as i64)
            .map(|i| (i * 7 + 3) % 2)
            .collect()
    }

    #[test]
    fn twiddles_are_q14_unit_circle() {
        let (c, s) = twiddles_q14();
        assert_eq!(c[0], 16384);
        assert_eq!(s[0], 0);
        assert_eq!(c[16], 0); // cos(pi/2)
        assert_eq!(s[16], 16384); // sin(pi/2)
        for k in 0..32 {
            let mag = c[k] * c[k] + s[k] * s[k];
            let err = (mag - 16384 * 16384).abs();
            assert!(err < 40_000, "twiddle {k} off the unit circle");
        }
    }

    #[test]
    fn data_bins_are_48_and_avoid_pilots() {
        let bins = data_bins();
        assert_eq!(bins.len(), 48);
        for p in [0usize, 7, 21, 43, 57] {
            assert!(!bins.contains(&p), "bin {p} must not carry data");
        }
    }

    #[test]
    fn bitrev_is_involution() {
        for i in 0..64 {
            assert_eq!(bitrev6(bitrev6(i)), i);
        }
    }

    #[test]
    fn transmit_produces_nonzero_energy() {
        let frame = transmit(&demo_bits());
        assert_eq!(frame.re.len(), 480);
        let energy: i64 = frame.re.iter().map(|v| v * v).sum();
        assert!(energy > 0, "IFFT output must carry signal energy");
        assert!(frame.checksum > 0);
    }

    #[test]
    fn cyclic_prefix_repeats_symbol_tail() {
        let frame = transmit(&demo_bits());
        for s in 0..6 {
            let base = s * 80;
            for p in 0..16 {
                assert_eq!(frame.re[base + p], frame.re[base + 16 + 48 + p]);
                assert_eq!(frame.im[base + p], frame.im[base + 16 + 48 + p]);
            }
        }
    }

    #[test]
    fn different_payloads_differ() {
        let a = transmit(&demo_bits());
        let mut bits = demo_bits();
        bits[0] ^= 1;
        let b = transmit(&bits);
        assert_ne!(a.re, b.re);
    }

    #[test]
    #[should_panic(expected = "payload size")]
    fn wrong_payload_size_panics() {
        let _ = transmit(&[0; 10]);
    }
}
