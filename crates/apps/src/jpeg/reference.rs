//! Bit-exact Rust reference of the JPEG encoder mini-C source.

use super::source::{QUANT_TABLE, ZIGZAG};

/// The Q12 DCT-II basis matrix: `C[u][x] = α(u)/2 · cos((2x+1)uπ/16)`,
/// flattened row-major, exactly what the mini-C source expects in
/// `dct_cos`.
pub fn dct_cos_q12() -> Vec<i64> {
    let mut table = Vec::with_capacity(64);
    for u in 0..8 {
        let alpha = if u == 0 { 1.0 / (2.0f64).sqrt() } else { 1.0 };
        for x in 0..8 {
            let c = alpha / 2.0
                * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            table.push((c * 4096.0).round() as i64);
        }
    }
    table
}

/// Reciprocal quantisation table: `floor(65536 / Q[i])`.
pub fn quant_recip() -> Vec<i64> {
    QUANT_TABLE.iter().map(|&q| 65536 / q).collect()
}

/// A deterministic synthetic greyscale test image (smooth gradients plus
/// texture — compresses like a natural image rather than noise).
pub fn synthetic_image(dim: usize, seed: u64) -> Vec<i64> {
    use amdrel_cdfg::synth::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut img = Vec::with_capacity(dim * dim);
    for y in 0..dim {
        for x in 0..dim {
            let gradient = ((x * 96) / dim.max(1) + (y * 64) / dim.max(1)) as i64;
            let texture = (((x / 4 + y / 4) % 8) * 6) as i64;
            let noise = (rng.next_u64() % 9) as i64;
            img.push((64 + gradient + texture + noise).clamp(0, 255));
        }
    }
    img
}

/// The encoder's output: the bitstream (one bit per element) and summary
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegOutput {
    /// Emitted bits (0/1), `bit_count` entries.
    pub bits: Vec<i64>,
    /// Number of bits emitted (the mini-C `main` return value).
    pub bit_count: i64,
}

/// Encode a `dim × dim` image exactly as the mini-C source does.
///
/// # Panics
///
/// Panics if `image.len() != dim * dim` or `dim` is not a multiple of 8.
pub fn encode(image: &[i64], dim: usize) -> JpegOutput {
    assert!(dim % 8 == 0, "dim must be a multiple of 8");
    assert_eq!(image.len(), dim * dim, "image size");
    let dct = dct_cos_q12();
    let recip = quant_recip();
    let blocks = dim / 8;

    let mut bits: Vec<i64> = Vec::new();
    let mut prev_dc: i64 = 0;

    let emit_bits = |bits: &mut Vec<i64>, value: i64, len: u32| {
        for b in (0..len).rev() {
            bits.push((value >> b) & 1);
        }
    };
    let category = |mut v: i64| -> i64 {
        if v < 0 {
            v = -v;
        }
        let mut cat = 0;
        while v > 0 {
            v >>= 1;
            cat += 1;
        }
        cat
    };
    let magnitude_bits = |v: i64, cat: i64| -> i64 {
        if v < 0 {
            v + (1 << cat) - 1
        } else {
            v
        }
    };

    let mut block = [0i64; 64];
    let mut coef = [0i64; 64];
    for by in 0..blocks {
        for bx in 0..blocks {
            // Level shift.
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = image[(by * 8 + y) * dim + bx * 8 + x] - 128;
                }
            }
            // Row DCT.
            for r in 0..8 {
                for u in 0..8 {
                    let mut sum = 0i64;
                    for x in 0..8 {
                        sum += block[r * 8 + x] * dct[u * 8 + x];
                    }
                    coef[r * 8 + u] = sum >> 12;
                }
            }
            // Column DCT.
            for c in 0..8 {
                for v in 0..8 {
                    let mut sum = 0i64;
                    for y in 0..8 {
                        sum += coef[y * 8 + c] * dct[v * 8 + y];
                    }
                    block[v * 8 + c] = sum >> 12;
                }
            }
            // Quantise (reciprocal multiply, round toward zero).
            for i in 0..64 {
                let v = block[i];
                let neg = v < 0;
                let mut q = (v.abs() * recip[i]) >> 16;
                if neg {
                    q = -q;
                }
                block[i] = q;
            }
            // Zig-zag.
            let mut zz = [0i64; 64];
            for i in 0..64 {
                zz[i] = block[ZIGZAG[i]];
            }
            // Entropy code.
            let diff = zz[0] - prev_dc;
            prev_dc = zz[0];
            let cat = category(diff);
            emit_bits(&mut bits, cat, 4);
            if cat > 0 {
                emit_bits(&mut bits, magnitude_bits(diff, cat), cat as u32);
            }
            let mut run = 0i64;
            for &v in &zz[1..] {
                if v == 0 {
                    run += 1;
                } else {
                    while run > 15 {
                        emit_bits(&mut bits, 0xF0, 8);
                        run -= 16;
                    }
                    let acat = category(v);
                    emit_bits(&mut bits, (run << 4) | acat, 8);
                    emit_bits(&mut bits, magnitude_bits(v, acat), acat as u32);
                    run = 0;
                }
            }
            if run > 0 {
                emit_bits(&mut bits, 0, 8);
            }
        }
    }

    let bit_count = bits.len() as i64;
    JpegOutput { bits, bit_count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_table_shape() {
        let t = dct_cos_q12();
        assert_eq!(t.len(), 64);
        // DC row: alpha(0)/2 = 1/(2*sqrt(2)) ≈ 0.35355 → 1448 in Q12.
        for (x, &dc) in t.iter().enumerate().take(8) {
            assert_eq!(dc, 1448, "DC basis element {x}");
        }
        // First AC row peaks at cos(pi/16)/2 ≈ 0.4904 → 2009.
        assert_eq!(t[8], 2009);
    }

    #[test]
    fn dct_table_has_exact_symmetry() {
        // The fast DCT in the mini-C source relies on the rounded Q12
        // entries satisfying C[u][7-x] == ±C[u][x] exactly (even u: +,
        // odd u: −). f64 rounding could in principle break this by one
        // ulp; this test pins that it does not for the real table, which
        // is the precondition for the fast path being bit-exact with the
        // matrix product.
        let t = dct_cos_q12();
        for u in 0..8 {
            for x in 0..4 {
                let a = t[u * 8 + x];
                let b = t[u * 8 + (7 - x)];
                if u % 2 == 0 {
                    assert_eq!(a, b, "C[{u}][{x}] symmetric");
                } else {
                    assert_eq!(a, -b, "C[{u}][{x}] antisymmetric");
                }
            }
        }
    }

    #[test]
    fn recip_table_divides() {
        let r = quant_recip();
        for (i, (&q, &rc)) in QUANT_TABLE.iter().zip(&r).enumerate() {
            // (q * rc) >> 16 == 1 exactly when rc = floor(65536/q).
            assert_eq!(
                (q * rc) >> 16,
                if 65536 % q == 0 { 1 } else { 0 } | ((q * rc) >> 16),
                "self-check {i}"
            );
            assert!(rc > 0);
        }
    }

    #[test]
    fn flat_image_compresses_to_dc_only() {
        let img = vec![128i64; 64];
        let out = encode(&img, 8);
        // Level-shifted zeros: DC diff 0 (cat 0, 4 bits) + EOB (8 bits).
        assert_eq!(out.bit_count, 12);
    }

    #[test]
    fn textured_image_emits_ac_coefficients() {
        let img = synthetic_image(64, 3);
        let out = encode(&img, 64);
        let blocks = (64 / 8) * (64 / 8);
        assert!(
            out.bit_count > 12 * blocks,
            "texture must produce AC symbols: {} bits",
            out.bit_count
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let img = synthetic_image(32, 9);
        assert_eq!(encode(&img, 32), encode(&img, 32));
    }

    #[test]
    fn synthetic_image_in_range() {
        let img = synthetic_image(128, 1);
        assert_eq!(img.len(), 128 * 128);
        assert!(img.iter().all(|&p| (0..=255).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "image size")]
    fn wrong_image_size_panics() {
        let _ = encode(&[0; 10], 8);
    }
}
