//! The JPEG encoder case study.

pub mod reference;
pub mod source;

pub use reference::{dct_cos_q12, encode, quant_recip, synthetic_image, JpegOutput};
pub use source::{bitstream_capacity, jpeg_source, PAPER_DIM, QUANT_TABLE, ZIGZAG};

use crate::Workload;

/// Build the JPEG workload for a `dim × dim` synthetic image.
///
/// Use [`PAPER_DIM`] (256) to match the paper's experiments; smaller
/// multiples of 8 keep unit tests fast.
///
/// # Panics
///
/// Panics unless `dim` is a positive multiple of 8.
pub fn workload(dim: usize, seed: u64) -> Workload {
    let image = synthetic_image(dim, seed);
    Workload {
        name: format!("JPEG encoder ({dim}x{dim})"),
        source: jpeg_source(dim),
        inputs: vec![
            ("image".to_owned(), image),
            ("dct_cos".to_owned(), dct_cos_q12()),
            ("quant_recip".to_owned(), quant_recip()),
        ],
    }
}

/// The JPEG exploration entry point: the
/// [standard space](crate::standard_design_space) under the paper's
/// Table 3 timing constraint (11×10⁶ cycles).
pub fn design_space() -> amdrel_explore::DesignSpace {
    crate::standard_design_space(crate::paper::JPEG_CONSTRAINT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::Interpreter;

    #[test]
    fn minic_matches_reference_bit_exactly() {
        let dim = 32; // 16 blocks: fast but exercises every code path
        let w = workload(dim, 42);
        let program = compile(&w.source, "main").expect("JPEG source compiles");
        let exec = Interpreter::new(&program.ir)
            .run(&w.input_refs())
            .expect("JPEG source runs");
        let expected = encode(&w.inputs[0].1, dim);
        assert_eq!(exec.return_value, Some(expected.bit_count), "bit count");
        let bits = exec.global("bitstream").unwrap();
        assert_eq!(
            &bits[..expected.bit_count as usize],
            &expected.bits[..],
            "bitstream"
        );
    }

    #[test]
    fn block_count_is_paper_scale() {
        // The paper reports 22 source-level basic blocks for its JPEG
        // code; our CDFG is the fully-inlined whole program (every call
        // site owns a copy of its callee's blocks), so the equivalent
        // scale is several dozen blocks.
        let w = workload(32, 1);
        let program = compile(&w.source, "main").unwrap();
        let n = program.cdfg.len();
        assert!(
            (15..=110).contains(&n),
            "JPEG CDFG has {n} blocks, expected paper-scale"
        );
    }

    #[test]
    fn dct_row_body_frequency_matches_paper_shape() {
        // For 256x256 the paper reports exec_freq 8192 for the hottest DCT
        // rows; at 32x32 the analogous frequency is (32/8)^2 * 8 = 128.
        let dim = 32;
        let w = workload(dim, 7);
        let program = compile(&w.source, "main").unwrap();
        let exec = Interpreter::new(&program.ir).run(&w.input_refs()).unwrap();
        let expected = ((dim / 8) * (dim / 8) * 8) as u64;
        assert!(
            exec.block_counts.contains(&expected),
            "no block with frequency {expected} (row-DCT body)"
        );
    }
}
