//! The mini-C source of the JPEG encoder.
//!
//! Re-implementation of the AMDREL industrial application the paper
//! evaluates (§4): "a JPEG encoder. The main parts of the JPEG encoder
//! are the DCT transformation unit, the quantizer, the zig-zag scanning
//! unit and the entropy (Huffman) encoder." The paper's workload is a
//! **256×256** greyscale image.
//!
//! Fixed-point, ALU + MUL only:
//!
//! * level shift (−128) per 8×8 block;
//! * 2-D DCT as two 1-D passes against a Q12 cosine matrix (the
//!   row-pass loop body executes `blocks × 8` times — 8192 for 256×256,
//!   exactly the `exec_freq` the paper reports for the hottest JPEG DCT
//!   blocks);
//! * quantisation by reciprocal multiply (`(v × recip) >> 16`,
//!   round-toward-zero — no division, as the paper notes);
//! * zig-zag scan through a constant table;
//! * entropy coding: JPEG-style DC-difference categories and AC
//!   run/size symbols with ZRL and EOB, emitted bit-by-bit (the
//!   bit-emission loop is the highest-frequency basic block, mirroring
//!   the paper's dominant JPEG kernel).
//!
//! The source is generated for a given image dimension so tests can use
//! small images while the paper experiments use 256×256.

/// The paper's image dimension.
pub const PAPER_DIM: usize = 256;

/// The zig-zag scan order (standard JPEG).
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The standard JPEG luminance quantisation table (quality ~50).
pub const QUANT_TABLE: [i64; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Worst-case bitstream capacity for a `dim × dim` image (27 bits per
/// coefficient is the loosest JPEG bound for our simplified tables).
pub fn bitstream_capacity(dim: usize) -> usize {
    (dim / 8) * (dim / 8) * 64 * 27
}

/// Generate the encoder source for a `dim × dim` image.
///
/// # Panics
///
/// Panics unless `dim` is a positive multiple of 8.
pub fn jpeg_source(dim: usize) -> String {
    assert!(
        dim > 0 && dim % 8 == 0,
        "image dimension must be a multiple of 8"
    );
    let pixels = dim * dim;
    let blocks_per_side = dim / 8;
    let capacity = bitstream_capacity(dim);
    let zigzag_init = ZIGZAG
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");

    format!(
        r#"
/* JPEG encoder: level shift -> 8x8 2-D DCT -> quantise -> zig-zag ->
   RLE/Huffman-style entropy coding. {dim}x{dim} greyscale input. */

int image[{pixels}];        /* input pixels, 0..255 */
int dct_cos[64];            /* input: DCT-II basis in Q12 */
int quant_recip[64];        /* input: floor(65536 / Q[i]) */
int zigzag[64] = {{{zigzag_init}}};

int block[64];
int coef[64];
int zz[64];
int bitstream[{capacity}]; /* one bit per element */
int bit_count[1];
int prev_dc[1];

/* Append the low `len` bits of `value`, MSB first. This is the hottest
   basic block of the encoder. */
void emit_bits(int value, int len) {{
    int pos = bit_count[0];
    for (int b = len - 1; b >= 0; b--) {{
        bitstream[pos] = (value >> b) & 1;
        pos++;
    }}
    bit_count[0] = pos;
}}

/* Magnitude category: number of bits needed for |v| (0 for v == 0). */
int category(int v) {{
    if (v < 0) {{ v = 0 - v; }}
    int cat = 0;
    while (v > 0) {{
        v = v >> 1;
        cat++;
    }}
    return cat;
}}

/* JPEG magnitude bits: v itself if positive, v - 1 in `cat` bits if
   negative (one's-complement style). */
int magnitude_bits(int v, int cat) {{
    int bitsval = v;
    if (v < 0) {{
        bitsval = v + (1 << cat) - 1;
    }}
    return bitsval;
}}

/* Load one 8x8 block with level shift. */
void load_block(int by, int bx) {{
    for (int y = 0; y < 8; y++) {{
        for (int x = 0; x < 8; x++) {{
            block[y * 8 + x] = image[(by * 8 + y) * {dim} + bx * 8 + x] - 128;
        }}
    }}
}}

/* Fast 1-D DCT over the rows of `block` into `coef`.
   Classic even/odd symmetry folding of the DCT-II matrix: bit-exact with
   the straight matrix product because every intermediate is exact integer
   arithmetic and the single >>12 happens at the same point. One straight-
   line body per row - the hot basic block the paper profiles at
   exec_freq 8192 for a 256x256 image. */
void dct_rows() {{
    int c4  = dct_cos[0];                          /* 1448 */
    int c20 = dct_cos[16]; int c21 = dct_cos[17];
    int c60 = dct_cos[48]; int c61 = dct_cos[49];
    int c10 = dct_cos[8];  int c11 = dct_cos[9];
    int c12 = dct_cos[10]; int c13 = dct_cos[11];
    int c30 = dct_cos[24]; int c31 = dct_cos[25];
    int c32 = dct_cos[26]; int c33 = dct_cos[27];
    int c50 = dct_cos[40]; int c51 = dct_cos[41];
    int c52 = dct_cos[42]; int c53 = dct_cos[43];
    int c70 = dct_cos[56]; int c71 = dct_cos[57];
    int c72 = dct_cos[58]; int c73 = dct_cos[59];
    for (int r = 0; r < 8; r++) {{
        int base = r * 8;
        int x0 = block[base];     int x1 = block[base + 1];
        int x2 = block[base + 2]; int x3 = block[base + 3];
        int x4 = block[base + 4]; int x5 = block[base + 5];
        int x6 = block[base + 6]; int x7 = block[base + 7];
        int s0 = x0 + x7; int s1 = x1 + x6;
        int s2 = x2 + x5; int s3 = x3 + x4;
        int d0 = x0 - x7; int d1 = x1 - x6;
        int d2 = x2 - x5; int d3 = x3 - x4;
        int e0 = s0 + s3; int e1 = s1 + s2;
        int o0 = s0 - s3; int o1 = s1 - s2;
        coef[base]     = ((e0 + e1) * c4) >> 12;
        coef[base + 4] = ((e0 - e1) * c4) >> 12;
        coef[base + 2] = (o0 * c20 + o1 * c21) >> 12;
        coef[base + 6] = (o0 * c60 + o1 * c61) >> 12;
        coef[base + 1] = (d0 * c10 + d1 * c11 + d2 * c12 + d3 * c13) >> 12;
        coef[base + 3] = (d0 * c30 + d1 * c31 + d2 * c32 + d3 * c33) >> 12;
        coef[base + 5] = (d0 * c50 + d1 * c51 + d2 * c52 + d3 * c53) >> 12;
        coef[base + 7] = (d0 * c70 + d1 * c71 + d2 * c72 + d3 * c73) >> 12;
    }}
}}

/* Fast 1-D DCT over the columns of `coef` back into `block` (same
   folding, column stride 8). */
void dct_cols() {{
    int c4  = dct_cos[0];
    int c20 = dct_cos[16]; int c21 = dct_cos[17];
    int c60 = dct_cos[48]; int c61 = dct_cos[49];
    int c10 = dct_cos[8];  int c11 = dct_cos[9];
    int c12 = dct_cos[10]; int c13 = dct_cos[11];
    int c30 = dct_cos[24]; int c31 = dct_cos[25];
    int c32 = dct_cos[26]; int c33 = dct_cos[27];
    int c50 = dct_cos[40]; int c51 = dct_cos[41];
    int c52 = dct_cos[42]; int c53 = dct_cos[43];
    int c70 = dct_cos[56]; int c71 = dct_cos[57];
    int c72 = dct_cos[58]; int c73 = dct_cos[59];
    for (int c = 0; c < 8; c++) {{
        int x0 = coef[c];      int x1 = coef[c + 8];
        int x2 = coef[c + 16]; int x3 = coef[c + 24];
        int x4 = coef[c + 32]; int x5 = coef[c + 40];
        int x6 = coef[c + 48]; int x7 = coef[c + 56];
        int s0 = x0 + x7; int s1 = x1 + x6;
        int s2 = x2 + x5; int s3 = x3 + x4;
        int d0 = x0 - x7; int d1 = x1 - x6;
        int d2 = x2 - x5; int d3 = x3 - x4;
        int e0 = s0 + s3; int e1 = s1 + s2;
        int o0 = s0 - s3; int o1 = s1 - s2;
        block[c]      = ((e0 + e1) * c4) >> 12;
        block[c + 32] = ((e0 - e1) * c4) >> 12;
        block[c + 16] = (o0 * c20 + o1 * c21) >> 12;
        block[c + 48] = (o0 * c60 + o1 * c61) >> 12;
        block[c + 8]  = (d0 * c10 + d1 * c11 + d2 * c12 + d3 * c13) >> 12;
        block[c + 24] = (d0 * c30 + d1 * c31 + d2 * c32 + d3 * c33) >> 12;
        block[c + 40] = (d0 * c50 + d1 * c51 + d2 * c52 + d3 * c53) >> 12;
        block[c + 56] = (d0 * c70 + d1 * c71 + d2 * c72 + d3 * c73) >> 12;
    }}
}}

/* Quantise by reciprocal multiply (round toward zero). */
void quantise() {{
    for (int i = 0; i < 64; i++) {{
        int v = block[i];
        int neg = 0;
        if (v < 0) {{ neg = 1; v = 0 - v; }}
        int q = (v * quant_recip[i]) >> 16;
        if (neg == 1) {{ q = 0 - q; }}
        block[i] = q;
    }}
}}

/* Zig-zag scan into zz. */
void zigzag_scan() {{
    for (int i = 0; i < 64; i++) {{
        zz[i] = block[zigzag[i]];
    }}
}}

/* Entropy-code one zig-zagged block. */
void encode_block() {{
    /* DC: 4-bit category then magnitude bits. */
    int diff = zz[0] - prev_dc[0];
    prev_dc[0] = zz[0];
    int cat = category(diff);
    emit_bits(cat, 4);
    if (cat > 0) {{
        emit_bits(magnitude_bits(diff, cat), cat);
    }}
    /* AC: run/size symbols with ZRL and EOB. */
    int run = 0;
    for (int i = 1; i < 64; i++) {{
        int v = zz[i];
        if (v == 0) {{
            run++;
        }} else {{
            while (run > 15) {{
                emit_bits(0xF0, 8);   /* ZRL: 16 zeros */
                run = run - 16;
            }}
            int acat = category(v);
            emit_bits((run << 4) | acat, 8);
            emit_bits(magnitude_bits(v, acat), acat);
            run = 0;
        }}
    }}
    if (run > 0) {{
        emit_bits(0, 8);              /* EOB */
    }}
}}

int main() {{
    bit_count[0] = 0;
    prev_dc[0] = 0;
    for (int by = 0; by < {blocks_per_side}; by++) {{
        for (int bx = 0; bx < {blocks_per_side}; bx++) {{
            load_block(by, bx);
            dct_rows();
            dct_cols();
            quantise();
            zigzag_scan();
            encode_block();
        }}
    }}
    return bit_count[0];
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z]);
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn source_compiles_for_small_dims() {
        for dim in [8, 16, 64] {
            let src = jpeg_source(dim);
            amdrel_minic::compile(&src, "main").unwrap_or_else(|e| panic!("dim {dim}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_dim_panics() {
        let _ = jpeg_source(10);
    }
}
