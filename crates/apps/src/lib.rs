//! # amdrel-apps — the paper's case-study applications
//!
//! Galanis et al. validate their partitioning methodology on two
//! industrial codes developed by the AMDREL consortium: the front-end of
//! an IEEE 802.11a OFDM transmitter and a JPEG encoder. Those C sources
//! were never published, so this crate re-implements both from their
//! published structure:
//!
//! * [`ofdm`] — 16-QAM mapping → 64-point radix-2 IFFT → cyclic prefix,
//!   6 payload symbols (the paper's input size), in mini-C plus a
//!   bit-exact Rust reference;
//! * [`jpeg`] — level shift → 8×8 2-D DCT → quantisation → zig-zag →
//!   run-length/Huffman-style entropy coding, parameterised image size
//!   (the paper uses 256×256), in mini-C plus a bit-exact Rust reference;
//! * [`paper`] — the paper's published Tables 1–3 as constants, and a
//!   synthesiser that builds CDFGs matching the authors' own Table 1
//!   profiles so the engine can be driven by their measurements directly;
//! * [`sobel`] — a third case study (edge detection) beyond the paper's
//!   two, same domain, different kernel shape.
//!
//! Each case study also exposes a `design_space()` entry point (built on
//! [`standard_design_space`]) feeding the `amdrel-explore` subsystem, so
//! the paper's fixed four-configuration grids generalise to seeded
//! multi-objective searches per application; the [`runtime`] module
//! derives per-app [`AppProfile`](amdrel_runtime::AppProfile)s (phase
//! costs + fine-grain configuration footprint) feeding the
//! `amdrel-runtime` multi-tenant simulator.
//!
//! # Examples
//!
//! ```no_run
//! use amdrel_apps::ofdm;
//! use amdrel_core::{Platform, PartitioningEngine};
//! use amdrel_profiler::{AnalysisReport, WeightTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = ofdm::workload(42);
//! let (program, execution) = workload.compile_and_profile()?;
//! let analysis = AnalysisReport::analyze(
//!     &program.cdfg,
//!     &execution.block_counts,
//!     &WeightTable::paper(),
//! );
//! let platform = Platform::paper(1500, 3);
//! let result = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
//!     .run(60_000)?;
//! println!("{:.1}% cycle reduction", result.reduction_percent());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod jpeg;
pub mod ofdm;
pub mod paper;
pub mod runtime;
pub mod sobel;

use amdrel_coarsegrain::{CgcDatapath, CgcGeometry};
use amdrel_explore::DesignSpace;
use amdrel_minic::CompiledProgram;
use amdrel_profiler::{Execution, Interpreter};

/// The standard exploration space shared by the case studies: the
/// paper's two configurations embedded in a wider sweep of FPGA areas
/// (1200 up — the fine-grain mapper refuses smaller devices — to 20 000)
/// and one-to-four 2×2-CGC datapaths, with kernel budgets `0..=8` (the
/// Table 1 horizon).
///
/// Each case-study module exposes a `design_space()` entry point built on
/// this, carrying its own timing constraint.
pub fn standard_design_space(constraint: u64) -> DesignSpace {
    DesignSpace {
        areas: vec![1200, 1500, 2500, 5000, 10_000, 20_000],
        datapaths: (1..=4)
            .map(|k| CgcDatapath::uniform(k, CgcGeometry::TWO_BY_TWO))
            .collect(),
        max_kernel_budget: 8,
        constraint,
    }
}

/// A runnable application: mini-C source plus its input bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The mini-C source text.
    pub source: String,
    /// Global-array input bindings `(name, contents)`.
    pub inputs: Vec<(String, Vec<i64>)>,
}

impl Workload {
    /// Input bindings as the borrowed form the interpreter takes.
    pub fn input_refs(&self) -> Vec<(&str, &[i64])> {
        self.inputs
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect()
    }

    /// Compile the source and profile it on the workload's inputs.
    ///
    /// # Errors
    ///
    /// Compilation or interpretation failures.
    pub fn compile_and_profile(
        &self,
    ) -> Result<(CompiledProgram, Execution), Box<dyn std::error::Error>> {
        let program = amdrel_minic::compile(&self.source, "main")?;
        let execution = Interpreter::new(&program.ir).run(&self.input_refs())?;
        Ok((program, execution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_plumbing() {
        let w = Workload {
            name: "toy".into(),
            source: "int x[2]; int main() { return x[0] + x[1]; }".into(),
            inputs: vec![("x".into(), vec![20, 22])],
        };
        let (_, exec) = w.compile_and_profile().unwrap();
        assert_eq!(exec.return_value, Some(42));
    }
}
