//! Per-application runtime profiles for the multi-tenant simulator
//! (`amdrel-runtime`).
//!
//! Each case study compiles, profiles and partitions once on a given
//! platform; the resulting [`AppProfile`] carries the per-job phase
//! costs (eq. (2) breakdown) and the fine-grain configuration footprint
//! (temporal-partition areas of the blocks the engine left on the
//! FPGA). The [`standard_mix`] bundles all three case studies at
//! simulation-friendly input sizes with distinct service classes:
//! OFDM symbols are latency-critical, Sobel frames are interactive,
//! JPEG encodes are batch work.

use crate::{jpeg, ofdm, paper, sobel, Workload};
use amdrel_core::{MappingCache, PartitioningEngine, Platform};
use amdrel_explore::RuntimeEvaluator;
use amdrel_finegrain::CdfgFineGrainMapping;
use amdrel_profiler::{AnalysisReport, WeightTable};
use amdrel_runtime::{AppProfile, ShortestJobFirst};

/// Workload seed shared by the profile builders (the same seed the
/// bench harness uses, so profiles line up with the committed
/// baselines).
pub const PROFILE_SEED: u64 = 2004;

/// Reduced input sizes for the heavy encoders: profiles only need the
/// per-job cost structure, not the paper's full-resolution runtime.
pub const JPEG_RUNTIME_DIM: usize = 64;
/// Sobel frame edge length used for the runtime profile.
pub const SOBEL_RUNTIME_DIM: usize = 32;

/// Derive the runtime profile of `workload` partitioned on `platform`
/// under `constraint` (`None` targets half the all-FPGA cycle count,
/// forcing a real partitioning).
///
/// # Errors
///
/// Compilation, profiling, mapping or partitioning failures.
pub fn profile_workload(
    name: &str,
    priority: u8,
    workload: &Workload,
    platform: &Platform,
    constraint: Option<u64>,
) -> Result<AppProfile, Box<dyn std::error::Error>> {
    let (program, execution) = workload.compile_and_profile()?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let cache = MappingCache::new();
    let engine =
        PartitioningEngine::new(&program.cdfg, &analysis, platform).with_mapping_cache(&cache);
    let constraint = match constraint {
        Some(c) => c,
        None => (engine.run(u64::MAX)?.initial_cycles / 2).max(1),
    };
    let result = engine.run(constraint)?;
    let mapping = CdfgFineGrainMapping::map(&program.cdfg, &platform.fpga)?;
    Ok(AppProfile::from_partitioning(
        name, priority, &result, &mapping,
    ))
}

/// The OFDM transmitter profile (paper workload size, priority 2 —
/// the latency-critical communications tenant).
///
/// # Errors
///
/// See [`profile_workload`].
pub fn ofdm_profile(platform: &Platform) -> Result<AppProfile, Box<dyn std::error::Error>> {
    profile_workload(
        "ofdm",
        2,
        &ofdm::workload(PROFILE_SEED),
        platform,
        Some(paper::OFDM_CONSTRAINT),
    )
}

/// The JPEG encoder profile at [`JPEG_RUNTIME_DIM`]² (priority 0 —
/// batch work).
///
/// # Errors
///
/// See [`profile_workload`].
pub fn jpeg_profile(platform: &Platform) -> Result<AppProfile, Box<dyn std::error::Error>> {
    profile_workload(
        "jpeg",
        0,
        &jpeg::workload(JPEG_RUNTIME_DIM, PROFILE_SEED),
        platform,
        None,
    )
}

/// The Sobel edge-detector profile at [`SOBEL_RUNTIME_DIM`]² (priority
/// 1 — interactive vision).
///
/// # Errors
///
/// See [`profile_workload`].
pub fn sobel_profile(platform: &Platform) -> Result<AppProfile, Box<dyn std::error::Error>> {
    profile_workload(
        "sobel",
        1,
        &sobel::workload(SOBEL_RUNTIME_DIM, PROFILE_SEED),
        platform,
        None,
    )
}

/// The three-tenant standard mix (`ofdm`, `jpeg`, `sobel`), in that
/// order, partitioned on `platform`.
///
/// # Errors
///
/// The first profile that fails to build.
pub fn standard_mix(platform: &Platform) -> Result<Vec<AppProfile>, Box<dyn std::error::Error>> {
    Ok(vec![
        ofdm_profile(platform)?,
        jpeg_profile(platform)?,
        sobel_profile(platform)?,
    ])
}

/// Workload seed of the contention-aware exploration entry points
/// (shared with `bench_report`, so explorations line up with the
/// committed `BENCH_explore_contention.json` baseline).
pub const CONTENTION_SEED: u64 = 42;
/// Jobs per contention simulation.
pub const CONTENTION_NJOBS: usize = 200;
/// Offered fine-grain load of the contention workload, percent
/// (sustained overload — the regime where platforms differentiate).
pub const CONTENTION_LOAD: u64 = 130;

/// A [`RuntimeEvaluator`] for exploring `candidate` (one of the three
/// case studies) under contention from the *other two* standard-mix
/// tenants, profiled on `platform`: the candidate's per-job profile is
/// re-derived from each design point's own engine result, while the
/// background tenants keep the profiles the static flow gave them on
/// the base platform. Scheduling is shortest-job-first — the policy the
/// committed `BENCH_runtime.json` baseline recommends for latency, i.e.
/// the one a deployment would actually run — over the seeded
/// [`CONTENTION_NJOBS`]-job mix, with the arrival rate pinned to
/// [`CONTENTION_LOAD`]% of the *standard mix on the base platform*:
/// one absolute traffic level for the whole design space, so candidate
/// platforms are compared under identical offered load.
///
/// Attach it with
/// [`Evaluator::with_runtime`](amdrel_explore::Evaluator::with_runtime)
/// and select runtime objectives
/// ([`ObjectiveSet::parse`](amdrel_explore::ObjectiveSet::parse), e.g.
/// `"cycles,area,energy,p95"`) to make the search contention-aware.
///
/// # Errors
///
/// An unknown case-study name, or a background profile that fails to
/// build.
pub fn contention_evaluator(
    candidate: &str,
    platform: &Platform,
) -> Result<RuntimeEvaluator, Box<dyn std::error::Error>> {
    let mix = standard_mix(platform)?;
    let arrival = amdrel_runtime::WorkloadSpec::mean_interarrival_for(&mix, CONTENTION_LOAD);
    let idx = mix
        .iter()
        .position(|p| p.name == candidate)
        .ok_or_else(|| {
            format!("unknown case study '{candidate}' (expected ofdm, jpeg or sobel)")
        })?;
    let priority = mix[idx].priority;
    let background: Vec<AppProfile> = mix.into_iter().filter(|p| p.name != candidate).collect();
    Ok(
        RuntimeEvaluator::new(background, Box::new(ShortestJobFirst))
            .with_priority(priority)
            .with_seed(CONTENTION_SEED)
            .with_njobs(CONTENTION_NJOBS)
            .with_load(CONTENTION_LOAD)
            .with_arrival(arrival),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofdm_profile_is_partitioned_and_configured() {
        let platform = Platform::paper(1500, 2);
        let p = ofdm_profile(&platform).unwrap();
        assert_eq!(p.name, "ofdm");
        assert_eq!(p.priority, 2);
        assert!(p.fine_cycles > 0, "some blocks stay on the FPGA");
        assert!(p.coarse_cycles > 0, "the engine moved kernels to the CGCs");
        assert!(
            !p.config.partition_areas.is_empty(),
            "FPGA-resident blocks occupy temporal partitions"
        );
        // The configuration footprint fits the paper's device count no
        // better than sanity: each partition respects usable area.
        let usable = platform.fpga.usable_area();
        assert!(p.config.partition_areas.iter().all(|&a| a <= usable));
    }
}
