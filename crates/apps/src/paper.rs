//! The paper's published experimental data (Tables 1–3), plus a synthetic
//! "paper profile" CDFG generator.
//!
//! Two reproduction paths exist in this workspace:
//!
//! 1. **re-implemented applications** ([`crate::ofdm`], [`crate::jpeg`]) —
//!    run the full flow end to end and compare *shapes* against the paper;
//! 2. **paper profiles** (this module) — drive the partitioning engine
//!    with the authors' own Table 1 measurements by synthesising a CDFG
//!    whose blocks have exactly the published `exec_freq`/`bb_weight`
//!    pairs. This isolates the engine from differences in our frontend
//!    and applications.

use amdrel_cdfg::{BasicBlock, BlockId, Cdfg, Dfg, OpKind};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Basic-block number as printed in the paper.
    pub bb: u32,
    /// Execution frequency.
    pub exec_freq: u64,
    /// Operations weight (`bb_weight`).
    pub ops_weight: u64,
    /// `exec_freq × ops_weight`.
    pub total_weight: u64,
}

/// Table 1, OFDM transmitter (6 payload symbols): the 8 most
/// computationally intensive of its 18 basic blocks.
pub const OFDM_TABLE1: [Table1Row; 8] = [
    Table1Row {
        bb: 22,
        exec_freq: 336,
        ops_weight: 115,
        total_weight: 38640,
    },
    Table1Row {
        bb: 12,
        exec_freq: 1200,
        ops_weight: 25,
        total_weight: 30000,
    },
    Table1Row {
        bb: 3,
        exec_freq: 864,
        ops_weight: 6,
        total_weight: 5184,
    },
    Table1Row {
        bb: 5,
        exec_freq: 370,
        ops_weight: 12,
        total_weight: 4440,
    },
    Table1Row {
        bb: 42,
        exec_freq: 800,
        ops_weight: 5,
        total_weight: 4000,
    },
    Table1Row {
        bb: 32,
        exec_freq: 560,
        ops_weight: 6,
        total_weight: 3360,
    },
    Table1Row {
        bb: 29,
        exec_freq: 448,
        ops_weight: 7,
        total_weight: 3136,
    },
    Table1Row {
        bb: 21,
        exec_freq: 147,
        ops_weight: 18,
        total_weight: 2646,
    },
];

/// Table 1, JPEG encoder (256×256 image): the 8 most computationally
/// intensive of its 22 basic blocks.
pub const JPEG_TABLE1: [Table1Row; 8] = [
    Table1Row {
        bb: 6,
        exec_freq: 355_024,
        ops_weight: 3,
        total_weight: 1_065_072,
    },
    Table1Row {
        bb: 2,
        exec_freq: 8192,
        ops_weight: 85,
        total_weight: 696_320,
    },
    Table1Row {
        bb: 1,
        exec_freq: 8192,
        ops_weight: 83,
        total_weight: 679_936,
    },
    Table1Row {
        bb: 22,
        exec_freq: 65_536,
        ops_weight: 5,
        total_weight: 327_680,
    },
    Table1Row {
        bb: 8,
        exec_freq: 30_927,
        ops_weight: 8,
        total_weight: 247_416,
    },
    Table1Row {
        bb: 3,
        exec_freq: 65_536,
        ops_weight: 3,
        total_weight: 196_608,
    },
    Table1Row {
        bb: 16,
        exec_freq: 63_540,
        ops_weight: 3,
        total_weight: 190_620,
    },
    Table1Row {
        bb: 17,
        exec_freq: 63_540,
        ops_weight: 2,
        total_weight: 127_080,
    },
];

/// One configuration column of the paper's Table 2 or 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperResult {
    /// `A_FPGA` in area units.
    pub area: u64,
    /// Number of 2×2 CGCs.
    pub cgcs: usize,
    /// All-FPGA cycles ("Initial Cycles").
    pub initial_cycles: u64,
    /// "Cycles in CGC".
    pub cycles_in_cgc: u64,
    /// Basic blocks moved to the coarse-grain hardware.
    pub moved_bbs: &'static [u32],
    /// "Final cycles".
    pub final_cycles: u64,
    /// "% cycles reduction".
    pub reduction_percent: f64,
}

/// The paper's OFDM timing constraint (Table 2): 60 000 clock cycles.
pub const OFDM_CONSTRAINT: u64 = 60_000;

/// The paper's JPEG timing constraint (Table 3): 11 × 10⁶ clock cycles.
pub const JPEG_CONSTRAINT: u64 = 11_000_000;

/// Table 2 of the paper (OFDM transmitter).
pub const OFDM_TABLE2: [PaperResult; 4] = [
    PaperResult {
        area: 1500,
        cgcs: 2,
        initial_cycles: 263_408,
        cycles_in_cgc: 53_184,
        moved_bbs: &[22, 12, 3],
        final_cycles: 57_088,
        reduction_percent: 78.3,
    },
    PaperResult {
        area: 1500,
        cgcs: 3,
        initial_cycles: 263_408,
        cycles_in_cgc: 41_472,
        moved_bbs: &[22, 12],
        final_cycles: 47_856,
        reduction_percent: 81.8,
    },
    PaperResult {
        area: 5000,
        cgcs: 2,
        initial_cycles: 124_080,
        cycles_in_cgc: 53_184,
        moved_bbs: &[22, 12, 3],
        final_cycles: 56_864,
        reduction_percent: 54.1,
    },
    PaperResult {
        area: 5000,
        cgcs: 3,
        initial_cycles: 124_080,
        cycles_in_cgc: 41_472,
        moved_bbs: &[22, 12],
        final_cycles: 46_512,
        reduction_percent: 62.5,
    },
];

/// Table 3 of the paper (JPEG encoder), cycle figures in raw cycles.
///
/// The printed table labels its cycle rows "×10⁶", but that is
/// inconsistent with its own constraint (11×10⁶ cycles, which "Final
/// cycles 10558" must satisfy) and reduction percentages; the figures are
/// evidently in units of 10³. The constants below use that reading
/// (initial 18.434×10⁶, final 10.558×10⁶, …), under which every
/// percentage in the table checks out exactly.
pub const JPEG_TABLE3: [PaperResult; 4] = [
    PaperResult {
        area: 1500,
        cgcs: 2,
        initial_cycles: 18_434_000,
        cycles_in_cgc: 5_817_000,
        moved_bbs: &[6, 2, 1],
        final_cycles: 10_558_000,
        reduction_percent: 42.7,
    },
    PaperResult {
        area: 1500,
        cgcs: 3,
        initial_cycles: 18_434_000,
        cycles_in_cgc: 5_699_000,
        moved_bbs: &[6, 2, 1],
        final_cycles: 10_411_000,
        reduction_percent: 43.5,
    },
    PaperResult {
        area: 5000,
        cgcs: 2,
        initial_cycles: 12_399_000,
        cycles_in_cgc: 5_817_000,
        moved_bbs: &[6, 2, 1],
        final_cycles: 10_423_000,
        reduction_percent: 15.9,
    },
    PaperResult {
        area: 5000,
        cgcs: 3,
        initial_cycles: 12_399_000,
        cycles_in_cgc: 5_669_000,
        moved_bbs: &[6, 2, 1],
        final_cycles: 10_227_000,
        reduction_percent: 17.5,
    },
];

/// A synthesised application whose analysis profile matches a paper
/// Table 1: the CDFG plus the execution-frequency vector to feed
/// [`amdrel_profiler::AnalysisReport::analyze`].
#[derive(Debug, Clone)]
pub struct PaperProfile {
    /// The synthetic CDFG (`bb i` carries the paper's BB *i* where the
    /// paper lists one; other blocks are light glue).
    pub cdfg: Cdfg,
    /// Per-block execution frequencies.
    pub exec_freq: Vec<u64>,
}

/// Synthesise a CDFG matching a Table 1 profile.
///
/// For each listed row a basic block is built whose DFG has the exact
/// `ops_weight` under the paper's weights (ALU = 1, MUL = 2, memory 1):
/// multiply-accumulate chains (the dominant DSP idiom) padded with ALU
/// ops. All listed blocks are placed inside a loop so kernel extraction
/// sees them as candidates; `total_blocks − rows` light glue blocks model
/// the rest of the application (the paper's OFDM has 18 BBs, JPEG 22).
///
/// `bb` numbers from the table index directly into the CDFG, so the
/// engine's "BB no." output is comparable with the paper's.
///
/// # Panics
///
/// Panics if `total_blocks` is smaller than the largest `bb` number + 2.
pub fn synthesize_profile(rows: &[Table1Row], total_blocks: usize) -> PaperProfile {
    let max_bb = rows.iter().map(|r| r.bb).max().unwrap_or(0) as usize;
    assert!(
        total_blocks > max_bb + 1,
        "need at least {} blocks to host BB {max_bb}",
        max_bb + 2
    );

    let mut cdfg = Cdfg::new("paper_profile");
    let mut exec_freq = vec![1u64; total_blocks];

    for (i, freq) in exec_freq.iter_mut().enumerate() {
        let row = rows.iter().find(|r| r.bb as usize == i);
        let (label, dfg) = match row {
            Some(r) => (format!("bb{}(paper)", r.bb), weight_dfg(r.ops_weight, r.bb)),
            None => (format!("bb{i}(glue)"), glue_dfg(i)),
        };
        if let Some(r) = row {
            *freq = r.exec_freq;
        }
        cdfg.add_block(BasicBlock::from_dfg(label, dfg));
    }

    // Control skeleton: bb0 is the entry; every other block sits in one
    // big loop bb0 → bb1 → … → bbN-1 → bb1, with bb0 → exit path through
    // the last block. This puts every listed block inside a loop (kernel
    // candidates) without modelling the application's exact control flow,
    // which the engine never consults beyond loop membership.
    for i in 0..total_blocks - 1 {
        cdfg.add_edge(BlockId(i as u32), BlockId(i as u32 + 1))
            .expect("sequential edge");
    }
    cdfg.add_edge(BlockId(total_blocks as u32 - 1), BlockId(1))
        .expect("back edge");
    PaperProfile { cdfg, exec_freq }
}

/// Build a DFG with exactly `weight` under ALU=1/MUL=2/mem=1: `k` chained
/// multiply-adds (weight 3 each) plus ALU padding, fed by a few live-ins
/// and draining to live-outs (4-in/2-out interface, a typical kernel).
fn weight_dfg(weight: u64, bb: u32) -> Dfg {
    let mut dfg = Dfg::new(format!("paper_bb{bb}"));
    let in0 = dfg.add_op(OpKind::LiveIn, 16);
    let in1 = dfg.add_op(OpKind::LiveIn, 16);
    let in2 = dfg.add_op(OpKind::LiveIn, 16);
    let in3 = dfg.add_op(OpKind::LiveIn, 16);
    let mut remaining = weight;
    let mut tail = in0;
    let mut alt = in1;
    // Multiply-accumulate segments while ≥3 weight remains.
    while remaining >= 3 {
        let m = dfg.add_op(OpKind::Mul, 16);
        dfg.add_edge(tail, m).expect("edge");
        dfg.add_edge(alt, m).expect("edge");
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(m, a).expect("edge");
        dfg.add_edge(in2, a).expect("edge");
        tail = a;
        alt = if alt == in1 { in3 } else { in1 };
        remaining -= 3;
    }
    // ALU padding for the remainder.
    while remaining > 0 {
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(tail, a).expect("edge");
        dfg.add_edge(in3, a).expect("edge");
        tail = a;
        remaining -= 1;
    }
    let out0 = dfg.add_op(OpKind::LiveOut, 32);
    dfg.add_edge(tail, out0).expect("edge");
    let first_mul = dfg.node_ids().find(|&n| dfg.node(n).kind == OpKind::Mul);
    if let Some(second) = first_mul {
        let out1 = dfg.add_op(OpKind::LiveOut, 32);
        dfg.add_edge(second, out1).expect("edge");
    }
    dfg
}

/// A light glue block: one compare + one add (weight 2), the typical loop
/// bookkeeping the paper's non-kernel blocks carry.
fn glue_dfg(i: usize) -> Dfg {
    let mut dfg = Dfg::new(format!("glue{i}"));
    let a = dfg.add_op(OpKind::LiveIn, 16);
    let add = dfg.add_op(OpKind::Add, 16);
    let cmp = dfg.add_op(OpKind::Lt, 16);
    dfg.add_edge(a, add).expect("edge");
    dfg.add_edge(add, cmp).expect("edge");
    let out = dfg.add_op(OpKind::LiveOut, 16);
    dfg.add_edge(add, out).expect("edge");
    dfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_profiler::{bb_weight, AnalysisReport, WeightTable};

    #[test]
    fn table1_products_hold() {
        for r in OFDM_TABLE1.iter().chain(&JPEG_TABLE1) {
            assert_eq!(
                r.exec_freq * r.ops_weight,
                r.total_weight,
                "bb {} total weight",
                r.bb
            );
        }
    }

    #[test]
    fn table1_sorted_descending() {
        for table in [&OFDM_TABLE1[..], &JPEG_TABLE1[..]] {
            for w in table.windows(2) {
                assert!(w[0].total_weight >= w[1].total_weight);
            }
        }
    }

    #[test]
    fn synthesized_weights_exact() {
        let profile = synthesize_profile(&OFDM_TABLE1, 44);
        let table = WeightTable::paper();
        for r in &OFDM_TABLE1 {
            let bb = profile.cdfg.block(BlockId(r.bb));
            assert_eq!(
                bb_weight(&bb.dfg, &table),
                r.ops_weight,
                "bb {} weight",
                r.bb
            );
            assert_eq!(profile.exec_freq[r.bb as usize], r.exec_freq);
        }
    }

    #[test]
    fn synthesized_analysis_reproduces_table1_ordering() {
        let profile = synthesize_profile(&JPEG_TABLE1, 24);
        let report =
            AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
        let top: Vec<u32> = report.top_kernels(8).iter().map(|b| b.block.0).collect();
        let expected: Vec<u32> = JPEG_TABLE1.iter().map(|r| r.bb).collect();
        assert_eq!(top, expected, "kernel ordering must match Table 1");
        for (row, prof) in JPEG_TABLE1.iter().zip(report.top_kernels(8)) {
            assert_eq!(prof.total_weight, row.total_weight, "bb {}", row.bb);
        }
    }

    #[test]
    fn synthesized_blocks_are_kernel_candidates() {
        let profile = synthesize_profile(&OFDM_TABLE1, 44);
        let report =
            AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
        for r in &OFDM_TABLE1 {
            assert!(
                report.kernels().contains(&BlockId(r.bb)),
                "bb {} must be a kernel candidate",
                r.bb
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_blocks_panics() {
        let _ = synthesize_profile(&OFDM_TABLE1, 10);
    }
}
