//! # amdrel-explore — multi-objective design-space exploration
//!
//! The paper's methodology evaluates one `(FPGA config, CGC datapath,
//! kernel selection)` point at a time; the related Zynq estimator work
//! (Jiménez-González et al.) and Chen et al.'s integrated
//! partitioning/scheduling optimiser both exist to *search* such spaces.
//! This crate turns the workspace's fast evaluator (incremental
//! [`PartitioningEngine`](amdrel_core::PartitioningEngine), shared
//! [`MappingCache`](amdrel_core::MappingCache), parallel grid sweep) into
//! that explorer:
//!
//! * [`DesignSpace`] / [`PointIdx`] — the joint space of FPGA areas ×
//!   CGC datapaths × kernel-selection budgets;
//! * [`Evaluator`] — memoised point evaluation: one full-drain engine run
//!   prices every kernel budget of an `(area, datapath)` cell, timing
//!   from the engine's breakdowns and energy from
//!   [`BlockEnergyCosts`](amdrel_core::BlockEnergyCosts) deltas;
//! * [`ObjectiveSet`] / [`Objectives`] — the minimised objectives as an
//!   N-vector: the classic static triple (total cycles, FPGA area,
//!   energy) by default, extensible with runtime objectives (`p95`,
//!   `throughput`) scored under multi-tenant contention;
//! * [`RuntimeEvaluator`] — the contention scorer: derives the
//!   candidate's per-job [`AppProfile`](amdrel_runtime::AppProfile)
//!   from each design point's own engine result, joins it with fixed
//!   background tenants, and plays a seeded workload mix through the
//!   deterministic `amdrel-runtime` simulator;
//! * [`ParetoArchive`] — the non-dominated frontier over the selected
//!   objective vector (any arity), with deterministic iteration order
//!   and deterministic post-search pruning;
//! * [`SearchStrategy`] — pluggable search: [`Exhaustive`] (the parallel
//!   grid sweep), [`RandomSampling`], and [`SimulatedAnnealing`], all
//!   seeded from [`amdrel_core::rng::SplitMix64`] so frontiers are
//!   bit-reproducible and `--jobs`-independent;
//! * [`explore`] / [`ExploreReport`] — one-call driver with effort
//!   counters (evaluator, mapping cache and archive churn, flattened
//!   into an [`amdrel_core::MetricsRegistry`] by
//!   [`json::explore_metrics`]), a paper-style table, and [`json`]
//!   rendering (schema `amdrel-explore/v3`).
//!
//! # Examples
//!
//! ```
//! use amdrel_core::{EnergyModel, MappingCache, Platform};
//! use amdrel_explore::{
//!     explore, DesignSpace, Evaluator, ExploreConfig, SimulatedAnnealing,
//! };
//! use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     int x[64];
//!     int y[64];
//!     int main() {
//!         for (int i = 0; i < 64; i++) {
//!             y[i] = x[i] * x[i] * 3 + x[i] * 7 + 11;
//!         }
//!         return y[63];
//!     }
//! "#;
//! let program = amdrel_minic::compile(src, "main")?;
//! let execution = Interpreter::new(&program.ir).run(&[])?;
//! let analysis =
//!     AnalysisReport::analyze(&program.cdfg, &execution.block_counts, &WeightTable::paper());
//! let base = Platform::paper(1500, 2);
//! let space = DesignSpace {
//!     areas: vec![1200, 1500, 5000],
//!     datapaths: vec![
//!         amdrel_coarsegrain::CgcDatapath::two_2x2(),
//!         amdrel_coarsegrain::CgcDatapath::three_2x2(),
//!     ],
//!     max_kernel_budget: 2,
//!     constraint: 2_000,
//! };
//! let cache = MappingCache::new();
//! let eval = Evaluator::new(
//!     "toy", &program.cdfg, &analysis, &base, EnergyModel::default(), &cache,
//! );
//! let report = explore(&eval, &space, &SimulatedAnnealing::default(), &ExploreConfig {
//!     seed: 42,
//!     eval_budget: 24,
//!     jobs: 0,
//! })?;
//! assert!(!report.frontier.is_empty());
//! println!("{}", report.format_table());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod archive;
mod contention;
mod eval;
pub mod json;
mod objective;
mod report;
mod space;
mod strategy;

pub use archive::{Insert, ParetoArchive};
pub use contention::{ContentionMetrics, RuntimeEvaluator};
pub use eval::{EvalStats, Evaluator, PointEval};
pub use objective::{Objective, ObjectiveSet, Objectives};
pub use report::{explore, ExploreReport};
pub use space::{DesignSpace, PointIdx};
pub use strategy::{Exhaustive, ExploreConfig, RandomSampling, SearchStrategy, SimulatedAnnealing};

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_coarsegrain::CgcDatapath;
    use amdrel_core::{EnergyBreakdown, EnergyModel, MappingCache, Platform};
    use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};

    pub(crate) fn toy() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
        let src = r#"
            int data[128];
            int out[128];
            int main() {
                int acc = 0;
                for (int i = 0; i < 128; i++) {
                    int x = data[i];
                    out[i] = x * x * 5 + x * 3 + 7;
                    acc += out[i];
                }
                return acc;
            }
        "#;
        let c = amdrel_minic::compile(src, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let a = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        (c, a)
    }

    pub(crate) fn toy_space() -> DesignSpace {
        DesignSpace {
            areas: vec![1200, 1500, 5000],
            datapaths: vec![CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
            max_kernel_budget: 3,
            constraint: 3_000,
        }
    }

    fn synthetic_eval(cycles: u64, area: u64, energy: u64) -> PointEval {
        PointEval {
            point: PointIdx {
                area: 0,
                datapath: 0,
                budget: 0,
            },
            area,
            datapath: "two 2x2 CGCs".to_owned(),
            kernels_moved: 0,
            initial_cycles: cycles.max(1) * 2,
            cycles,
            energy: EnergyBreakdown {
                e_fpga_ops: energy,
                e_reconfig: 0,
                e_cgc_ops: 0,
                e_comm: 0,
            },
            contention: None,
            objectives: Objectives::new(vec![cycles, area, energy]),
            met: true,
        }
    }

    #[test]
    fn exhaustive_frontier_is_nondominated_and_optimal() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let space = toy_space();
        let report = explore(&eval, &space, &Exhaustive, &ExploreConfig::default()).unwrap();
        assert!(!report.frontier.is_empty());
        // Every pair is mutually non-dominated.
        for (i, p) in report.frontier.iter().enumerate() {
            for (j, q) in report.frontier.iter().enumerate() {
                if i != j {
                    assert!(
                        !p.objectives.dominates(&q.objectives),
                        "{p:?} dominates {q:?}"
                    );
                }
            }
        }
        // Exhaustive covers the whole space, one engine run per cell.
        assert_eq!(report.stats.points_evaluated as usize, space.len());
        assert_eq!(report.stats.engine_runs as usize, space.cells());
        // The grid-wide cycle optimum is on the frontier.
        let mut best = u64::MAX;
        for flat in 0..space.len() {
            best = best.min(eval.evaluate(&space, space.point(flat)).unwrap().cycles);
        }
        assert_eq!(report.best_cycles().unwrap().cycles, best);
    }

    #[test]
    fn fragmentation_objectives_shape_a_deterministic_frontier() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let space = toy_space();
        let run = || {
            let cache = MappingCache::new();
            let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache)
                .with_objectives(ObjectiveSet::parse("cycles,area,fragmentation").unwrap())
                .with_regions(4);
            explore(&eval, &space, &Exhaustive, &ExploreConfig::default()).unwrap()
        };
        let report = run();
        assert!(!report.frontier.is_empty());
        for p in &report.frontier {
            let frag = p.objectives.values()[2];
            assert!(frag <= 1000, "fragmentation is a permille: {frag}");
        }
        // The floorplan objective is static: no workload simulations ran.
        assert_eq!(report.stats.sim_runs, 0);
        // Pure integer placement: a fresh evaluator reproduces the
        // frontier exactly.
        assert_eq!(report.frontier, run().frontier);
    }

    #[test]
    fn worst_region_load_is_a_valid_permille_objective() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache)
            .with_objectives(ObjectiveSet::parse("cycles,worst_region_load").unwrap())
            .with_regions(2);
        let space = toy_space();
        let p = PointIdx {
            area: 2,
            datapath: 0,
            budget: 0,
        };
        let eval1 = eval.evaluate(&space, p).unwrap();
        let load = eval1.objectives.values()[1];
        assert!(load <= 1000, "worst-region occupancy is a permille: {load}");
        // Budget 0 keeps every kernel on the fabric, so something is
        // resident and the worst region is genuinely loaded.
        assert!(load > 0);
    }

    #[test]
    fn evaluator_memoises_cells() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let space = toy_space();
        let p = PointIdx {
            area: 1,
            datapath: 0,
            budget: 2,
        };
        let first = eval.evaluate(&space, p).unwrap();
        for budget in 0..space.budgets() {
            let _ = eval.evaluate(&space, PointIdx { budget, ..p }).unwrap();
        }
        let again = eval.evaluate(&space, p).unwrap();
        assert_eq!(first, again);
        let stats = eval.stats();
        assert_eq!(stats.engine_runs, 1, "one cell, one engine run");
        assert_eq!(stats.points_evaluated, 2 + space.budgets() as u64);
        assert_eq!(stats.cell_hits, stats.points_evaluated - 1);
    }

    #[test]
    fn shared_evaluator_never_reruns_cells() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let space = toy_space();
        // SA warms part of the cell map; a following exhaustive pass must
        // compute only the missing cells — across both explorations each
        // cell runs the engine exactly once, and the per-strategy deltas
        // add up exactly.
        let config = ExploreConfig::default();
        let sa = explore(&eval, &space, &SimulatedAnnealing::default(), &config).unwrap();
        let ex = explore(&eval, &space, &Exhaustive, &config).unwrap();
        assert!(sa.stats.engine_runs > 0);
        assert_eq!(
            sa.stats.engine_runs + ex.stats.engine_runs,
            space.cells() as u64
        );
        assert_eq!(eval.stats().engine_runs, space.cells() as u64);
    }

    #[test]
    fn budget_clamps_to_kernel_count() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let mut space = toy_space();
        space.max_kernel_budget = 1000;
        let p = eval
            .evaluate(
                &space,
                PointIdx {
                    area: 0,
                    datapath: 0,
                    budget: 1000,
                },
            )
            .unwrap();
        assert!(p.kernels_moved <= a.kernels().len());
    }

    #[test]
    fn energy_objective_matches_oracle() {
        use amdrel_core::{energy_of_assignment, Assignment};
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let space = toy_space();
        for budget in 0..space.budgets() {
            let p = eval
                .evaluate(
                    &space,
                    PointIdx {
                        area: 1,
                        datapath: 1,
                        budget,
                    },
                )
                .unwrap();
            // Reconstruct the assignment the engine would have after
            // moving the first `kernels_moved` ranked kernels.
            let mut platform = base.clone();
            platform.fpga.total_area = space.areas[1];
            platform.datapath = space.datapaths[1].clone();
            let mut assignment = vec![Assignment::FineGrain; c.cdfg.len()];
            for &k in a.kernels().iter().take(p.kernels_moved) {
                assignment[k.index()] = Assignment::CoarseGrain;
            }
            let oracle =
                energy_of_assignment(&c.cdfg, &a, &platform, &EnergyModel::default(), &assignment)
                    .unwrap();
            assert_eq!(p.energy, oracle, "budget {budget}");
            assert_eq!(p.energy_total(), oracle.total());
            assert_eq!(p.objectives.values()[2], oracle.total());
        }
    }

    #[test]
    fn archive_insert_outcomes() {
        let mut archive = ParetoArchive::new();
        assert_eq!(archive.insert(synthetic_eval(50, 1500, 900)), Insert::Added);
        assert_eq!(
            archive.insert(synthetic_eval(40, 5000, 900)),
            Insert::Added,
            "trade-off point joins"
        );
        assert_eq!(
            archive.insert(synthetic_eval(60, 5000, 950)),
            Insert::Dominated
        );
        assert_eq!(
            archive.insert(synthetic_eval(50, 1500, 900)),
            Insert::Duplicate
        );
        assert_eq!(
            archive.insert(synthetic_eval(30, 1200, 800)),
            Insert::Added,
            "dominator evicts everything"
        );
        assert_eq!(archive.len(), 1);
        assert!(!archive.is_empty());
    }

    #[test]
    fn archive_prune_keeps_extremes() {
        let mut archive = ParetoArchive::new();
        // A staircase frontier: cycles falls as area and energy rise.
        for i in 0..20u64 {
            archive.insert(synthetic_eval(100 - i, 1000 + i * 100, 500 + i * 7));
        }
        assert_eq!(archive.len(), 20);
        let best_cycles = 81;
        let best_area = 1000;
        archive.prune_to(5);
        assert_eq!(archive.len(), 5);
        let frontier = archive.frontier();
        assert!(frontier.iter().any(|p| p.cycles == best_cycles));
        assert!(frontier.iter().any(|p| p.area == best_area));
    }

    #[test]
    fn repeated_pruning_is_stable_and_keeps_extremes() {
        let mut archive = ParetoArchive::new();
        for i in 0..50u64 {
            archive.insert(synthetic_eval(1000 - i, 1000 + i * 10, 100 + i));
        }
        archive.prune_to(4);
        assert_eq!(archive.len(), 4);
        let once = archive.clone();
        // Pruning to the same bound again is a no-op (already ≤ max).
        archive.prune_to(4);
        assert_eq!(archive, once);
        // The cycle minimiser survived.
        assert_eq!(archive.frontier()[0].cycles, 951);
    }

    #[test]
    fn json_renders_valid_shapes() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
        let report = explore(
            &eval,
            &toy_space(),
            &RandomSampling,
            &ExploreConfig {
                eval_budget: 12,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        let json = json::report_to_json(&report);
        assert!(json.contains("\"schema\": \"amdrel-explore/v3\""));
        assert!(json.contains("\"objectives\": [\"cycles\", \"area\", \"energy\"]"));
        assert!(json.contains("\"frontier\""));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"archive.inserts\""));
        assert!(json.contains("\"eval.sim_runs\": 0"));
        assert_eq!(
            json.matches("{\"area\":").count(),
            report.frontier.len(),
            "one object per frontier member"
        );
    }

    #[test]
    fn runtime_objectives_extend_the_vector_and_memoise_sims() {
        use amdrel_runtime::{AppProfile, Fcfs};
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let background = vec![AppProfile::synthetic("bg", 0, 9_000, 2_500, vec![600])];
        let contention = RuntimeEvaluator::new(background, Box::new(Fcfs))
            .with_seed(11)
            .with_njobs(48)
            .with_load(125);
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache)
            .with_objectives(ObjectiveSet::parse("cycles,area,energy,p95").unwrap())
            .with_runtime(&contention);
        let space = toy_space();
        let p = PointIdx {
            area: 1,
            datapath: 0,
            budget: 1,
        };
        let first = eval.evaluate(&space, p).unwrap();
        assert_eq!(first.objectives.len(), 4);
        let metrics = first.contention.expect("runtime objective scored");
        assert_eq!(first.objectives.values()[3], metrics.p95_latency);
        assert!(metrics.completed + metrics.rejected == 48);
        // Re-evaluating the same point reuses the memoised simulation.
        let again = eval.evaluate(&space, p).unwrap();
        assert_eq!(first, again);
        assert_eq!(eval.stats().sim_runs, 1, "one point, one simulation");
        // A different budget is a different candidate profile → new sim.
        let other = eval
            .evaluate(
                &space,
                PointIdx {
                    area: 1,
                    datapath: 0,
                    budget: 0,
                },
            )
            .unwrap();
        assert_eq!(eval.stats().sim_runs, 2);
        assert_ne!(other.contention, first.contention);
    }

    #[test]
    #[should_panic(expected = "need a RuntimeEvaluator")]
    fn runtime_objectives_without_scorer_panic() {
        let (c, a) = toy();
        let base = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache)
            .with_objectives(ObjectiveSet::parse("cycles,p95").unwrap());
        let space = toy_space();
        let _ = eval.evaluate(
            &space,
            PointIdx {
                area: 0,
                datapath: 0,
                budget: 0,
            },
        );
    }
}
