//! The joint design space the explorer walks.
//!
//! The paper evaluates four hand-picked `(A_FPGA, datapath)` points
//! against one constraint; a [`DesignSpace`] generalises that to the full
//! cartesian product of FPGA areas × CGC datapaths × kernel-selection
//! budgets. Points are addressed by [`PointIdx`] (indices into the three
//! axes), which gives search strategies a cheap, mutation-friendly
//! coordinate system and a total order for deterministic tie-breaking.

use amdrel_coarsegrain::CgcDatapath;
use serde::{Deserialize, Serialize};

/// Indices of one design point: positions along the three axes of a
/// [`DesignSpace`].
///
/// The derived lexicographic [`Ord`] (area, then datapath, then budget)
/// is the archive's deterministic tie-break for points with identical
/// objectives, so frontiers are reproducible regardless of evaluation
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PointIdx {
    /// Index into [`DesignSpace::areas`].
    pub area: usize,
    /// Index into [`DesignSpace::datapaths`].
    pub datapath: usize,
    /// Kernel-selection budget (number of ranked kernels allowed to move),
    /// in `0..=max_kernel_budget`.
    pub budget: usize,
}

/// The explored design space: FPGA areas × CGC datapaths × kernel
/// budgets, plus the timing constraint the points are judged against.
///
/// # Examples
///
/// ```
/// use amdrel_coarsegrain::{CgcDatapath, CgcGeometry};
/// use amdrel_explore::DesignSpace;
///
/// let space = DesignSpace {
///     areas: vec![1500, 5000],
///     datapaths: vec![CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
///     max_kernel_budget: 3,
///     constraint: 60_000,
/// };
/// assert_eq!(space.len(), 2 * 2 * 4);
/// assert_eq!(space.cells(), 4);
/// let p = space.point(space.len() - 1);
/// assert_eq!((p.area, p.datapath, p.budget), (1, 1, 3));
/// assert_eq!(space.flat(p), space.len() - 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// `A_FPGA` candidates. (The fine-grain mapper refuses devices below
    /// ~1030 area units — the 32-bit multiplier no longer fits — so
    /// candidates should start around 1200.)
    pub areas: Vec<u64>,
    /// CGC datapath candidates.
    pub datapaths: Vec<CgcDatapath>,
    /// Largest kernel-selection budget; budgets `0..=max_kernel_budget`
    /// are part of the space. Budgets beyond an application's kernel
    /// count evaluate identically to "move every kernel".
    pub max_kernel_budget: usize,
    /// The timing constraint (FPGA cycles) used for each point's `met`
    /// verdict.
    pub constraint: u64,
}

impl DesignSpace {
    /// Number of budget values per `(area, datapath)` cell.
    pub fn budgets(&self) -> usize {
        self.max_kernel_budget + 1
    }

    /// Number of `(area, datapath)` cells — the unit of engine work, since
    /// one engine run prices every budget of a cell.
    pub fn cells(&self) -> usize {
        self.areas.len() * self.datapaths.len()
    }

    /// Total number of design points.
    pub fn len(&self) -> usize {
        self.cells() * self.budgets()
    }

    /// `true` if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty() || self.datapaths.is_empty()
    }

    /// The point at flat index `flat` (area-major, then datapath, then
    /// budget — the same order [`crate::Exhaustive`] enumerates).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= self.len()`.
    pub fn point(&self, flat: usize) -> PointIdx {
        assert!(
            flat < self.len(),
            "point {flat} out of range {}",
            self.len()
        );
        let b = self.budgets();
        let d = self.datapaths.len();
        PointIdx {
            area: flat / (d * b),
            datapath: (flat / b) % d,
            budget: flat % b,
        }
    }

    /// Inverse of [`Self::point`].
    pub fn flat(&self, p: PointIdx) -> usize {
        (p.area * self.datapaths.len() + p.datapath) * self.budgets() + p.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_coarsegrain::CgcGeometry;

    fn space() -> DesignSpace {
        DesignSpace {
            areas: vec![1200, 1500, 5000],
            datapaths: vec![
                CgcDatapath::two_2x2(),
                CgcDatapath::three_2x2(),
                CgcDatapath::uniform(1, CgcGeometry::TWO_BY_TWO),
            ],
            max_kernel_budget: 4,
            constraint: 10_000,
        }
    }

    #[test]
    fn flat_and_point_are_inverse() {
        let s = space();
        for flat in 0..s.len() {
            let p = s.point(flat);
            assert!(p.area < 3 && p.datapath < 3 && p.budget < 5);
            assert_eq!(s.flat(p), flat);
        }
    }

    #[test]
    fn counts_are_consistent() {
        let s = space();
        assert_eq!(s.len(), 3 * 3 * 5);
        assert_eq!(s.cells(), 9);
        assert!(!s.is_empty());
        assert!(DesignSpace {
            areas: vec![],
            ..space()
        }
        .is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_point_panics() {
        let s = space();
        let _ = s.point(s.len());
    }

    #[test]
    fn point_idx_order_is_lexicographic() {
        let a = PointIdx {
            area: 0,
            datapath: 2,
            budget: 9,
        };
        let b = PointIdx {
            area: 1,
            datapath: 0,
            budget: 0,
        };
        let c = PointIdx {
            area: 1,
            datapath: 0,
            budget: 1,
        };
        assert!(a < b && b < c);
    }
}
