//! Shared, memoising evaluation of design points.
//!
//! The unit of engine work is the `(area, datapath)` **cell**: one
//! partitioning run under an unreachable constraint drains the whole
//! ranked kernel queue, and its move trace prices *every* kernel budget
//! of that cell — timing from the engine's own incremental breakdowns,
//! energy from [`BlockEnergyCosts`] O(1) deltas. The [`Evaluator`]
//! memoises cells (thread-safely) and shares one [`MappingCache`], so a
//! search that revisits configurations pays for each cell exactly once
//! and each fabric mapping exactly once. When the evaluator's
//! [`ObjectiveSet`] includes runtime objectives, each design point
//! additionally runs one seeded workload simulation through the
//! attached [`RuntimeEvaluator`] — memoised per point, so revisits are
//! free there too. Counters expose the true effort (`engine_runs`,
//! `points_evaluated`, `cell_hits`, `sim_runs`) for strategy
//! comparisons and the committed `BENCH_explore*.json` baselines.

use crate::contention::{ContentionMetrics, RuntimeEvaluator};
use crate::objective::{Objective, ObjectiveSet, Objectives};
use crate::space::{DesignSpace, PointIdx};
use amdrel_cdfg::Cdfg;
use amdrel_core::{
    run_grid_parallel_jobs, BlockEnergyCosts, Breakdown, CacheStats, CoreError, EnergyBreakdown,
    EnergyModel, GridSpec, MappingCache, PartitionResult, PartitioningEngine, Platform,
};
use amdrel_finegrain::CdfgFineGrainMapping;
use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint, FragmentationStats};
use amdrel_profiler::AnalysisReport;
use amdrel_trace::TraceSink;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A timing constraint no real application meets (1 FPGA cycle), forcing
/// the engine to drain the entire kernel queue and hand back the full
/// move trace.
const FULL_DRAIN: u64 = 1;

/// Region count the floorplan objectives price against unless
/// [`Evaluator::with_regions`] overrides it.
const DEFAULT_REGIONS: usize = 4;

/// One fully evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEval {
    /// Where in the [`DesignSpace`] this point sits.
    pub point: PointIdx,
    /// The concrete `A_FPGA`.
    pub area: u64,
    /// The concrete datapath, described (e.g. `"two 2x2 CGCs"`).
    pub datapath: String,
    /// Kernels actually moved — the budget clamped to the application's
    /// kernel count.
    pub kernels_moved: usize,
    /// All-FPGA cycles of this cell (the speedup baseline).
    pub initial_cycles: u64,
    /// eq. (2) total execution time of one job, FPGA cycles (always
    /// computed, whether or not `cycles` is a selected objective).
    pub cycles: u64,
    /// The energy decomposition behind the energy objective.
    pub energy: EnergyBreakdown,
    /// The contention outcome when the evaluator simulated the workload
    /// mix on this point (`None` under purely static objective sets).
    pub contention: Option<ContentionMetrics>,
    /// The minimised objective vector, aligned with the evaluator's
    /// [`ObjectiveSet`].
    pub objectives: Objectives,
    /// Whether `cycles` meets the space's timing constraint.
    pub met: bool,
}

impl PointEval {
    /// `initial_cycles / final_cycles` — the paper-style acceleration of
    /// this configuration over its own all-FPGA mapping.
    pub fn speedup(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.initial_cycles as f64 / self.cycles as f64
    }

    /// Total energy of one job (the value of the energy objective).
    pub fn energy_total(&self) -> u64 {
        self.energy.total()
    }
}

/// Evaluation-effort counters of an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvalStats {
    /// Design points priced (including memoised re-visits).
    pub points_evaluated: u64,
    /// Partitioning-engine runs actually performed (one per distinct
    /// cell) — the cost a strategy is judged on.
    pub engine_runs: u64,
    /// Point evaluations served from an already-computed cell.
    pub cell_hits: u64,
    /// Workload simulations actually performed (one per distinct point,
    /// only under runtime objectives).
    pub sim_runs: u64,
}

impl EvalStats {
    /// Counter-wise difference (`self − earlier`), for effort deltas when
    /// one evaluator serves several strategies in sequence.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            points_evaluated: self.points_evaluated - earlier.points_evaluated,
            engine_runs: self.engine_runs - earlier.engine_runs,
            cell_hits: self.cell_hits - earlier.cell_hits,
            sim_runs: self.sim_runs - earlier.sim_runs,
        }
    }
}

/// One memoised `(area, datapath)` cell: the per-budget price list plus
/// everything a contention score needs to rebuild the candidate profile.
struct Cell {
    initial_cycles: u64,
    /// Entry `k`: `(t_total, energy)` after moving the first `k` ranked
    /// kernels (entry 0 is the all-FPGA mapping).
    budgets: Vec<(u64, EnergyBreakdown)>,
    /// Entry `k`: the timing decomposition after `k` moves (entry 0 is
    /// all-FPGA: everything in `t_fpga`).
    breakdowns: Vec<Breakdown>,
    /// Block indices of the moved kernels, in move order.
    moved: Vec<usize>,
    /// The cell's fine-grain mapping (shared with the [`MappingCache`]).
    fine: Arc<CdfgFineGrainMapping>,
}

/// Memoising design-point evaluator over one analysed application.
///
/// Thread-safe (`&self` everywhere, interior mutex/atomics), so the
/// exhaustive strategy can fill cells from parallel grid workers while
/// sequential strategies share the same instance.
///
/// By default points are priced on the static objective triple
/// `(cycles, area, energy)`. [`Self::with_objectives`] selects a
/// different [`ObjectiveSet`]; sets that include runtime objectives
/// (`p95`, `throughput`) additionally need a [`RuntimeEvaluator`]
/// attached via [`Self::with_runtime`].
pub struct Evaluator<'a> {
    app: &'a str,
    cdfg: &'a Cdfg,
    analysis: &'a AnalysisReport,
    base: &'a Platform,
    model: EnergyModel,
    cache: &'a MappingCache,
    objectives: ObjectiveSet,
    regions: usize,
    runtime: Option<&'a RuntimeEvaluator>,
    cells: Mutex<HashMap<(usize, usize), Arc<Cell>>>,
    sims: Mutex<HashMap<(usize, usize, usize), ContentionMetrics>>,
    points_evaluated: AtomicU64,
    engine_runs: AtomicU64,
    cell_hits: AtomicU64,
    sim_runs: AtomicU64,
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("app", &self.app)
            .field("objectives", &self.objectives.describe())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> Evaluator<'a> {
    /// A new evaluator on the static default objectives. `base` supplies
    /// everything the space's axes do not (clock ratio, communication
    /// model, scheduler, FPGA characterisation other than total area);
    /// `model` prices the energy objective; `cache` memoises the fabric
    /// mappings (shareable across evaluators and grids).
    pub fn new(
        app: &'a str,
        cdfg: &'a Cdfg,
        analysis: &'a AnalysisReport,
        base: &'a Platform,
        model: EnergyModel,
        cache: &'a MappingCache,
    ) -> Self {
        Evaluator {
            app,
            cdfg,
            analysis,
            base,
            model,
            cache,
            objectives: ObjectiveSet::static_default(),
            regions: DEFAULT_REGIONS,
            runtime: None,
            cells: Mutex::new(HashMap::new()),
            sims: Mutex::new(HashMap::new()),
            points_evaluated: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
            cell_hits: AtomicU64::new(0),
            sim_runs: AtomicU64::new(0),
        }
    }

    /// Select the objective vector points are priced on.
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Attach the contention scorer consulted for runtime objectives.
    pub fn with_runtime(mut self, runtime: &'a RuntimeEvaluator) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The region grid the floorplan objectives (`fragmentation`,
    /// `worst_region_load`) price against: each candidate's usable area
    /// is split into `regions` horizontal bands
    /// ([`FabricGrid::uniform`]) and the point's fine-grain partition
    /// footprints are floorplanned onto them. Defaults to 4.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`.
    pub fn with_regions(mut self, regions: usize) -> Self {
        assert!(regions > 0, "floorplan objectives need at least one region");
        self.regions = regions;
        self
    }

    /// The application label.
    pub fn app(&self) -> &str {
        self.app
    }

    /// The objective set points are priced on.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// A snapshot of the effort counters.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            points_evaluated: self.points_evaluated.load(Ordering::Relaxed),
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            cell_hits: self.cell_hits.load(Ordering::Relaxed),
            sim_runs: self.sim_runs.load(Ordering::Relaxed),
        }
    }

    /// The shared mapping cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Evaluate one design point.
    ///
    /// # Errors
    ///
    /// Mapping failures from the underlying fabrics (e.g. an area too
    /// small for the application's widest operator).
    ///
    /// # Panics
    ///
    /// Panics if the objective set includes a runtime objective but no
    /// [`RuntimeEvaluator`] was attached ([`Self::with_runtime`]).
    pub fn evaluate(&self, space: &DesignSpace, p: PointIdx) -> Result<PointEval, CoreError> {
        self.points_evaluated.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell(space, p.area, p.datapath)?;
        let moved = p.budget.min(cell.budgets.len() - 1);
        let (cycles, energy) = cell.budgets[moved];
        let contention = if self.objectives.needs_runtime() {
            Some(self.contention(space, p, moved, &cell))
        } else {
            None
        };
        let floorplan = if self.objectives.contains(Objective::Fragmentation)
            || self.objectives.contains(Objective::WorstRegionLoad)
        {
            Some(self.floorplan_stats(space, p.area, moved, &cell))
        } else {
            None
        };
        let values = self
            .objectives
            .objectives()
            .iter()
            .map(|obj| match obj {
                Objective::Cycles => cycles,
                Objective::Area => space.areas[p.area],
                Objective::Energy => energy.total(),
                Objective::P95Latency => {
                    contention
                        .as_ref()
                        .expect("runtime metrics computed")
                        .p95_latency
                }
                Objective::Throughput => {
                    contention
                        .as_ref()
                        .expect("runtime metrics computed")
                        .cycles_per_job
                }
                Objective::P95UnderFaults => {
                    contention
                        .as_ref()
                        .expect("runtime metrics computed")
                        .p95_under_faults
                }
                Objective::DegradedShare => {
                    contention
                        .as_ref()
                        .expect("runtime metrics computed")
                        .degraded_permille
                }
                Objective::Fragmentation => floorplan
                    .expect("floorplan stats computed")
                    .fragmentation_permille(),
                Objective::WorstRegionLoad => floorplan
                    .expect("floorplan stats computed")
                    .worst_region_permille(),
            })
            .collect();
        Ok(PointEval {
            point: p,
            area: space.areas[p.area],
            datapath: space.datapaths[p.datapath].describe(),
            kernels_moved: moved,
            initial_cycles: cell.initial_cycles,
            cycles,
            energy,
            contention,
            objectives: Objectives::new(values),
            met: cycles <= space.constraint,
        })
    }

    /// The memoised contention metrics of `(cell, moved)` — one seeded
    /// simulation per distinct point, computed under the map lock so
    /// concurrent lookups never duplicate work.
    fn contention(
        &self,
        space: &DesignSpace,
        p: PointIdx,
        moved: usize,
        cell: &Cell,
    ) -> ContentionMetrics {
        let runtime = self.runtime.expect(
            "runtime objectives (p95/throughput) need a RuntimeEvaluator \
             (Evaluator::with_runtime)",
        );
        let key = (p.area, p.datapath, moved);
        let mut sims = self.sims.lock().expect("sim cache lock poisoned");
        if let Some(metrics) = sims.get(&key) {
            return *metrics;
        }
        self.sim_runs.fetch_add(1, Ordering::Relaxed);
        let breakdown = &cell.breakdowns[moved];
        let mut on_fpga = vec![true; self.cdfg.len()];
        for &k in &cell.moved[..moved] {
            on_fpga[k] = false;
        }
        let areas = cell.fine.partition_areas(|i| on_fpga[i]);
        let candidate = runtime.candidate_profile(
            self.app,
            breakdown.t_fpga,
            breakdown.t_coarse,
            breakdown.t_comm,
            areas,
        );
        let platform = self.platform_for(space, p.area, p.datapath);
        let metrics = runtime.score(&candidate, &platform);
        sims.insert(key, metrics);
        metrics
    }

    /// Re-run one design point's contention simulation with a
    /// [`TraceSink`] attached, emitting the full per-job event stream
    /// (see [`RuntimeEvaluator::trace_candidate`]). The candidate
    /// profile is rebuilt from the point's memoised cell, so the traced
    /// run is exactly the one whose metrics the search scored. A pure
    /// observer: memoised scores and counters are not perturbed
    /// (`sim_runs` does not count the replay).
    ///
    /// # Errors
    ///
    /// Mapping failures from the underlying fabrics.
    ///
    /// # Panics
    ///
    /// Panics if no [`RuntimeEvaluator`] was attached
    /// ([`Self::with_runtime`]).
    pub fn trace_point(
        &self,
        space: &DesignSpace,
        p: PointIdx,
        sink: &dyn TraceSink,
    ) -> Result<(), CoreError> {
        let runtime = self.runtime.expect(
            "tracing a contention run needs a RuntimeEvaluator \
             (Evaluator::with_runtime)",
        );
        let cell = self.cell(space, p.area, p.datapath)?;
        let moved = p.budget.min(cell.budgets.len() - 1);
        let breakdown = &cell.breakdowns[moved];
        let mut on_fpga = vec![true; self.cdfg.len()];
        for &k in &cell.moved[..moved] {
            on_fpga[k] = false;
        }
        let areas = cell.fine.partition_areas(|i| on_fpga[i]);
        let candidate = runtime.candidate_profile(
            self.app,
            breakdown.t_fpga,
            breakdown.t_coarse,
            breakdown.t_comm,
            areas,
        );
        let platform = self.platform_for(space, p.area, p.datapath);
        runtime.trace_candidate(&candidate, &platform, sink);
        Ok(())
    }

    /// Floorplan the point's remaining fine-grain footprints onto the
    /// evaluator's region grid and return the fragmentation statistics.
    /// Pure integer work on the memoised cell — cheap enough to run per
    /// evaluation without its own cache.
    fn floorplan_stats(
        &self,
        space: &DesignSpace,
        a_idx: usize,
        moved: usize,
        cell: &Cell,
    ) -> FragmentationStats {
        let mut on_fpga = vec![true; self.cdfg.len()];
        for &k in &cell.moved[..moved] {
            on_fpga[k] = false;
        }
        let footprints: Vec<Footprint> = cell
            .fine
            .partition_footprints(|i| on_fpga[i])
            .iter()
            .map(|f| Footprint::new(f.block, f.area))
            .collect();
        let mut fpga = self.base.fpga.clone();
        fpga.total_area = space.areas[a_idx];
        let grid = FabricGrid::uniform(fpga.usable_area(), self.regions);
        Floorplanner.place(&grid, &footprints).stats()
    }

    /// Compute (or adopt from the grid) every cell of `space` using the
    /// parallel grid sweep — the exhaustive strategy's fast path. `jobs`
    /// is forwarded to [`run_grid_parallel_jobs`] (0 = automatic).
    ///
    /// Already-memoised cells are never recomputed: the parallel grid is
    /// used when the cell map is cold (the common exhaustive case), and a
    /// partially warm evaluator falls back to filling only the missing
    /// cells, so `engine_runs` counts every engine run exactly once.
    /// Workload simulations are *not* prefilled — they run (memoised) as
    /// points are evaluated, on the calling thread, so contention scores
    /// are identical at every `jobs` setting.
    ///
    /// # Errors
    ///
    /// The first configuration (in area-major grid order) whose mapping
    /// fails.
    pub fn prefill_cells(&self, space: &DesignSpace, jobs: usize) -> Result<(), CoreError> {
        let all_cold = self
            .cells
            .lock()
            .expect("cell cache lock poisoned")
            .is_empty();
        if !all_cold {
            // Partially warm (e.g. another strategy already explored on
            // this evaluator): compute just the missing cells. Presence is
            // checked first so prefilling neither recomputes warm cells
            // nor skews the hit counter (prefill is bookkeeping, not a
            // point evaluation).
            for a_idx in 0..space.areas.len() {
                for d_idx in 0..space.datapaths.len() {
                    let warm = self
                        .cells
                        .lock()
                        .expect("cell cache lock poisoned")
                        .contains_key(&(a_idx, d_idx));
                    if !warm {
                        self.cell(space, a_idx, d_idx)?;
                    }
                }
            }
            return Ok(());
        }
        let spec = GridSpec {
            app: self.app,
            cdfg: self.cdfg,
            analysis: self.analysis,
            base: self.base,
            areas: &space.areas,
            datapaths: &space.datapaths,
            constraint: FULL_DRAIN,
        };
        let grid = run_grid_parallel_jobs(&spec, self.cache, jobs)?;
        let d = space.datapaths.len();
        for (i, grid_cell) in grid.cells.iter().enumerate() {
            let (a_idx, d_idx) = (i / d, i % d);
            let mut cells = self.cells.lock().expect("cell cache lock poisoned");
            if cells.contains_key(&(a_idx, d_idx)) {
                continue;
            }
            self.engine_runs.fetch_add(1, Ordering::Relaxed);
            let cell = self.cell_from_result(space, a_idx, d_idx, &grid_cell.result)?;
            cells.insert((a_idx, d_idx), Arc::new(cell));
        }
        Ok(())
    }

    /// The memoised cell for `(a_idx, d_idx)`, computed on first use. The
    /// miss is computed while the map lock is held (mirroring
    /// [`MappingCache`]), so each cell runs the engine exactly once even
    /// under concurrent lookups.
    fn cell(
        &self,
        space: &DesignSpace,
        a_idx: usize,
        d_idx: usize,
    ) -> Result<Arc<Cell>, CoreError> {
        let mut cells = self.cells.lock().expect("cell cache lock poisoned");
        if let Some(cell) = cells.get(&(a_idx, d_idx)) {
            self.cell_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(cell));
        }
        self.engine_runs.fetch_add(1, Ordering::Relaxed);
        let platform = self.platform_for(space, a_idx, d_idx);
        let result = PartitioningEngine::new(self.cdfg, self.analysis, &platform)
            .with_mapping_cache(self.cache)
            .run(FULL_DRAIN)?;
        let cell = Arc::new(self.cell_from_result(space, a_idx, d_idx, &result)?);
        cells.insert((a_idx, d_idx), Arc::clone(&cell));
        Ok(cell)
    }

    /// Price every kernel budget of a cell from one full-drain move trace:
    /// timing straight from the engine's breakdowns, energy by replaying
    /// the trace through [`BlockEnergyCosts`] deltas.
    fn cell_from_result(
        &self,
        space: &DesignSpace,
        a_idx: usize,
        d_idx: usize,
        result: &PartitionResult,
    ) -> Result<Cell, CoreError> {
        let platform = self.platform_for(space, a_idx, d_idx);
        // The engine just mapped this configuration, so this is a cache hit.
        let fine = self.cache.fine(self.cdfg, &platform.fpga)?;
        let costs = BlockEnergyCosts::compute(self.cdfg, self.analysis, &fine, &self.model);
        let mut energy = costs.all_fpga();
        let mut budgets = Vec::with_capacity(result.moves.len() + 1);
        let mut breakdowns = Vec::with_capacity(result.moves.len() + 1);
        budgets.push((result.initial_cycles, energy));
        breakdowns.push(Breakdown {
            t_fpga: result.initial_cycles,
            t_coarse_cgc: 0,
            t_coarse: 0,
            t_comm: 0,
        });
        for m in &result.moves {
            costs.move_to_coarse(&mut energy, m.kernel.index());
            budgets.push((m.breakdown.t_total(), energy));
            breakdowns.push(m.breakdown);
        }
        Ok(Cell {
            initial_cycles: result.initial_cycles,
            budgets,
            breakdowns,
            moved: result.moves.iter().map(|m| m.kernel.index()).collect(),
            fine,
        })
    }

    /// The concrete platform of a cell: the base with the cell's area and
    /// datapath substituted (exactly what the grid sweep does).
    fn platform_for(&self, space: &DesignSpace, a_idx: usize, d_idx: usize) -> Platform {
        let mut platform = self.base.clone();
        platform.fpga.total_area = space.areas[a_idx];
        platform.datapath = space.datapaths[d_idx].clone();
        platform
    }
}
