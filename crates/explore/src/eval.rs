//! Shared, memoising evaluation of design points.
//!
//! The unit of engine work is the `(area, datapath)` **cell**: one
//! partitioning run under an unreachable constraint drains the whole
//! ranked kernel queue, and its move trace prices *every* kernel budget
//! of that cell — timing from the engine's own incremental breakdowns,
//! energy from [`BlockEnergyCosts`] O(1) deltas. The [`Evaluator`]
//! memoises cells (thread-safely) and shares one [`MappingCache`], so a
//! search that revisits configurations pays for each cell exactly once
//! and each fabric mapping exactly once. Counters expose the true effort
//! (`engine_runs`, `points_evaluated`, `cell_hits`) for strategy
//! comparisons and the `BENCH_explore.json` baseline.

use crate::space::{DesignSpace, PointIdx};
use amdrel_cdfg::Cdfg;
use amdrel_core::{
    run_grid_parallel_jobs, BlockEnergyCosts, CacheStats, CoreError, EnergyBreakdown, EnergyModel,
    GridSpec, MappingCache, PartitionResult, PartitioningEngine, Platform,
};
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A timing constraint no real application meets (1 FPGA cycle), forcing
/// the engine to drain the entire kernel queue and hand back the full
/// move trace.
const FULL_DRAIN: u64 = 1;

/// The three minimised objectives of a design point.
///
/// All three are `u64`s so domination checks are exact — no floating-point
/// ties to break. Speedup is reported separately ([`PointEval::speedup`]):
/// minimising total cycles maximises speedup for a given application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Objectives {
    /// eq. (2) total execution time, FPGA cycles (minimise).
    pub cycles: u64,
    /// `A_FPGA` of the configuration, area units (minimise).
    pub area: u64,
    /// Total energy under the platform's [`EnergyModel`] (minimise).
    pub energy: u64,
}

impl Objectives {
    /// The objectives as an array, in `(cycles, area, energy)` order.
    pub fn as_array(&self) -> [u64; 3] {
        [self.cycles, self.area, self.energy]
    }

    /// Pareto domination: `self` is no worse in every objective and
    /// strictly better in at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        a.iter().zip(&b).all(|(x, y)| x <= y) && a != b
    }
}

/// One fully evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEval {
    /// Where in the [`DesignSpace`] this point sits.
    pub point: PointIdx,
    /// The concrete `A_FPGA`.
    pub area: u64,
    /// The concrete datapath, described (e.g. `"two 2x2 CGCs"`).
    pub datapath: String,
    /// Kernels actually moved — the budget clamped to the application's
    /// kernel count.
    pub kernels_moved: usize,
    /// All-FPGA cycles of this cell (the speedup baseline).
    pub initial_cycles: u64,
    /// The minimised objective vector.
    pub objectives: Objectives,
    /// The energy decomposition behind `objectives.energy`.
    pub energy: EnergyBreakdown,
    /// Whether `objectives.cycles` meets the space's timing constraint.
    pub met: bool,
}

impl PointEval {
    /// `initial_cycles / final_cycles` — the paper-style acceleration of
    /// this configuration over its own all-FPGA mapping.
    pub fn speedup(&self) -> f64 {
        if self.objectives.cycles == 0 {
            return 1.0;
        }
        self.initial_cycles as f64 / self.objectives.cycles as f64
    }
}

/// Evaluation-effort counters of an [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvalStats {
    /// Design points priced (including memoised re-visits).
    pub points_evaluated: u64,
    /// Partitioning-engine runs actually performed (one per distinct
    /// cell) — the cost a strategy is judged on.
    pub engine_runs: u64,
    /// Point evaluations served from an already-computed cell.
    pub cell_hits: u64,
}

impl EvalStats {
    /// Counter-wise difference (`self − earlier`), for effort deltas when
    /// one evaluator serves several strategies in sequence.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            points_evaluated: self.points_evaluated - earlier.points_evaluated,
            engine_runs: self.engine_runs - earlier.engine_runs,
            cell_hits: self.cell_hits - earlier.cell_hits,
        }
    }
}

/// One memoised `(area, datapath)` cell: the per-budget price list.
struct Cell {
    initial_cycles: u64,
    /// Entry `k`: `(t_total, energy)` after moving the first `k` ranked
    /// kernels (entry 0 is the all-FPGA mapping).
    budgets: Vec<(u64, EnergyBreakdown)>,
}

/// Memoising design-point evaluator over one analysed application.
///
/// Thread-safe (`&self` everywhere, interior mutex/atomics), so the
/// exhaustive strategy can fill cells from parallel grid workers while
/// sequential strategies share the same instance.
pub struct Evaluator<'a> {
    app: &'a str,
    cdfg: &'a Cdfg,
    analysis: &'a AnalysisReport,
    base: &'a Platform,
    model: EnergyModel,
    cache: &'a MappingCache,
    cells: Mutex<HashMap<(usize, usize), Arc<Cell>>>,
    points_evaluated: AtomicU64,
    engine_runs: AtomicU64,
    cell_hits: AtomicU64,
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("app", &self.app)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> Evaluator<'a> {
    /// A new evaluator. `base` supplies everything the space's axes do
    /// not (clock ratio, communication model, scheduler, FPGA
    /// characterisation other than total area); `model` prices the energy
    /// objective; `cache` memoises the fabric mappings (shareable across
    /// evaluators and grids).
    pub fn new(
        app: &'a str,
        cdfg: &'a Cdfg,
        analysis: &'a AnalysisReport,
        base: &'a Platform,
        model: EnergyModel,
        cache: &'a MappingCache,
    ) -> Self {
        Evaluator {
            app,
            cdfg,
            analysis,
            base,
            model,
            cache,
            cells: Mutex::new(HashMap::new()),
            points_evaluated: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
            cell_hits: AtomicU64::new(0),
        }
    }

    /// The application label.
    pub fn app(&self) -> &str {
        self.app
    }

    /// A snapshot of the effort counters.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            points_evaluated: self.points_evaluated.load(Ordering::Relaxed),
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            cell_hits: self.cell_hits.load(Ordering::Relaxed),
        }
    }

    /// The shared mapping cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Evaluate one design point.
    ///
    /// # Errors
    ///
    /// Mapping failures from the underlying fabrics (e.g. an area too
    /// small for the application's widest operator).
    pub fn evaluate(&self, space: &DesignSpace, p: PointIdx) -> Result<PointEval, CoreError> {
        self.points_evaluated.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell(space, p.area, p.datapath)?;
        let moved = p.budget.min(cell.budgets.len() - 1);
        let (cycles, energy) = cell.budgets[moved];
        Ok(PointEval {
            point: p,
            area: space.areas[p.area],
            datapath: space.datapaths[p.datapath].describe(),
            kernels_moved: moved,
            initial_cycles: cell.initial_cycles,
            objectives: Objectives {
                cycles,
                area: space.areas[p.area],
                energy: energy.total(),
            },
            energy,
            met: cycles <= space.constraint,
        })
    }

    /// Compute (or adopt from the grid) every cell of `space` using the
    /// parallel grid sweep — the exhaustive strategy's fast path. `jobs`
    /// is forwarded to [`run_grid_parallel_jobs`] (0 = automatic).
    ///
    /// Already-memoised cells are never recomputed: the parallel grid is
    /// used when the cell map is cold (the common exhaustive case), and a
    /// partially warm evaluator falls back to filling only the missing
    /// cells, so `engine_runs` counts every engine run exactly once.
    ///
    /// # Errors
    ///
    /// The first configuration (in area-major grid order) whose mapping
    /// fails.
    pub fn prefill_cells(&self, space: &DesignSpace, jobs: usize) -> Result<(), CoreError> {
        let all_cold = self
            .cells
            .lock()
            .expect("cell cache lock poisoned")
            .is_empty();
        if !all_cold {
            // Partially warm (e.g. another strategy already explored on
            // this evaluator): compute just the missing cells. Presence is
            // checked first so prefilling neither recomputes warm cells
            // nor skews the hit counter (prefill is bookkeeping, not a
            // point evaluation).
            for a_idx in 0..space.areas.len() {
                for d_idx in 0..space.datapaths.len() {
                    let warm = self
                        .cells
                        .lock()
                        .expect("cell cache lock poisoned")
                        .contains_key(&(a_idx, d_idx));
                    if !warm {
                        self.cell(space, a_idx, d_idx)?;
                    }
                }
            }
            return Ok(());
        }
        let spec = GridSpec {
            app: self.app,
            cdfg: self.cdfg,
            analysis: self.analysis,
            base: self.base,
            areas: &space.areas,
            datapaths: &space.datapaths,
            constraint: FULL_DRAIN,
        };
        let grid = run_grid_parallel_jobs(&spec, self.cache, jobs)?;
        let d = space.datapaths.len();
        for (i, grid_cell) in grid.cells.iter().enumerate() {
            let (a_idx, d_idx) = (i / d, i % d);
            let mut cells = self.cells.lock().expect("cell cache lock poisoned");
            if cells.contains_key(&(a_idx, d_idx)) {
                continue;
            }
            self.engine_runs.fetch_add(1, Ordering::Relaxed);
            let cell = self.cell_from_result(space, a_idx, d_idx, &grid_cell.result)?;
            cells.insert((a_idx, d_idx), Arc::new(cell));
        }
        Ok(())
    }

    /// The memoised cell for `(a_idx, d_idx)`, computed on first use. The
    /// miss is computed while the map lock is held (mirroring
    /// [`MappingCache`]), so each cell runs the engine exactly once even
    /// under concurrent lookups.
    fn cell(
        &self,
        space: &DesignSpace,
        a_idx: usize,
        d_idx: usize,
    ) -> Result<Arc<Cell>, CoreError> {
        let mut cells = self.cells.lock().expect("cell cache lock poisoned");
        if let Some(cell) = cells.get(&(a_idx, d_idx)) {
            self.cell_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(cell));
        }
        self.engine_runs.fetch_add(1, Ordering::Relaxed);
        let platform = self.platform_for(space, a_idx, d_idx);
        let result = PartitioningEngine::new(self.cdfg, self.analysis, &platform)
            .with_mapping_cache(self.cache)
            .run(FULL_DRAIN)?;
        let cell = Arc::new(self.cell_from_result(space, a_idx, d_idx, &result)?);
        cells.insert((a_idx, d_idx), Arc::clone(&cell));
        Ok(cell)
    }

    /// Price every kernel budget of a cell from one full-drain move trace:
    /// timing straight from the engine's breakdowns, energy by replaying
    /// the trace through [`BlockEnergyCosts`] deltas.
    fn cell_from_result(
        &self,
        space: &DesignSpace,
        a_idx: usize,
        d_idx: usize,
        result: &PartitionResult,
    ) -> Result<Cell, CoreError> {
        let platform = self.platform_for(space, a_idx, d_idx);
        // The engine just mapped this configuration, so this is a cache hit.
        let fine = self.cache.fine(self.cdfg, &platform.fpga)?;
        let costs = BlockEnergyCosts::compute(self.cdfg, self.analysis, &fine, &self.model);
        let mut energy = costs.all_fpga();
        let mut budgets = Vec::with_capacity(result.moves.len() + 1);
        budgets.push((result.initial_cycles, energy));
        for m in &result.moves {
            costs.move_to_coarse(&mut energy, m.kernel.index());
            budgets.push((m.breakdown.t_total(), energy));
        }
        Ok(Cell {
            initial_cycles: result.initial_cycles,
            budgets,
        })
    }

    /// The concrete platform of a cell: the base with the cell's area and
    /// datapath substituted (exactly what the grid sweep does).
    fn platform_for(&self, space: &DesignSpace, a_idx: usize, d_idx: usize) -> Platform {
        let mut platform = self.base.clone();
        platform.fpga.total_area = space.areas[a_idx];
        platform.datapath = space.datapaths[d_idx].clone();
        platform
    }
}
