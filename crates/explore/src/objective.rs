//! The minimised objectives of a design point, as an N-vector.
//!
//! The original exploration subsystem minimised a fixed `(cycles, area,
//! energy)` triple; the runtime simulator added platform-level metrics
//! (p95 latency, sustained throughput under a multi-tenant workload)
//! that are just as much "objectives" of a candidate platform. This
//! module generalises the objective space: an [`Objective`] names one
//! minimised axis, an [`ObjectiveSet`] is the (canonically ordered,
//! duplicate-free) selection a search runs under, and [`Objectives`] is
//! one point's value vector along that selection.
//!
//! Every objective is a `u64` that is **minimised**, so domination
//! checks stay exact (no floating-point ties). Throughput — naturally a
//! maximised rate — is therefore carried as its exact inverse,
//! makespan-per-completed-job ([`Objective::Throughput`]).

use serde::{Deserialize, Serialize};

/// One minimised objective of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// eq. (2) total execution time of one job, FPGA cycles.
    Cycles,
    /// `A_FPGA` of the configuration, area units.
    Area,
    /// Total energy of one job under the platform's
    /// [`EnergyModel`](amdrel_core::EnergyModel).
    Energy,
    /// Aggregate 95th-percentile completion latency of the seeded
    /// workload mix simulated on the candidate platform (FPGA cycles).
    /// Needs a [`RuntimeEvaluator`](crate::RuntimeEvaluator).
    P95Latency,
    /// Inverse sustained throughput of the simulated mix: makespan
    /// cycles per completed job (minimising this maximises jobs per
    /// Mcycle). Needs a [`RuntimeEvaluator`](crate::RuntimeEvaluator).
    Throughput,
    /// Aggregate 95th-percentile latency of the mix re-simulated under
    /// the evaluator's fault-injection spec — how gracefully the
    /// candidate platform degrades when reconfiguration loads fail and
    /// resources drop out. Needs a
    /// [`RuntimeEvaluator`](crate::RuntimeEvaluator) with faults
    /// configured ([`RuntimeEvaluator::with_faults`](crate::RuntimeEvaluator::with_faults));
    /// with the inert spec it collapses to [`Objective::P95Latency`].
    P95UnderFaults,
    /// Permille of completions that took the coarse-grain-only fallback
    /// path in the faulted re-simulation (0 with the inert spec;
    /// 1000 if nothing completed). Needs a
    /// [`RuntimeEvaluator`](crate::RuntimeEvaluator).
    DegradedShare,
    /// External fragmentation (permille) of the candidate's fine-grain
    /// footprint floorplanned onto the evaluator's region grid
    /// ([`Evaluator::with_regions`](crate::Evaluator::with_regions)) —
    /// how badly the free fabric is scattered across regions after
    /// placement, saturated to 1000 when any footprint fails geometric
    /// placement (an overfull grid is the worst floorplan, not a
    /// perfectly packed one). Static: no runtime simulation needed.
    Fragmentation,
    /// Occupancy (permille) of the fullest region under the same
    /// floorplan — a load-balance objective penalising candidates that
    /// pile their whole footprint into one reconfigurable region.
    /// Static: no runtime simulation needed.
    WorstRegionLoad,
}

impl Objective {
    /// Every objective, in the canonical (enum) order.
    pub const ALL: [Objective; 9] = [
        Objective::Cycles,
        Objective::Area,
        Objective::Energy,
        Objective::P95Latency,
        Objective::Throughput,
        Objective::P95UnderFaults,
        Objective::DegradedShare,
        Objective::Fragmentation,
        Objective::WorstRegionLoad,
    ];

    /// The canonical name (CLI `--objectives` value, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::Area => "area",
            Objective::Energy => "energy",
            Objective::P95Latency => "p95",
            Objective::Throughput => "throughput",
            Objective::P95UnderFaults => "p95_under_faults",
            Objective::DegradedShare => "degraded_share",
            Objective::Fragmentation => "fragmentation",
            Objective::WorstRegionLoad => "worst_region_load",
        }
    }

    /// Parse one objective name. Accepts the canonical names plus the
    /// runtime report's aliases (`p95_latency`, `jobs_per_mcycle`,
    /// `p95_faults`).
    pub fn parse(name: &str) -> Option<Objective> {
        match name.trim() {
            "cycles" => Some(Objective::Cycles),
            "area" => Some(Objective::Area),
            "energy" => Some(Objective::Energy),
            "p95" | "p95_latency" => Some(Objective::P95Latency),
            "throughput" | "jobs_per_mcycle" => Some(Objective::Throughput),
            "p95_under_faults" | "p95_faults" => Some(Objective::P95UnderFaults),
            "degraded_share" => Some(Objective::DegradedShare),
            "fragmentation" => Some(Objective::Fragmentation),
            "worst_region_load" => Some(Objective::WorstRegionLoad),
            _ => None,
        }
    }

    /// `true` if evaluating this objective requires simulating the
    /// workload mix (a [`RuntimeEvaluator`](crate::RuntimeEvaluator)).
    pub fn needs_runtime(self) -> bool {
        matches!(
            self,
            Objective::P95Latency
                | Objective::Throughput
                | Objective::P95UnderFaults
                | Objective::DegradedShare
        )
    }
}

/// The duplicate-free, canonically ordered selection of objectives a
/// search minimises.
///
/// Selection order does not matter (`"p95,cycles"` and `"cycles,p95"`
/// are the same set): members are kept in [`Objective::ALL`] order, so
/// the archive's deterministic iteration order is a function of the set
/// alone.
///
/// # Examples
///
/// ```
/// use amdrel_explore::{Objective, ObjectiveSet};
///
/// let set = ObjectiveSet::parse("p95,cycles,area").unwrap();
/// assert_eq!(set.names(), ["cycles", "area", "p95"]); // canonical order
/// assert!(set.needs_runtime());
/// assert_eq!(ObjectiveSet::static_default().names(), ["cycles", "area", "energy"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectiveSet {
    objectives: Vec<Objective>,
}

impl ObjectiveSet {
    /// Build a set from any list of objectives (deduplicated, reordered
    /// canonically).
    ///
    /// # Errors
    ///
    /// An empty list.
    pub fn new(objectives: &[Objective]) -> Result<ObjectiveSet, String> {
        if objectives.is_empty() {
            return Err("at least one objective is required".to_owned());
        }
        let mut canonical: Vec<Objective> = Objective::ALL
            .into_iter()
            .filter(|o| objectives.contains(o))
            .collect();
        canonical.shrink_to_fit();
        Ok(ObjectiveSet {
            objectives: canonical,
        })
    }

    /// The original fixed triple: `(cycles, area, energy)`.
    pub fn static_default() -> ObjectiveSet {
        ObjectiveSet {
            objectives: vec![Objective::Cycles, Objective::Area, Objective::Energy],
        }
    }

    /// Parse a comma-separated selection, e.g. `"cycles,area,energy,p95"`.
    ///
    /// # Errors
    ///
    /// An empty selection or an unknown objective name (the message
    /// lists the valid names).
    pub fn parse(spec: &str) -> Result<ObjectiveSet, String> {
        let mut objectives = Vec::new();
        for name in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let obj = Objective::parse(name).ok_or_else(|| {
                format!(
                    "unknown objective '{}' (expected one of: {})",
                    name.trim(),
                    Objective::ALL.map(Objective::name).join(", ")
                )
            })?;
            objectives.push(obj);
        }
        ObjectiveSet::new(&objectives)
    }

    /// The selected objectives, in canonical order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Number of objectives (the arity of every [`Objectives`] vector
    /// evaluated under this set).
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Always `false` — a set has at least one objective.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Canonical names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.objectives.iter().map(|o| o.name()).collect()
    }

    /// `true` if any selected objective requires the runtime simulator.
    pub fn needs_runtime(&self) -> bool {
        self.objectives.iter().any(|o| o.needs_runtime())
    }

    /// `true` if `obj` is selected.
    pub fn contains(&self, obj: Objective) -> bool {
        self.objectives.contains(&obj)
    }

    /// The comma-joined canonical names (the `--objectives` round-trip).
    pub fn describe(&self) -> String {
        self.names().join(",")
    }
}

impl Default for ObjectiveSet {
    fn default() -> Self {
        ObjectiveSet::static_default()
    }
}

/// One design point's minimised objective vector, aligned with the
/// [`ObjectiveSet`] it was evaluated under.
///
/// All values are `u64`s so domination checks are exact, and the derived
/// lexicographic order over the vector is the archive's deterministic
/// iteration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Objectives {
    values: Vec<u64>,
}

impl Objectives {
    /// Wrap a value vector (one entry per selected objective, in the
    /// set's canonical order).
    pub fn new(values: Vec<u64>) -> Objectives {
        Objectives { values }
    }

    /// The values, in the objective set's order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of objectives in the vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for a zero-arity vector (never produced by an evaluator).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Pareto domination: `self` is no worse in every objective and
    /// strictly better in at least one.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different arities (they were
    /// evaluated under different objective sets and are not comparable).
    pub fn dominates(&self, other: &Objectives) -> bool {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "objective vectors of different arities are not comparable"
        );
        self.values.iter().zip(&other.values).all(|(a, b)| a <= b) && self.values != other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_canonicalises_order_and_dedupes() {
        let set = ObjectiveSet::parse("energy, cycles, energy,p95_latency").unwrap();
        assert_eq!(set.names(), ["cycles", "energy", "p95"]);
        assert_eq!(set.len(), 3);
        assert!(set.needs_runtime());
        assert!(set.contains(Objective::P95Latency));
        assert!(!set.contains(Objective::Area));
        assert_eq!(set.describe(), "cycles,energy,p95");
    }

    #[test]
    fn parse_rejects_unknown_and_empty() {
        assert!(ObjectiveSet::parse("cycles,latency").is_err());
        assert!(ObjectiveSet::parse("").is_err());
        assert!(ObjectiveSet::parse(" , ,").is_err());
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(
            Objective::parse("jobs_per_mcycle"),
            Some(Objective::Throughput)
        );
        assert_eq!(Objective::parse("p95_latency"), Some(Objective::P95Latency));
        assert_eq!(
            Objective::parse("p95_faults"),
            Some(Objective::P95UnderFaults)
        );
        assert_eq!(Objective::parse("nope"), None);
    }

    #[test]
    fn reliability_objectives_are_selectable() {
        let set = ObjectiveSet::parse("degraded_share,cycles,p95_under_faults").unwrap();
        assert_eq!(
            set.names(),
            ["cycles", "p95_under_faults", "degraded_share"]
        );
        assert!(set.needs_runtime());
        assert!(set.contains(Objective::P95UnderFaults));
        assert!(set.contains(Objective::DegradedShare));
        assert!(Objective::P95UnderFaults.needs_runtime());
        assert!(Objective::DegradedShare.needs_runtime());
    }

    #[test]
    fn floorplan_objectives_are_static() {
        let set = ObjectiveSet::parse("worst_region_load,cycles,fragmentation").unwrap();
        assert_eq!(
            set.names(),
            ["cycles", "fragmentation", "worst_region_load"]
        );
        assert!(!set.needs_runtime(), "floorplan metrics are static");
        assert!(set.contains(Objective::Fragmentation));
        assert!(set.contains(Objective::WorstRegionLoad));
        assert_eq!(
            Objective::parse("fragmentation"),
            Some(Objective::Fragmentation)
        );
        assert_eq!(
            Objective::parse("worst_region_load"),
            Some(Objective::WorstRegionLoad)
        );
    }

    #[test]
    fn default_is_the_static_triple() {
        let set = ObjectiveSet::default();
        assert_eq!(set.names(), ["cycles", "area", "energy"]);
        assert!(!set.needs_runtime());
    }

    #[test]
    fn domination_over_vectors() {
        let a = Objectives::new(vec![1, 2, 3, 4]);
        let b = Objectives::new(vec![1, 2, 3, 5]);
        let c = Objectives::new(vec![0, 9, 3, 4]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a));
        assert!(!a.dominates(&a), "equal vectors do not dominate");
    }

    #[test]
    #[should_panic(expected = "different arities")]
    fn arity_mismatch_panics() {
        let _ = Objectives::new(vec![1, 2]).dominates(&Objectives::new(vec![1, 2, 3]));
    }
}
