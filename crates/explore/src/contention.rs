//! Contention-aware scoring: simulate a seeded workload mix on a
//! candidate platform and turn the outcome into objectives.
//!
//! The static objectives price one job in isolation; a platform that
//! wins there can still lose under multi-tenant load (reconfiguration
//! thrash, queueing at the fabric, too few CGC slots). A
//! [`RuntimeEvaluator`] closes that loop: for each design point, the
//! candidate application's per-job profile is derived from the point's
//! own engine result (phase split and fine-grain configuration
//! footprint change with every `(area, datapath, budget)`), joined with
//! a fixed set of background tenants, and played through the
//! deterministic `amdrel-runtime` simulator with a fixed seed. The
//! resulting [`ContentionMetrics`] feed the `p95` and `throughput`
//! members of an [`ObjectiveSet`](crate::ObjectiveSet).
//!
//! Scoring is bit-deterministic: the workload generator is seeded, the
//! simulator consumes no randomness, and the [`Evaluator`](crate::Evaluator)
//! memoises one simulation per design point — results are identical at
//! every `--jobs` setting.

use amdrel_core::Platform;
use amdrel_floorplan::FabricGrid;
use amdrel_runtime::{
    AppProfile, FabricConfig, FaultSpec, RecoveryPolicy, RegionPlan, SchedulePolicy, SimConfig,
    Simulation, WorkloadSpec,
};
use amdrel_trace::TraceSink;
use serde::{Deserialize, Serialize};

/// The contention outcome of simulating the workload mix on one
/// candidate platform (all integers, so frontiers stay bit-comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContentionMetrics {
    /// Aggregate 95th-percentile completion latency, FPGA cycles.
    pub p95_latency: u64,
    /// Makespan cycles per completed job (`u64::MAX` if nothing
    /// completed) — the minimised inverse of jobs-per-Mcycle.
    pub cycles_per_job: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs refused admission by the queue bound.
    pub rejected: u64,
    /// Completion time of the last job.
    pub makespan: u64,
    /// Fabric cycles lost to reconfiguration stalls.
    pub reconfig_stall_cycles: u64,
    /// Aggregate p95 latency of the faulted re-simulation (equals
    /// [`Self::p95_latency`] when the evaluator's fault spec is inert,
    /// so the objective degenerates gracefully).
    pub p95_under_faults: u64,
    /// Permille of the faulted run's completions that took the
    /// coarse-grain-only fallback path (0 with the inert spec; 1000 if
    /// nothing completed).
    pub degraded_permille: u64,
}

impl ContentionMetrics {
    /// Sustained throughput as the conventional rate: completed jobs per
    /// million cycles (reporting only — domination uses
    /// [`Self::cycles_per_job`], its exact inverse).
    pub fn jobs_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed as f64 * 1_000_000.0 / self.makespan as f64
    }
}

/// Simulates a seeded workload mix on each candidate platform so
/// runtime objectives (`p95`, `throughput`) can join the search.
///
/// The mix is the candidate application (profile derived per design
/// point) plus the fixed `background` tenants. Background profiles are
/// *not* re-partitioned per point — they stand for co-tenants whose
/// bitstreams were compiled elsewhere — but their reconfiguration cost
/// is priced by the candidate platform's
/// [`ReconfigModel`](amdrel_core::ReconfigModel). Arrival pacing uses
/// [`WorkloadSpec::uniform`] — the offered fine-grain load tracks
/// `load_percent`% of the simulated mix's own demand on every point —
/// unless [`Self::with_arrival`] pins one absolute rate for the whole
/// design space (the usual choice when comparing platforms).
///
/// # Examples
///
/// ```
/// use amdrel_explore::RuntimeEvaluator;
/// use amdrel_runtime::{AppProfile, ShortestJobFirst};
///
/// let background = vec![AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900])];
/// let contention = RuntimeEvaluator::new(background, Box::new(ShortestJobFirst))
///     .with_seed(42)
///     .with_njobs(96)
///     .with_load(130);
/// assert_eq!(contention.seed(), 42);
/// ```
#[derive(Debug)]
pub struct RuntimeEvaluator {
    background: Vec<AppProfile>,
    policy: Box<dyn SchedulePolicy>,
    priority: u8,
    seed: u64,
    njobs: usize,
    load_percent: u64,
    arrival: Option<u64>,
    sim: SimConfig,
    faults: FaultSpec,
    recovery: RecoveryPolicy,
    regions: Option<usize>,
    shards: usize,
}

impl RuntimeEvaluator {
    /// A contention evaluator over `background` co-tenants under
    /// `policy`, with the default knobs: seed 42, 200 jobs per
    /// simulation, 130% offered fine-grain load (sustained overload —
    /// the regime where platforms differentiate), candidate priority 1,
    /// and the default [`SimConfig`] (configuration cache on).
    pub fn new(background: Vec<AppProfile>, policy: Box<dyn SchedulePolicy>) -> RuntimeEvaluator {
        RuntimeEvaluator {
            background,
            policy,
            priority: 1,
            seed: 42,
            njobs: 200,
            load_percent: 130,
            arrival: None,
            sim: SimConfig::default(),
            faults: FaultSpec::none(),
            recovery: RecoveryPolicy::default(),
            regions: None,
            shards: 1,
        }
    }

    /// Replace the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the per-simulation job count.
    ///
    /// # Panics
    ///
    /// Panics if `njobs == 0` (an empty simulation scores nothing).
    pub fn with_njobs(mut self, njobs: usize) -> Self {
        assert!(njobs > 0, "a contention simulation needs at least one job");
        self.njobs = njobs;
        self
    }

    /// Replace the offered fine-grain load (percent of the mix's
    /// capacity; >100 is overload).
    ///
    /// # Panics
    ///
    /// Panics if `load_percent == 0`.
    pub fn with_load(mut self, load_percent: u64) -> Self {
        assert!(load_percent > 0, "offered load must be positive");
        self.load_percent = load_percent;
        self
    }

    /// Pin the mean inter-arrival gap to a fixed cycle count instead of
    /// the per-point `load_percent` pacing.
    ///
    /// By default arrivals are paced relative to the simulated mix's own
    /// demand, which moves with the candidate's per-point profile — the
    /// platform is always held at `load_percent`% of *its* load. Pinning
    /// the gap applies one absolute arrival rate to every candidate, so
    /// points are compared under identical offered traffic (what a
    /// deployment with a fixed user base sees). Comparisons across a
    /// design space usually want this.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival == 0`.
    pub fn with_arrival(mut self, mean_interarrival: u64) -> Self {
        assert!(mean_interarrival > 0, "mean inter-arrival must be positive");
        self.arrival = Some(mean_interarrival);
        self
    }

    /// Replace the candidate application's scheduling priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Replace the runtime knobs (configuration cache, prefetch,
    /// admission bound).
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Attach a fault-injection spec for the reliability objectives
    /// (`p95_under_faults`, `degraded_share`). The baseline metrics are
    /// still scored fault-free; a second, faulted simulation runs only
    /// when the spec is not inert, so existing searches pay nothing.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the recovery policy the faulted re-simulation uses
    /// (default [`RecoveryPolicy::default`]).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Score candidates under region-granular partial reconfiguration:
    /// each simulation jointly floorplans the mix onto `regions`
    /// horizontal bands of the candidate's usable area
    /// ([`RegionPlan`]), so reconfiguration is priced per region
    /// actually reprogrammed instead of streaming the full footprint.
    /// With one region the plan is degenerate and scoring is
    /// bit-identical to the default scalar pool.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`.
    pub fn with_region_reconfig(mut self, regions: usize) -> Self {
        assert!(
            regions > 0,
            "region reconfiguration needs at least one region"
        );
        self.regions = Some(regions);
        self
    }

    /// The region count candidates are scored under, when
    /// [`Self::with_region_reconfig`] enabled region pricing.
    pub fn region_reconfig(&self) -> Option<usize> {
        self.regions
    }

    /// Score candidates with the mix sharded across `shards` parallel
    /// timelines ([`Simulation::shards`]): tenant `i` runs on platform
    /// replica `i % shards`, replicas simulate concurrently on scoped
    /// threads, and the reports merge deterministically. Scoring stays
    /// bit-deterministic at every shard count, but the count is part of
    /// the scored scenario — tenants on different shards no longer
    /// contend for one fabric — so compare frontiers only across runs
    /// that agree on it. The default (1) is the classic fully-contended
    /// single timeline.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a simulation needs at least one shard");
        self.shards = shards;
        self
    }

    /// The shard count scoring simulations run with (default 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The fault spec the reliability objectives simulate under.
    pub fn faults(&self) -> FaultSpec {
        self.faults
    }

    /// The workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Jobs per simulation.
    pub fn njobs(&self) -> usize {
        self.njobs
    }

    /// Offered fine-grain load, percent.
    pub fn load_percent(&self) -> u64 {
        self.load_percent
    }

    /// The scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The background tenants.
    pub fn background(&self) -> &[AppProfile] {
        &self.background
    }

    /// Simulate the mix with the candidate profile on `platform` and
    /// summarise the outcome.
    ///
    /// The candidate is placed first in the mix; the workload is
    /// regenerated per call from the fixed seed (pacing depends on the
    /// candidate's own demand unless [`Self::with_arrival`] pinned an
    /// absolute rate), so identical `(candidate, platform)`
    /// inputs produce bit-identical metrics.
    pub fn score(&self, candidate: &AppProfile, platform: &Platform) -> ContentionMetrics {
        let mut profiles = Vec::with_capacity(1 + self.background.len());
        profiles.push(candidate.clone());
        profiles.extend(self.background.iter().cloned());
        let mut spec = WorkloadSpec::uniform(self.seed, self.njobs, &profiles, self.load_percent);
        if let Some(arrival) = self.arrival {
            spec.mean_interarrival = arrival;
        }
        let plan = self.regions.map(|n| {
            RegionPlan::new(
                &profiles,
                &FabricGrid::uniform(platform.fpga.usable_area(), n),
            )
        });
        let mut base = Simulation::new(platform)
            .profiles(&profiles)
            .policy(self.policy.as_ref())
            .config(self.sim)
            .shards(self.shards);
        if let Some(plan) = plan.as_ref() {
            base = base.regions(plan);
        }
        let report = base.run_mix(&spec);
        let (p95_under_faults, degraded_permille) = if self.faults.is_none() {
            // No faulted re-simulation: the reliability objectives
            // degenerate to the clean p95 and a zero degraded share.
            (report.p95_latency, 0)
        } else {
            let faulted = base
                .faults(self.faults)
                .recovery(self.recovery)
                .run_mix(&spec);
            let share = if faulted.completed() == 0 {
                1000
            } else {
                faulted.reliability.degraded * 1000 / faulted.completed()
            };
            (faulted.p95_latency, share)
        };
        let completed = report.completed();
        ContentionMetrics {
            p95_latency: report.p95_latency,
            cycles_per_job: if completed == 0 {
                u64::MAX
            } else {
                report.makespan.div_ceil(completed)
            },
            completed,
            rejected: report.rejected(),
            makespan: report.makespan,
            reconfig_stall_cycles: report.reconfig_stall_cycles,
            p95_under_faults,
            degraded_permille,
        }
    }

    /// Re-run the scoring simulation for `candidate` on `platform` with
    /// a [`TraceSink`] attached, so one design point's contention run
    /// can be inspected event by event.
    ///
    /// The simulation replayed is the one whose metrics
    /// [`Self::score`] reports: the fault-free mix when the fault spec
    /// is inert, the faulted re-simulation otherwise (so fault and
    /// recovery events appear in the trace). Tracing is a pure
    /// observer — this never perturbs memoised scores.
    pub fn trace_candidate(
        &self,
        candidate: &AppProfile,
        platform: &Platform,
        sink: &dyn TraceSink,
    ) {
        let mut profiles = Vec::with_capacity(1 + self.background.len());
        profiles.push(candidate.clone());
        profiles.extend(self.background.iter().cloned());
        let mut spec = WorkloadSpec::uniform(self.seed, self.njobs, &profiles, self.load_percent);
        if let Some(arrival) = self.arrival {
            spec.mean_interarrival = arrival;
        }
        let plan = self.regions.map(|n| {
            RegionPlan::new(
                &profiles,
                &FabricGrid::uniform(platform.fpga.usable_area(), n),
            )
        });
        let mut sim = Simulation::new(platform)
            .profiles(&profiles)
            .policy(self.policy.as_ref())
            .config(self.sim)
            .shards(self.shards)
            .trace(sink);
        if let Some(plan) = plan.as_ref() {
            sim = sim.regions(plan);
        }
        if !self.faults.is_none() {
            sim = sim.faults(self.faults).recovery(self.recovery);
        }
        sim.run_mix(&spec);
    }

    /// Build the candidate [`AppProfile`] of one design point from its
    /// engine-result phase split and the temporal-partition areas of the
    /// blocks the point leaves on the fine-grain fabric.
    pub fn candidate_profile(
        &self,
        app: &str,
        fine_cycles: u64,
        coarse_cycles: u64,
        comm_cycles: u64,
        partition_areas: Vec<u64>,
    ) -> AppProfile {
        AppProfile {
            name: app.to_owned(),
            priority: self.priority,
            fine_cycles,
            coarse_cycles,
            comm_cycles,
            config: FabricConfig::new(app, partition_areas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_runtime::Fcfs;

    fn evaluator() -> RuntimeEvaluator {
        let background = vec![AppProfile::synthetic("bg", 0, 8_000, 2_000, vec![500])];
        RuntimeEvaluator::new(background, Box::new(Fcfs))
            .with_seed(7)
            .with_njobs(64)
            .with_load(120)
            .with_priority(2)
    }

    #[test]
    fn scoring_is_deterministic_and_complete() {
        let rt = evaluator();
        let candidate = rt.candidate_profile("cand", 5_000, 1_000, 200, vec![300, 200]);
        assert_eq!(candidate.priority, 2);
        let platform = Platform::paper(1500, 2);
        let a = rt.score(&candidate, &platform);
        let b = rt.score(&candidate, &platform);
        assert_eq!(a, b, "same inputs, same metrics");
        assert_eq!(a.completed + a.rejected, 64);
        assert!(a.p95_latency > 0);
        assert!(a.cycles_per_job > 0 && a.cycles_per_job < u64::MAX);
        let jpm = a.jobs_per_mcycle();
        assert!(jpm > 0.0);
        // cycles_per_job is the (ceiling) inverse of jobs/Mcycle.
        assert!((1_000_000.0 / jpm - a.cycles_per_job as f64).abs() <= 1.0);
    }

    #[test]
    fn one_region_reconfig_scoring_degenerates_to_the_scalar_pool() {
        let candidate = evaluator().candidate_profile("cand", 5_000, 1_000, 200, vec![300, 200]);
        let platform = Platform::paper(1500, 2);
        let scalar = evaluator().score(&candidate, &platform);
        let full = evaluator().with_region_reconfig(1);
        assert_eq!(full.region_reconfig(), Some(1));
        assert_eq!(
            full.score(&candidate, &platform),
            scalar,
            "a full-fabric region plan must not perturb scoring"
        );
    }

    #[test]
    fn region_reconfig_scoring_is_deterministic_and_cuts_stall() {
        let candidate = evaluator().candidate_profile("cand", 5_000, 1_000, 200, vec![300, 200]);
        let platform = Platform::paper(1500, 2);
        let scalar = evaluator().score(&candidate, &platform);
        let regioned = evaluator().with_region_reconfig(4);
        let a = regioned.score(&candidate, &platform);
        let b = regioned.score(&candidate, &platform);
        assert_eq!(a, b, "same inputs, same metrics");
        assert!(
            a.reconfig_stall_cycles < scalar.reconfig_stall_cycles,
            "partial reconfiguration must stall less than streamed loads \
             ({} vs {})",
            a.reconfig_stall_cycles,
            scalar.reconfig_stall_cycles
        );
        assert_eq!(a.completed + a.rejected, 64);
    }

    #[test]
    fn inert_faults_score_for_free_and_real_faults_move_the_metrics() {
        let rt = evaluator();
        let candidate = rt.candidate_profile("cand", 5_000, 1_000, 200, vec![300, 200]);
        let platform = Platform::paper(1500, 2);
        let clean = rt.score(&candidate, &platform);
        assert_eq!(
            clean.p95_under_faults, clean.p95_latency,
            "inert spec degenerates to the clean p95"
        );
        assert_eq!(clean.degraded_permille, 0);

        let faulted_rt = evaluator()
            .with_faults(FaultSpec::uniform(7, 200))
            .with_recovery(RecoveryPolicy {
                degrade: true,
                ..RecoveryPolicy::default()
            });
        assert!(!faulted_rt.faults().is_none());
        let faulted = faulted_rt.score(&candidate, &platform);
        assert_eq!(
            faulted.p95_latency, clean.p95_latency,
            "baseline metrics stay fault-free"
        );
        assert_ne!(
            faulted.p95_under_faults, faulted.p95_latency,
            "the faulted re-simulation actually differs"
        );
        assert!(faulted.degraded_permille <= 1000);
        assert_eq!(
            faulted,
            faulted_rt.score(&candidate, &platform),
            "faulted scoring is deterministic"
        );
    }

    #[test]
    fn sharded_scoring_is_deterministic_and_work_conserving() {
        let candidate = evaluator().candidate_profile("cand", 5_000, 1_000, 200, vec![300, 200]);
        let platform = Platform::paper(1500, 2);
        let unsharded = evaluator().score(&candidate, &platform);
        let sharded_rt = evaluator().with_shards(2);
        assert_eq!(sharded_rt.shards(), 2);
        let a = sharded_rt.score(&candidate, &platform);
        let b = sharded_rt.score(&candidate, &platform);
        assert_eq!(a, b, "sharded scoring replays bit-for-bit");
        assert_eq!(
            a.completed + a.rejected,
            unsharded.completed + unsharded.rejected,
            "every job is disposed of under any shard count"
        );
        // One shard is the classic single timeline, bit for bit.
        assert_eq!(
            evaluator().with_shards(1).score(&candidate, &platform),
            unsharded
        );
    }

    #[test]
    fn candidate_demand_moves_the_metrics() {
        let rt = evaluator();
        let platform = Platform::paper(1500, 2);
        let light = rt.score(
            &rt.candidate_profile("cand", 1_000, 0, 0, vec![100]),
            &platform,
        );
        let heavy = rt.score(
            &rt.candidate_profile("cand", 50_000, 0, 0, vec![100]),
            &platform,
        );
        assert_ne!(light, heavy, "a heavier candidate changes the outcome");
    }
}
