//! Exploration outcome: effort accounting plus the frontier, with a
//! paper-style text rendering.

use crate::archive::ParetoArchive;
use crate::eval::{EvalStats, Evaluator, PointEval};
use crate::space::DesignSpace;
use crate::strategy::{ExploreConfig, SearchStrategy};
use amdrel_core::{CacheStats, CoreError};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Everything one exploration produced: provenance (app, strategy, seed,
/// objective selection), effort counters, and the Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Application label.
    pub app: String,
    /// Strategy identifier ([`SearchStrategy::name`]).
    pub strategy: String,
    /// Canonical names of the minimised objectives, in vector order
    /// (aligned with every frontier member's
    /// [`objectives`](PointEval::objectives)).
    pub objectives: Vec<String>,
    /// The RNG seed used.
    pub seed: u64,
    /// The evaluation budget requested.
    pub eval_budget: usize,
    /// The worker-count setting (0 = automatic).
    pub jobs: usize,
    /// Total points in the explored space.
    pub space_points: usize,
    /// Total `(area, datapath)` cells in the space.
    pub space_cells: usize,
    /// The timing constraint points were judged against.
    pub constraint: u64,
    /// Effort this exploration added on the evaluator.
    pub stats: EvalStats,
    /// Mapping work this exploration added on the shared cache.
    pub cache: CacheStats,
    /// Candidates the archive accepted during the search.
    pub archive_inserts: u64,
    /// Frontier members removed by pruning during the search.
    pub archive_pruned: u64,
    /// The Pareto frontier, sorted ascending by `(objectives, point)`.
    pub frontier: Vec<PointEval>,
}

impl ExploreReport {
    /// The frontier member with the fewest total cycles (smallest
    /// point index on ties).
    pub fn best_cycles(&self) -> Option<&PointEval> {
        self.frontier.iter().min_by_key(|p| (p.cycles, p.point))
    }

    /// The frontier member with the smallest FPGA area (fewest cycles,
    /// then smallest point index, on ties).
    pub fn best_area(&self) -> Option<&PointEval> {
        self.frontier
            .iter()
            .min_by_key(|p| (p.area, p.cycles, p.point))
    }

    /// The frontier member with the lowest energy (fewest cycles, then
    /// smallest point index, on ties).
    pub fn best_energy(&self) -> Option<&PointEval> {
        self.frontier
            .iter()
            .min_by_key(|p| (p.energy_total(), p.cycles, p.point))
    }

    /// The frontier member with the lowest simulated p95 latency
    /// (`None` when the exploration ran without runtime objectives).
    pub fn best_p95(&self) -> Option<&PointEval> {
        self.frontier
            .iter()
            .filter(|p| p.contention.is_some())
            .min_by_key(|p| {
                (
                    p.contention.as_ref().expect("filtered").p95_latency,
                    p.cycles,
                    p.point,
                )
            })
    }

    /// `true` if the frontier carries contention metrics (a runtime
    /// objective was selected).
    pub fn has_contention(&self) -> bool {
        self.frontier.iter().any(|p| p.contention.is_some())
    }

    /// Render the report as a paper-style text table.
    pub fn format_table(&self) -> String {
        let contention = self.has_contention();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} design-space exploration — strategy {} (seed {}, budget {}, objectives {})",
            self.app,
            self.strategy,
            self.seed,
            self.eval_budget,
            self.objectives.join(",")
        );
        let _ = writeln!(
            out,
            "space: {} points over {} cells, constraint {} cycles",
            self.space_points, self.space_cells, self.constraint
        );
        let _ = writeln!(
            out,
            "effort: {} points evaluated, {} engine runs, {} cell-cache hits, {} workload sims; \
             mappings: {} fine + {} coarse computed, {} served from cache",
            self.stats.points_evaluated,
            self.stats.engine_runs,
            self.stats.cell_hits,
            self.stats.sim_runs,
            self.cache.fine_misses,
            self.cache.coarse_misses,
            self.cache.hits(),
        );
        let _ = writeln!(out, "Pareto frontier ({} points):", self.frontier.len());
        let _ = write!(
            out,
            "{:<8} {:<16} {:<8} {:<14} {:<9} {:<14} {:<4}",
            "A_FPGA", "datapath", "kernels", "final cycles", "speedup", "energy", "met"
        );
        if contention {
            let _ = write!(out, " {:<12} {:<10}", "p95 latency", "jobs/Mcyc");
        }
        out.push('\n');
        for p in &self.frontier {
            let _ = write!(
                out,
                "{:<8} {:<16} {:<8} {:<14} {:<9} {:<14} {:<4}",
                p.area,
                p.datapath.trim_end_matches(" CGCs"),
                p.kernels_moved,
                p.cycles,
                format!("{:.2}x", p.speedup()),
                p.energy_total(),
                if p.met { "yes" } else { "NO" },
            );
            if contention {
                match &p.contention {
                    Some(c) => {
                        let _ = write!(
                            out,
                            " {:<12} {:<10}",
                            c.p95_latency,
                            format!("{:.2}", c.jobs_per_mcycle())
                        );
                    }
                    None => {
                        let _ = write!(out, " {:<12} {:<10}", "-", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Run one strategy over one space and package the outcome.
///
/// Effort counters are reported as the *delta* this call added, so one
/// evaluator (and its shared [`amdrel_core::MappingCache`]) can serve
/// several strategies in sequence — later strategies then inherit warm
/// caches, exactly like a production sweep service would. The objective
/// selection lives on the evaluator ([`Evaluator::with_objectives`]),
/// so one call explores under whatever vector — static or
/// contention-aware — the evaluator was configured with.
///
/// # Errors
///
/// Fabric-mapping failures from the evaluator.
pub fn explore(
    eval: &Evaluator<'_>,
    space: &DesignSpace,
    strategy: &dyn SearchStrategy,
    config: &ExploreConfig,
) -> Result<ExploreReport, CoreError> {
    let stats_before = eval.stats();
    let cache_before = eval.cache_stats();
    let mut archive = ParetoArchive::new();
    strategy.run(space, eval, config, &mut archive)?;
    let stats_after = eval.stats();
    let cache_after = eval.cache_stats();
    Ok(ExploreReport {
        app: eval.app().to_owned(),
        strategy: strategy.name().to_owned(),
        objectives: eval
            .objectives()
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        seed: config.seed,
        eval_budget: config.eval_budget,
        jobs: config.jobs,
        space_points: space.len(),
        space_cells: space.cells(),
        constraint: space.constraint,
        stats: stats_after.since(&stats_before),
        cache: CacheStats {
            fine_hits: cache_after.fine_hits - cache_before.fine_hits,
            fine_misses: cache_after.fine_misses - cache_before.fine_misses,
            coarse_hits: cache_after.coarse_hits - cache_before.coarse_hits,
            coarse_misses: cache_after.coarse_misses - cache_before.coarse_misses,
            // The cache never evicts, so the entry gauge only grows; the
            // delta is the mappings this run added.
            entries: cache_after.entries - cache_before.entries,
        },
        archive_inserts: archive.inserts(),
        archive_pruned: archive.pruned(),
        frontier: archive.into_frontier(),
    })
}
