//! The non-dominated archive of evaluated design points.
//!
//! A [`ParetoArchive`] keeps exactly the Pareto frontier of everything
//! inserted: a dominated candidate is a no-op, and an accepted candidate
//! evicts every member it dominates. Members are kept sorted by
//! `(objectives, point)` and ties on identical objective vectors resolve
//! to the smallest [`PointIdx`], so the final frontier is a pure function
//! of the *set* of evaluated points — independent of insertion order,
//! thread interleaving and `--jobs` settings. That set-function property
//! is what makes seeded explorations bit-reproducible, and it holds at
//! any objective arity: the archive works the same over the classic
//! `(cycles, area, energy)` triple and over N-objective vectors that add
//! contention metrics. (Bounding the archive *during* a search would
//! forfeit it — which points survive an interim prune depends on arrival
//! order — so [`ParetoArchive::prune_to`] is an explicit, caller-driven
//! operation for after the search, not an insertion-time cap.)

use crate::eval::PointEval;
use serde::{Deserialize, Serialize};

/// Outcome of one [`ParetoArchive::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Insert {
    /// The candidate joined the frontier (possibly evicting members it
    /// dominates, or replacing an objective-identical member with a
    /// larger point index).
    Added,
    /// An existing member dominates the candidate; the archive is
    /// unchanged.
    Dominated,
    /// An existing member has identical objectives and an equal-or-smaller
    /// point index; the archive is unchanged.
    Duplicate,
}

/// A Pareto frontier with non-domination insertion, deterministic
/// iteration order, and deterministic post-search pruning
/// ([`Self::prune_to`]). All members must share one objective arity
/// (they came from the same [`Evaluator`](crate::Evaluator)).
///
/// # Examples
///
/// ```
/// use amdrel_core::EnergyBreakdown;
/// use amdrel_explore::{Objectives, ParetoArchive, PointEval, PointIdx};
///
/// fn point(cycles: u64, area: u64, energy: u64) -> PointEval {
///     PointEval {
///         point: PointIdx { area: 0, datapath: 0, budget: cycles as usize },
///         area,
///         datapath: "two 2x2 CGCs".to_owned(),
///         kernels_moved: 0,
///         initial_cycles: 100,
///         cycles,
///         energy: EnergyBreakdown { e_fpga_ops: energy, e_reconfig: 0, e_cgc_ops: 0, e_comm: 0 },
///         contention: None,
///         objectives: Objectives::new(vec![cycles, area, energy]),
///         met: true,
///     }
/// }
///
/// let mut archive = ParetoArchive::new();
/// archive.insert(point(50, 1500, 900));
/// archive.insert(point(40, 5000, 900)); // trades area for cycles: kept
/// archive.insert(point(60, 5000, 950)); // dominated: rejected
/// assert_eq!(archive.len(), 2);
/// assert!(archive.frontier().windows(2).all(|w| {
///     !w[0].objectives.dominates(&w[1].objectives)
///         && !w[1].objectives.dominates(&w[0].objectives)
/// }));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoArchive {
    /// Sorted by `(objectives, point)`.
    entries: Vec<PointEval>,
    /// Candidates accepted ([`Insert::Added`]) over the archive's life.
    /// Rejected candidates leave the archive — counters included —
    /// untouched, so the frontier-is-a-set invariant is unaffected.
    inserts: u64,
    /// Members removed by [`ParetoArchive::prune_to`] (dominated members
    /// displaced during insertion are not counted here).
    pruned: u64,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Current frontier size.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing non-dominated has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The frontier, sorted ascending by `(objectives, point)` — the
    /// deterministic iteration order.
    pub fn frontier(&self) -> &[PointEval] {
        &self.entries
    }

    /// Consume the archive into its sorted frontier.
    pub fn into_frontier(self) -> Vec<PointEval> {
        self.entries
    }

    /// Lifetime count of accepted insertions (see [`Insert::Added`]).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime count of members removed by [`ParetoArchive::prune_to`].
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Insert a candidate, keeping the frontier invariant.
    ///
    /// # Panics
    ///
    /// Panics (via [`Objectives::dominates`](crate::Objectives::dominates))
    /// if the candidate's objective arity differs from the archive's —
    /// mixing points from evaluators with different objective sets is a
    /// caller bug.
    pub fn insert(&mut self, candidate: PointEval) -> Insert {
        // One pass: find a dominator or an objective-identical member.
        // (At most one member can share the exact objective vector — the
        // archive dedupes on it — and if one does, nothing else in the
        // archive dominates the candidate, or it would dominate that
        // member too.)
        let mut replace_at = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.objectives == candidate.objectives {
                if e.point <= candidate.point {
                    return Insert::Duplicate;
                }
                replace_at = Some(i);
                break;
            }
            if e.objectives.dominates(&candidate.objectives) {
                return Insert::Dominated;
            }
        }
        if let Some(i) = replace_at {
            self.entries.remove(i);
        } else {
            self.entries
                .retain(|e| !candidate.objectives.dominates(&e.objectives));
        }
        let key = (candidate.objectives.values(), candidate.point);
        let pos = self
            .entries
            .partition_point(|e| (e.objectives.values(), e.point) < key);
        self.entries.insert(pos, candidate);
        self.inserts += 1;
        Insert::Added
    }

    /// Prune the frontier down to at most `max` members, deterministically:
    /// each objective's minimiser always survives (whatever the arity),
    /// and the remaining slots are filled evenly across the sorted
    /// frontier (preserving its spread). Pruning never adds points, so
    /// the result is a subset of the frontier and stays mutually
    /// non-dominated.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn prune_to(&mut self, max: usize) {
        assert!(max > 0, "cannot prune to an empty archive");
        if self.entries.len() <= max {
            return;
        }
        let arity = self.entries[0].objectives.len();
        let mut keep = vec![false; self.entries.len()];
        // Guard the extremes: the argmin of every objective (first in
        // sorted order on ties).
        for obj in 0..arity {
            let argmin = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(i, e)| (e.objectives.values()[obj], *i))
                .map(|(i, _)| i)
                .expect("non-empty archive");
            keep[argmin] = true;
        }
        let mut kept = keep.iter().filter(|&&k| k).count();
        if kept > max {
            // Degenerate cap below the number of distinct extremes: keep
            // the first `max` extremes in sorted order.
            let mut seen = 0usize;
            for flag in &mut keep {
                if *flag {
                    seen += 1;
                    *flag = seen <= max;
                }
            }
            kept = max;
        }
        let others: Vec<usize> = (0..self.entries.len()).filter(|&i| !keep[i]).collect();
        let need = max.saturating_sub(kept).min(others.len());
        for j in 0..need {
            // Evenly spaced positions; strictly increasing because
            // others.len() >= need.
            keep[others[j * others.len() / need]] = true;
        }
        let before = self.entries.len();
        let mut it = keep.iter();
        self.entries
            .retain(|_| *it.next().expect("keep mask covers all entries"));
        self.pruned += (before - self.entries.len()) as u64;
    }
}
