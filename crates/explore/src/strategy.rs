//! Pluggable search strategies over a [`DesignSpace`].
//!
//! Every strategy is a pure function of `(space, seed)` given a
//! deterministic evaluator: [`Exhaustive`] enumerates everything (cells
//! on the parallel grid sweep), [`RandomSampling`] draws a seeded uniform
//! sample, and [`SimulatedAnnealing`] walks seeded mutations of the
//! current point with a cooling acceptance rule — the metaheuristic shape
//! of Chen et al.'s combined partitioning/scheduling/floorplanning
//! optimiser, applied to this paper's (config, datapath, kernel-budget)
//! space. All randomness comes from the engine-side
//! [`SplitMix64`](amdrel_core::rng::SplitMix64) stream, so a fixed seed
//! reproduces the exact trajectory at any `--jobs` setting.

use crate::archive::ParetoArchive;
use crate::eval::Evaluator;
use crate::space::{DesignSpace, PointIdx};
use amdrel_core::rng::SplitMix64;
use amdrel_core::CoreError;
use serde::{Deserialize, Serialize};

/// Strategy-independent exploration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Seed of the deterministic RNG stream (ignored by [`Exhaustive`]).
    pub seed: u64,
    /// Maximum number of design-point evaluations for sampling/annealing
    /// strategies ([`Exhaustive`] always evaluates the whole space).
    pub eval_budget: usize,
    /// Worker threads for parallel cell evaluation (0 = automatic);
    /// forwarded to [`amdrel_core::run_grid_parallel_jobs`]. Results are
    /// identical at every setting.
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 42,
            eval_budget: 64,
            jobs: 0,
        }
    }
}

/// A design-space search strategy.
///
/// Implementations must be deterministic in `(space, config.seed)`: the
/// archive they leave behind may not depend on thread timing or
/// `config.jobs` (the built-in three all guarantee this; the archive's
/// order-independent insertion makes it easy to uphold). Strategies are
/// objective-agnostic: the evaluator prices each point on its configured
/// [`ObjectiveSet`](crate::ObjectiveSet), and the archive keeps the
/// frontier at whatever arity those vectors have.
///
/// # Examples
///
/// A custom strategy is one method: evaluate points, offer them to the
/// archive.
///
/// ```
/// use amdrel_core::CoreError;
/// use amdrel_explore::{
///     DesignSpace, Evaluator, ExploreConfig, ParetoArchive, SearchStrategy,
/// };
///
/// /// Evaluate the first `eval_budget` points in flat order.
/// struct Prefix;
///
/// impl SearchStrategy for Prefix {
///     fn name(&self) -> &'static str {
///         "prefix"
///     }
///
///     fn run(
///         &self,
///         space: &DesignSpace,
///         eval: &Evaluator<'_>,
///         config: &ExploreConfig,
///         archive: &mut ParetoArchive,
///     ) -> Result<(), CoreError> {
///         for flat in 0..space.len().min(config.eval_budget) {
///             archive.insert(eval.evaluate(space, space.point(flat))?);
///         }
///         Ok(())
///     }
/// }
/// ```
pub trait SearchStrategy {
    /// Short identifier (CLI `--strategy` value, report label).
    fn name(&self) -> &'static str;

    /// Explore `space`, inserting every evaluated point into `archive`.
    ///
    /// # Errors
    ///
    /// Fabric-mapping failures from the evaluator.
    fn run(
        &self,
        space: &DesignSpace,
        eval: &Evaluator<'_>,
        config: &ExploreConfig,
        archive: &mut ParetoArchive,
    ) -> Result<(), CoreError>;
}

/// Enumerate the entire space. Cells are computed by the parallel grid
/// sweep ([`amdrel_core::run_grid_parallel_jobs`], honouring
/// [`ExploreConfig::jobs`]); `eval_budget` and `seed` are ignored. The
/// result is the exact Pareto frontier of the space — the reference the
/// cheaper strategies are judged against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn run(
        &self,
        space: &DesignSpace,
        eval: &Evaluator<'_>,
        config: &ExploreConfig,
        archive: &mut ParetoArchive,
    ) -> Result<(), CoreError> {
        if space.is_empty() {
            return Ok(());
        }
        eval.prefill_cells(space, config.jobs)?;
        for flat in 0..space.len() {
            archive.insert(eval.evaluate(space, space.point(flat))?);
        }
        Ok(())
    }
}

/// Draw `eval_budget` points uniformly at random (seeded, with
/// replacement). The memoised evaluator makes repeats nearly free, so the
/// engine cost is the number of *distinct cells* sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSampling;

impl SearchStrategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn run(
        &self,
        space: &DesignSpace,
        eval: &Evaluator<'_>,
        config: &ExploreConfig,
        archive: &mut ParetoArchive,
    ) -> Result<(), CoreError> {
        if space.is_empty() {
            return Ok(());
        }
        let mut rng = SplitMix64::new(config.seed);
        for _ in 0..config.eval_budget {
            let p = space.point(rng.below(space.len() as u64) as usize);
            archive.insert(eval.evaluate(space, p)?);
        }
        Ok(())
    }
}

/// Seeded simulated annealing over config mutations.
///
/// The state is one [`PointIdx`]; a mutation steps ±1 along one axis
/// (budget moves are drawn twice as often — they re-price an existing
/// cell for free, while area/datapath moves cost an engine run), with an
/// occasional uniform restart jump to escape local minima. Acceptance
/// uses a scalarised cost (the objective vector normalised by the first
/// evaluated point and averaged) under a geometrically cooling
/// temperature; *every* evaluated candidate is offered to the archive, so
/// the returned frontier reflects the whole trajectory, not just the
/// final state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Starting temperature, in units of normalised cost (default 0.35).
    pub initial_temp: f64,
    /// Geometric cooling factor per evaluation, in `(0, 1]` (default 0.93).
    pub cooling: f64,
    /// One uniform restart jump is drawn every `restart_period`
    /// mutations on average (default 8; 0 disables restarts).
    pub restart_period: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temp: 0.35,
            cooling: 0.93,
            restart_period: 8,
        }
    }
}

impl SimulatedAnnealing {
    /// A neighbouring point: ±1 along one axis (budget axis drawn with
    /// probability 1/2), or — once per `restart_period` on average — a
    /// uniform jump anywhere in the space. Falls back to `p` itself if
    /// four draws in a row produce no change (degenerate 1×1×1 spaces).
    fn mutate(&self, space: &DesignSpace, p: PointIdx, rng: &mut SplitMix64) -> PointIdx {
        if self.restart_period > 0 && rng.below(self.restart_period) == 0 {
            return space.point(rng.below(space.len() as u64) as usize);
        }
        fn step(i: usize, len: usize, up: bool) -> usize {
            if up {
                (i + 1).min(len - 1)
            } else {
                i.saturating_sub(1)
            }
        }
        for _ in 0..4 {
            let mut q = p;
            let up = rng.below(2) == 1;
            match rng.below(4) {
                0 | 1 => q.budget = step(q.budget, space.budgets(), up),
                2 => q.area = step(q.area, space.areas.len(), up),
                _ => q.datapath = step(q.datapath, space.datapaths.len(), up),
            }
            if q != p {
                return q;
            }
        }
        p
    }
}

impl SearchStrategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn run(
        &self,
        space: &DesignSpace,
        eval: &Evaluator<'_>,
        config: &ExploreConfig,
        archive: &mut ParetoArchive,
    ) -> Result<(), CoreError> {
        if space.is_empty() || config.eval_budget == 0 {
            return Ok(());
        }
        let mut rng = SplitMix64::new(config.seed);
        let mut current =
            eval.evaluate(space, space.point(rng.below(space.len() as u64) as usize))?;
        archive.insert(current.clone());
        // Normalise each objective by the starting point so the scalar
        // cost is scale-free across applications and objective arities.
        let reference: Vec<f64> = current
            .objectives
            .values()
            .iter()
            .map(|&v| v.max(1) as f64)
            .collect();
        let cost = |o: &crate::Objectives| -> f64 {
            o.values()
                .iter()
                .zip(&reference)
                .map(|(&v, r)| v as f64 / r)
                .sum::<f64>()
                / reference.len() as f64
        };
        let mut current_cost = cost(&current.objectives);
        let mut temp = self.initial_temp;
        for _ in 1..config.eval_budget {
            let candidate = eval.evaluate(space, self.mutate(space, current.point, &mut rng))?;
            archive.insert(candidate.clone());
            let candidate_cost = cost(&candidate.objectives);
            let delta = candidate_cost - current_cost;
            if delta <= 0.0 || rng.unit_f64() < (-delta / temp.max(1e-12)).exp() {
                current = candidate;
                current_cost = candidate_cost;
            }
            temp *= self.cooling;
        }
        Ok(())
    }
}
