//! JSON rendering for exploration reports.
//!
//! The generic writer (string escaping, cache counters, sweep grids)
//! lives in [`amdrel_core::json`] so every `--json` output in the
//! workspace shares one renderer; this module re-exports it and adds the
//! [`ExploreReport`] shape.

pub use amdrel_core::json::{cache_to_json, escape, grid_to_json};

use crate::report::ExploreReport;
use std::fmt::Write as _;

/// Render an [`ExploreReport`] as JSON.
pub fn report_to_json(report: &ExploreReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-explore/v1\",\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&report.app));
    let _ = writeln!(out, "  \"strategy\": \"{}\",", escape(&report.strategy));
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"eval_budget\": {},", report.eval_budget);
    let _ = writeln!(out, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(
        out,
        "  \"space\": {{\"points\": {}, \"cells\": {}, \"constraint\": {}}},",
        report.space_points, report.space_cells, report.constraint
    );
    let _ = writeln!(
        out,
        "  \"effort\": {{\"points_evaluated\": {}, \"engine_runs\": {}, \"cell_hits\": {}}},",
        report.stats.points_evaluated, report.stats.engine_runs, report.stats.cell_hits
    );
    let _ = writeln!(out, "  \"cache\": {},", cache_to_json(&report.cache));
    out.push_str("  \"frontier\": [\n");
    for (i, p) in report.frontier.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"area\":{},\"datapath\":\"{}\",\"kernels_moved\":{},\"initial_cycles\":{},\
             \"final_cycles\":{},\"speedup\":{:.3},\"energy\":{},\"met\":{}}}",
            p.area,
            escape(&p.datapath),
            p.kernels_moved,
            p.initial_cycles,
            p.objectives.cycles,
            p.speedup(),
            p.objectives.energy,
            p.met,
        );
        out.push_str(if i + 1 == report.frontier.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
