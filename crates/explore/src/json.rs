//! Hand-rolled machine-readable JSON rendering.
//!
//! The vendored `serde` stand-in provides derives only (no runtime
//! serialisation — see `vendor/README.md`), so the `--json` outputs of
//! `amdrel sweep` and `amdrel explore` share this small renderer instead.
//! Output is deterministic: fixed key order, `\u` escapes for control
//! characters, and fixed-precision floats.

use crate::report::ExploreReport;
use amdrel_core::{CacheStats, ExperimentGrid};
use std::fmt::Write as _;

/// Escape `s` for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn cache_json(stats: &CacheStats) -> String {
    format!(
        "{{\"fine_misses\":{},\"fine_hits\":{},\"coarse_misses\":{},\"coarse_hits\":{}}}",
        stats.fine_misses, stats.fine_hits, stats.coarse_misses, stats.coarse_hits
    )
}

/// Render an [`ExperimentGrid`] (the `sweep` subcommand's result) plus
/// its cache counters as JSON.
pub fn grid_to_json(grid: &ExperimentGrid, cache: &CacheStats) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-sweep/v1\",\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&grid.app));
    let _ = writeln!(out, "  \"constraint\": {},", grid.constraint);
    out.push_str("  \"cells\": [\n");
    for (i, cell) in grid.cells.iter().enumerate() {
        let moved: Vec<String> = cell
            .result
            .moved_blocks()
            .iter()
            .map(|b| b.index().to_string())
            .collect();
        let _ = write!(
            out,
            "    {{\"area\":{},\"datapath\":\"{}\",\"initial_cycles\":{},\"final_cycles\":{},\
             \"cycles_in_cgc\":{},\"moved_blocks\":[{}],\"reduction_percent\":{:.2},\"met\":{}}}",
            cell.area,
            escape(&cell.datapath),
            cell.result.initial_cycles,
            cell.result.final_cycles(),
            cell.result.breakdown.t_coarse_cgc,
            moved.join(","),
            cell.result.reduction_percent(),
            cell.result.met,
        );
        out.push_str(if i + 1 == grid.cells.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"cache\": {}", cache_json(cache));
    out.push_str("}\n");
    out
}

/// Render an [`ExploreReport`] as JSON.
pub fn report_to_json(report: &ExploreReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-explore/v1\",\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&report.app));
    let _ = writeln!(out, "  \"strategy\": \"{}\",", escape(&report.strategy));
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"eval_budget\": {},", report.eval_budget);
    let _ = writeln!(out, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(
        out,
        "  \"space\": {{\"points\": {}, \"cells\": {}, \"constraint\": {}}},",
        report.space_points, report.space_cells, report.constraint
    );
    let _ = writeln!(
        out,
        "  \"effort\": {{\"points_evaluated\": {}, \"engine_runs\": {}, \"cell_hits\": {}}},",
        report.stats.points_evaluated, report.stats.engine_runs, report.stats.cell_hits
    );
    let _ = writeln!(out, "  \"cache\": {},", cache_json(&report.cache));
    out.push_str("  \"frontier\": [\n");
    for (i, p) in report.frontier.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"area\":{},\"datapath\":\"{}\",\"kernels_moved\":{},\"initial_cycles\":{},\
             \"final_cycles\":{},\"speedup\":{:.3},\"energy\":{},\"met\":{}}}",
            p.area,
            escape(&p.datapath),
            p.kernels_moved,
            p.initial_cycles,
            p.objectives.cycles,
            p.speedup(),
            p.objectives.energy,
            p.met,
        );
        out.push_str(if i + 1 == report.frontier.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\u{1}"), "x\\ny\\u0001");
    }
}
