//! JSON rendering for exploration reports.
//!
//! The generic writer (string escaping, cache counters, sweep grids)
//! lives in [`amdrel_core::json`] so every `--json` output in the
//! workspace shares one renderer; this module re-exports it and adds the
//! [`ExploreReport`] shape.
//!
//! # Schema `amdrel-explore/v3`
//!
//! The v2→v3 bump adds the flat `"metrics"` object: a dotted-path
//! counter registry ([`amdrel_core::MetricsRegistry`]) flattening the
//! evaluator effort (`eval.*`), mapping-cache traffic (`cache.*`) and
//! archive churn (`archive.inserts`, `archive.pruned`,
//! `archive.frontier`). Every v2 key is retained unchanged.
//!
//! Earlier history — the v1→v2 bump accompanied the N-objective
//! generalisation (see `docs/BENCHMARKS.md` for the migration notes):
//!
//! * a top-level `"objectives"` array names the minimised objectives in
//!   vector order;
//! * every frontier member carries an `"objectives"` value array
//!   aligned with those names (the per-metric keys `final_cycles`,
//!   `area`, `energy` remain for compatibility);
//! * `"effort"` gains `"sim_runs"` (workload simulations performed);
//! * frontier members scored under runtime objectives carry a
//!   `"contention"` object (`p95_latency`, `cycles_per_job`,
//!   `jobs_per_mcycle`, `completed`, `rejected`, `makespan`,
//!   `reconfig_stall_cycles`, and the reliability pair
//!   `p95_under_faults` / `degraded_permille`).

pub use amdrel_core::json::{cache_to_json, escape, grid_to_json, string_array, u64_array};

use crate::report::ExploreReport;
use amdrel_core::json::publish_cache_metrics;
use amdrel_core::MetricsRegistry;
use std::fmt::Write as _;

/// Flatten an exploration's effort counters into a [`MetricsRegistry`]
/// — the `metrics` object of the `--json` report.
pub fn explore_metrics(report: &ExploreReport) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.set("eval.points", report.stats.points_evaluated);
    m.set("eval.engine_runs", report.stats.engine_runs);
    m.set("eval.cell_hits", report.stats.cell_hits);
    m.set("eval.sim_runs", report.stats.sim_runs);
    publish_cache_metrics(&mut m, &report.cache);
    m.set("archive.inserts", report.archive_inserts);
    m.set("archive.pruned", report.archive_pruned);
    m.set("archive.frontier", report.frontier.len() as u64);
    m
}

/// Render an [`ExploreReport`] as JSON (schema `amdrel-explore/v3`).
pub fn report_to_json(report: &ExploreReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-explore/v3\",\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&report.app));
    let _ = writeln!(out, "  \"strategy\": \"{}\",", escape(&report.strategy));
    let _ = writeln!(
        out,
        "  \"objectives\": {},",
        string_array(&report.objectives)
    );
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"eval_budget\": {},", report.eval_budget);
    let _ = writeln!(out, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(
        out,
        "  \"space\": {{\"points\": {}, \"cells\": {}, \"constraint\": {}}},",
        report.space_points, report.space_cells, report.constraint
    );
    let _ = writeln!(
        out,
        "  \"effort\": {{\"points_evaluated\": {}, \"engine_runs\": {}, \"cell_hits\": {}, \
         \"sim_runs\": {}}},",
        report.stats.points_evaluated,
        report.stats.engine_runs,
        report.stats.cell_hits,
        report.stats.sim_runs
    );
    let _ = writeln!(out, "  \"cache\": {},", cache_to_json(&report.cache));
    let _ = writeln!(out, "  \"metrics\": {},", explore_metrics(report).to_json());
    out.push_str("  \"frontier\": [\n");
    for (i, p) in report.frontier.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"area\":{},\"datapath\":\"{}\",\"kernels_moved\":{},\"initial_cycles\":{},\
             \"final_cycles\":{},\"speedup\":{:.3},\"energy\":{},\"met\":{},\"objectives\":{}",
            p.area,
            escape(&p.datapath),
            p.kernels_moved,
            p.initial_cycles,
            p.cycles,
            p.speedup(),
            p.energy_total(),
            p.met,
            u64_array(p.objectives.values()),
        );
        if let Some(c) = &p.contention {
            let _ = write!(
                out,
                ",\"contention\":{{\"p95_latency\":{},\"cycles_per_job\":{},\
                 \"jobs_per_mcycle\":{:.4},\"completed\":{},\"rejected\":{},\"makespan\":{},\
                 \"reconfig_stall_cycles\":{},\"p95_under_faults\":{},\"degraded_permille\":{}}}",
                c.p95_latency,
                c.cycles_per_job,
                c.jobs_per_mcycle(),
                c.completed,
                c.rejected,
                c.makespan,
                c.reconfig_stall_cycles,
                c.p95_under_faults,
                c.degraded_permille,
            );
        }
        out.push('}');
        out.push_str(if i + 1 == report.frontier.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
