//! Property tests for the Pareto archive invariants, and determinism
//! tests for the seeded strategies (bit-identical frontiers across runs
//! and `jobs` settings).

use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{EnergyBreakdown, EnergyModel, MappingCache, Platform};
use amdrel_explore::{
    explore, DesignSpace, Evaluator, Exhaustive, ExploreConfig, Insert, Objectives, ParetoArchive,
    PointEval, PointIdx, RandomSampling, SearchStrategy, SimulatedAnnealing,
};
use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
use proptest::prelude::*;

/// A synthetic evaluated point; `tag` differentiates point indices so
/// objective-identical points exercise the tie-break path.
fn synthetic(cycles: u64, area: u64, energy: u64, tag: usize) -> PointEval {
    PointEval {
        point: PointIdx {
            area: tag % 7,
            datapath: tag / 7 % 5,
            budget: tag,
        },
        area,
        datapath: "two 2x2 CGCs".to_owned(),
        kernels_moved: tag,
        initial_cycles: cycles.max(1) * 2,
        objectives: Objectives {
            cycles,
            area,
            energy,
        },
        energy: EnergyBreakdown {
            e_fpga_ops: energy,
            e_reconfig: 0,
            e_cgc_ops: 0,
            e_comm: 0,
        },
        met: true,
    }
}

/// Small objective ranges force plenty of domination and exact ties.
/// (The vendored proptest has no `collection::vec`, so the list is
/// expanded from a generated seed via the workspace RNG.)
fn expand_points(seed: u64, n: usize) -> Vec<(u64, u64, u64)> {
    let mut rng = amdrel_core::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.below(12), rng.below(12), rng.below(12)))
        .collect()
}

proptest! {
    /// No archive member ever dominates another.
    #[test]
    fn archive_members_are_mutually_nondominated(seed in any::<u64>(), n in 1usize..120) {
        let pts = expand_points(seed, n);
        let mut archive = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            archive.insert(synthetic(c, a, e, i));
        }
        let frontier = archive.frontier();
        for p in frontier {
            for q in frontier {
                prop_assert!(
                    p == q || !p.objectives.dominates(&q.objectives),
                    "{:?} dominates {:?}", p.objectives, q.objectives
                );
            }
        }
    }

    /// Inserting a point dominated by (or duplicating) the archive is a
    /// no-op, and the frontier matches a from-scratch computation over
    /// the whole input set, regardless of insertion order.
    #[test]
    fn archive_is_a_pure_set_function(seed in any::<u64>(), n in 1usize..120) {
        let pts = expand_points(seed, n);
        let mut forward = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            let before = forward.clone();
            match forward.insert(synthetic(c, a, e, i)) {
                Insert::Dominated | Insert::Duplicate => {
                    prop_assert_eq!(&before, &forward, "rejection must not mutate");
                }
                Insert::Added => {}
            }
        }
        let mut reversed = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate().rev() {
            reversed.insert(synthetic(c, a, e, i));
        }
        let fw: Vec<_> = forward.frontier().iter().map(|p| p.objectives).collect();
        let rv: Vec<_> = reversed.frontier().iter().map(|p| p.objectives).collect();
        prop_assert_eq!(fw, rv, "insertion order changed the frontier");
    }

    /// Pruning keeps a subset of the frontier, never exceeds the bound,
    /// and retains each objective's minimiser.
    #[test]
    fn pruning_keeps_the_frontier(seed in any::<u64>(), n in 1usize..120, max in 3usize..10) {
        let pts = expand_points(seed, n);
        let mut archive = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            archive.insert(synthetic(c, a, e, i));
        }
        let full: Vec<PointEval> = archive.frontier().to_vec();
        archive.prune_to(max);
        prop_assert!(archive.len() <= max);
        prop_assert!(archive.len() == full.len().min(max));
        for p in archive.frontier() {
            prop_assert!(full.contains(p), "pruning invented a point");
        }
        for obj in 0..3 {
            let best = full.iter().map(|p| p.objectives.as_array()[obj]).min().unwrap();
            prop_assert!(
                archive.frontier().iter().any(|p| p.objectives.as_array()[obj] == best),
                "objective {obj} minimiser lost"
            );
        }
    }
}

fn toy() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
    let src = r#"
        int data[96];
        int out[96];
        int main() {
            int acc = 0;
            for (int i = 0; i < 96; i++) {
                int x = data[i];
                out[i] = x * x * 9 + x * 5 + 1;
                acc += out[i];
            }
            return acc;
        }
    "#;
    let c = amdrel_minic::compile(src, "main").unwrap();
    let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
    let a = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
    (c, a)
}

fn space() -> DesignSpace {
    DesignSpace {
        areas: vec![1200, 1500, 2500, 5000],
        datapaths: vec![CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        max_kernel_budget: 3,
        constraint: 3_000,
    }
}

/// Run `strategy` on a fresh evaluator/cache and return the report.
fn run_once(
    strategy: &dyn SearchStrategy,
    seed: u64,
    jobs: usize,
) -> amdrel_explore::ExploreReport {
    let (c, a) = toy();
    let base = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
    explore(
        &eval,
        &space(),
        strategy,
        &ExploreConfig {
            seed,
            eval_budget: 32,
            jobs,
        },
    )
    .unwrap()
}

/// A fixed seed reproduces bit-identical frontiers across runs and across
/// `jobs` settings, for every strategy.
#[test]
fn seeded_strategies_are_deterministic_across_runs_and_jobs() {
    let strategies: [&dyn SearchStrategy; 3] =
        [&Exhaustive, &RandomSampling, &SimulatedAnnealing::default()];
    for strategy in strategies {
        let reference = run_once(strategy, 42, 1);
        for jobs in [0usize, 1, 4] {
            for _ in 0..2 {
                let report = run_once(strategy, 42, jobs);
                assert_eq!(
                    report.frontier,
                    reference.frontier,
                    "strategy {} diverged at jobs={jobs}",
                    strategy.name()
                );
                assert_eq!(
                    report.stats, reference.stats,
                    "effort changed at jobs={jobs}"
                );
            }
        }
    }
}

/// Different seeds may walk different trajectories (sanity check that the
/// seed is actually consumed) while each remains self-consistent.
#[test]
fn seed_changes_the_sampling_trajectory() {
    let a = run_once(&RandomSampling, 1, 0);
    let b = run_once(&RandomSampling, 2, 0);
    // Same space, same exact frontier is *possible* but the evaluation
    // pattern should differ; engine runs are a robust proxy.
    assert!(
        a.stats != b.stats || a.frontier != b.frontier,
        "two seeds produced identical trajectories"
    );
}

/// Every SA frontier point is a real point of the space, so it is either
/// on the exhaustive frontier (identical objectives) or dominated by an
/// exhaustive frontier member — SA can never "invent" a better point.
#[test]
fn sa_frontier_is_consistent_with_exhaustive() {
    let exhaustive = run_once(&Exhaustive, 42, 0);
    let sa = run_once(&SimulatedAnnealing::default(), 42, 0);
    assert!(!sa.frontier.is_empty());
    for p in &sa.frontier {
        assert!(
            exhaustive
                .frontier
                .iter()
                .any(|q| q.objectives == p.objectives || q.objectives.dominates(&p.objectives)),
            "SA point {:?} is neither on nor below the exhaustive frontier",
            p.objectives
        );
    }
}
