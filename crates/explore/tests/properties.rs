//! Property tests for the Pareto archive invariants — at the classic
//! 3-objective arity and at higher N — plus determinism tests for the
//! seeded strategies (bit-identical frontiers across runs and `jobs`
//! settings) and a differential test pinning the refactored N-vector
//! archive to a naive fixed-3-tuple oracle.

use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{EnergyBreakdown, EnergyModel, MappingCache, Platform};
use amdrel_explore::{
    explore, DesignSpace, Evaluator, Exhaustive, ExploreConfig, Insert, Objectives, ParetoArchive,
    PointEval, PointIdx, RandomSampling, SearchStrategy, SimulatedAnnealing,
};
use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
use proptest::prelude::*;

/// A synthetic evaluated point over an arbitrary objective vector;
/// `tag` differentiates point indices so objective-identical points
/// exercise the tie-break path.
fn synthetic_n(values: Vec<u64>, tag: usize) -> PointEval {
    let cycles = values.first().copied().unwrap_or(1);
    PointEval {
        point: PointIdx {
            area: tag % 7,
            datapath: tag / 7 % 5,
            budget: tag,
        },
        area: values.get(1).copied().unwrap_or(1000),
        datapath: "two 2x2 CGCs".to_owned(),
        kernels_moved: tag,
        initial_cycles: cycles.max(1) * 2,
        cycles,
        energy: EnergyBreakdown {
            e_fpga_ops: values.get(2).copied().unwrap_or(0),
            e_reconfig: 0,
            e_cgc_ops: 0,
            e_comm: 0,
        },
        contention: None,
        objectives: Objectives::new(values),
        met: true,
    }
}

fn synthetic(cycles: u64, area: u64, energy: u64, tag: usize) -> PointEval {
    synthetic_n(vec![cycles, area, energy], tag)
}

/// Small objective ranges force plenty of domination and exact ties.
/// (The vendored proptest has no `collection::vec`, so the list is
/// expanded from a generated seed via the workspace RNG.)
fn expand_points(seed: u64, n: usize) -> Vec<(u64, u64, u64)> {
    let mut rng = amdrel_core::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.below(12), rng.below(12), rng.below(12)))
        .collect()
}

/// N-dimensional variant of [`expand_points`].
fn expand_vectors(seed: u64, n: usize, arity: usize) -> Vec<Vec<u64>> {
    let mut rng = amdrel_core::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..arity).map(|_| rng.below(9)).collect())
        .collect()
}

proptest! {
    /// No archive member ever dominates another.
    #[test]
    fn archive_members_are_mutually_nondominated(seed in any::<u64>(), n in 1usize..120) {
        let pts = expand_points(seed, n);
        let mut archive = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            archive.insert(synthetic(c, a, e, i));
        }
        let frontier = archive.frontier();
        for p in frontier {
            for q in frontier {
                prop_assert!(
                    p == q || !p.objectives.dominates(&q.objectives),
                    "{:?} dominates {:?}", p.objectives, q.objectives
                );
            }
        }
    }

    /// Inserting a point dominated by (or duplicating) the archive is a
    /// no-op, and the frontier matches a from-scratch computation over
    /// the whole input set, regardless of insertion order.
    #[test]
    fn archive_is_a_pure_set_function(seed in any::<u64>(), n in 1usize..120) {
        let pts = expand_points(seed, n);
        let mut forward = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            let before = forward.clone();
            match forward.insert(synthetic(c, a, e, i)) {
                Insert::Dominated | Insert::Duplicate => {
                    prop_assert_eq!(&before, &forward, "rejection must not mutate");
                }
                Insert::Added => {}
            }
        }
        let mut reversed = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate().rev() {
            reversed.insert(synthetic(c, a, e, i));
        }
        let fw: Vec<_> = forward.frontier().iter().map(|p| &p.objectives).collect();
        let rv: Vec<_> = reversed.frontier().iter().map(|p| &p.objectives).collect();
        prop_assert_eq!(fw, rv, "insertion order changed the frontier");
    }

    /// At any objective arity, the frontier is a pure function of the
    /// inserted *set*: forward, reversed and interleaved insertion
    /// orders produce identical frontiers, in identical iteration
    /// order, and members stay mutually non-dominated.
    #[test]
    fn n_objective_frontier_is_insertion_order_independent(
        seed in any::<u64>(),
        n in 1usize..90,
        arity in 1usize..7,
    ) {
        let pts = expand_vectors(seed, n, arity);
        let mut forward = ParetoArchive::new();
        for (i, v) in pts.iter().enumerate() {
            forward.insert(synthetic_n(v.clone(), i));
        }
        let mut reversed = ParetoArchive::new();
        for (i, v) in pts.iter().enumerate().rev() {
            reversed.insert(synthetic_n(v.clone(), i));
        }
        // An "inside-out" interleaving: odd indices first, then even.
        let mut interleaved = ParetoArchive::new();
        for (i, v) in pts.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            interleaved.insert(synthetic_n(v.clone(), i));
        }
        for (i, v) in pts.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            interleaved.insert(synthetic_n(v.clone(), i));
        }
        prop_assert_eq!(forward.frontier(), reversed.frontier());
        prop_assert_eq!(forward.frontier(), interleaved.frontier());
        for p in forward.frontier() {
            prop_assert_eq!(p.objectives.len(), arity);
            for q in forward.frontier() {
                prop_assert!(p == q || !p.objectives.dominates(&q.objectives));
            }
        }
    }

    /// Pruning keeps a subset of the frontier, never exceeds the bound,
    /// and retains each objective's minimiser — at any arity.
    #[test]
    fn pruning_keeps_the_frontier(
        seed in any::<u64>(),
        n in 1usize..120,
        max in 3usize..10,
        arity in 2usize..6,
    ) {
        let pts = expand_vectors(seed, n, arity);
        let mut archive = ParetoArchive::new();
        for (i, v) in pts.iter().enumerate() {
            archive.insert(synthetic_n(v.clone(), i));
        }
        let full: Vec<PointEval> = archive.frontier().to_vec();
        archive.prune_to(max);
        prop_assert!(archive.len() <= max);
        prop_assert!(archive.len() == full.len().min(max));
        for p in archive.frontier() {
            prop_assert!(full.contains(p), "pruning invented a point");
        }
        // Per-objective minimisers are guaranteed only when the cap can
        // hold one extreme per objective (below that, prune_to keeps the
        // first `max` extremes in sorted order — documented degeneracy).
        if arity <= max {
            for obj in 0..arity {
                let best = full.iter().map(|p| p.objectives.values()[obj]).min().unwrap();
                prop_assert!(
                    archive.frontier().iter().any(|p| p.objectives.values()[obj] == best),
                    "objective {obj} minimiser lost"
                );
            }
        }
    }

    /// Differential oracle for the 3-objective path: the N-vector
    /// archive produces exactly the frontier a naive fixed-3-tuple
    /// implementation computes over the same input set, so the
    /// generalisation left the classic `(cycles, area, energy)`
    /// behaviour bit-identical.
    #[test]
    fn three_objective_path_matches_fixed_tuple_oracle(seed in any::<u64>(), n in 1usize..120) {
        let pts = expand_points(seed, n);
        let mut archive = ParetoArchive::new();
        for (i, &(c, a, e)) in pts.iter().enumerate() {
            archive.insert(synthetic(c, a, e, i));
        }
        let oracle = oracle_frontier(&pts);
        let got: Vec<[u64; 3]> = archive
            .frontier()
            .iter()
            .map(|p| {
                let v = p.objectives.values();
                [v[0], v[1], v[2]]
            })
            .collect();
        prop_assert_eq!(got, oracle, "N-vector archive diverged from the 3-tuple oracle");
    }
}

/// The pre-refactor semantics, restated from scratch over `[u64; 3]`:
/// keep every tuple no other tuple dominates, dedupe exact ties, sort
/// ascending.
fn oracle_frontier(pts: &[(u64, u64, u64)]) -> Vec<[u64; 3]> {
    let tuples: Vec<[u64; 3]> = pts.iter().map(|&(c, a, e)| [c, a, e]).collect();
    let dominates = |x: &[u64; 3], y: &[u64; 3]| x.iter().zip(y).all(|(a, b)| a <= b) && x != y;
    let mut frontier: Vec<[u64; 3]> = tuples
        .iter()
        .filter(|t| !tuples.iter().any(|o| dominates(o, t)))
        .copied()
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    frontier
}

fn toy() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
    let src = r#"
        int data[96];
        int out[96];
        int main() {
            int acc = 0;
            for (int i = 0; i < 96; i++) {
                int x = data[i];
                out[i] = x * x * 9 + x * 5 + 1;
                acc += out[i];
            }
            return acc;
        }
    "#;
    let c = amdrel_minic::compile(src, "main").unwrap();
    let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
    let a = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
    (c, a)
}

fn space() -> DesignSpace {
    DesignSpace {
        areas: vec![1200, 1500, 2500, 5000],
        datapaths: vec![CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        max_kernel_budget: 3,
        constraint: 3_000,
    }
}

/// Run `strategy` on a fresh evaluator/cache and return the report.
/// With `contention`, the evaluator scores `(cycles, area, energy, p95,
/// throughput)` against a synthetic background tenant.
fn run_once_with(
    strategy: &dyn SearchStrategy,
    seed: u64,
    jobs: usize,
    contention: bool,
) -> amdrel_explore::ExploreReport {
    use amdrel_explore::{ObjectiveSet, RuntimeEvaluator};
    use amdrel_runtime::{AppProfile, ShortestJobFirst};
    let (c, a) = toy();
    let base = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let runtime = RuntimeEvaluator::new(
        vec![AppProfile::synthetic("bg", 0, 7_000, 1_500, vec![450])],
        Box::new(ShortestJobFirst),
    )
    .with_seed(99)
    .with_njobs(40)
    .with_load(125);
    let mut eval = Evaluator::new("toy", &c.cdfg, &a, &base, EnergyModel::default(), &cache);
    if contention {
        eval = eval
            .with_objectives(ObjectiveSet::parse("cycles,area,energy,p95,throughput").unwrap())
            .with_runtime(&runtime);
    }
    explore(
        &eval,
        &space(),
        strategy,
        &ExploreConfig {
            seed,
            eval_budget: 32,
            jobs,
        },
    )
    .unwrap()
}

fn run_once(
    strategy: &dyn SearchStrategy,
    seed: u64,
    jobs: usize,
) -> amdrel_explore::ExploreReport {
    run_once_with(strategy, seed, jobs, false)
}

/// A fixed seed reproduces bit-identical frontiers across runs and across
/// `jobs` settings, for every strategy — under the static triple and
/// under the full 5-objective contention-aware vector.
#[test]
fn seeded_strategies_are_deterministic_across_runs_and_jobs() {
    let strategies: [&dyn SearchStrategy; 3] =
        [&Exhaustive, &RandomSampling, &SimulatedAnnealing::default()];
    for contention in [false, true] {
        for strategy in strategies {
            let reference = run_once_with(strategy, 42, 1, contention);
            for jobs in [0usize, 1, 4] {
                for _ in 0..2 {
                    let report = run_once_with(strategy, 42, jobs, contention);
                    assert_eq!(
                        report.frontier,
                        reference.frontier,
                        "strategy {} diverged at jobs={jobs} (contention={contention})",
                        strategy.name()
                    );
                    assert_eq!(
                        report.stats, reference.stats,
                        "effort changed at jobs={jobs} (contention={contention})"
                    );
                }
            }
        }
    }
}

/// Different seeds may walk different trajectories (sanity check that the
/// seed is actually consumed) while each remains self-consistent.
#[test]
fn seed_changes_the_sampling_trajectory() {
    let a = run_once(&RandomSampling, 1, 0);
    let b = run_once(&RandomSampling, 2, 0);
    // Same space, same exact frontier is *possible* but the evaluation
    // pattern should differ; engine runs are a robust proxy.
    assert!(
        a.stats != b.stats || a.frontier != b.frontier,
        "two seeds produced identical trajectories"
    );
}

/// Every SA frontier point is a real point of the space, so it is either
/// on the exhaustive frontier (identical objectives) or dominated by an
/// exhaustive frontier member — SA can never "invent" a better point.
#[test]
fn sa_frontier_is_consistent_with_exhaustive() {
    let exhaustive = run_once(&Exhaustive, 42, 0);
    let sa = run_once(&SimulatedAnnealing::default(), 42, 0);
    assert!(!sa.frontier.is_empty());
    for p in &sa.frontier {
        assert!(
            exhaustive
                .frontier
                .iter()
                .any(|q| q.objectives == p.objectives || q.objectives.dominates(&p.objectives)),
            "SA point {:?} is neither on nor below the exhaustive frontier",
            p.objectives
        );
    }
}

/// Adding objectives can only widen a frontier: every `(cycles, area,
/// energy)` triple on the static exhaustive frontier is still
/// represented on the 5-objective contention-aware exhaustive frontier.
/// (Point identity can legitimately shift — of two points with an
/// identical static triple, the one with better contention metrics now
/// wins — but no static trade-off is lost.)
#[test]
fn contention_frontier_contains_the_static_frontier() {
    let static_report = run_once_with(&Exhaustive, 42, 0, false);
    let contention_report = run_once_with(&Exhaustive, 42, 0, true);
    assert!(contention_report.frontier.len() >= static_report.frontier.len());
    for p in &static_report.frontier {
        assert!(
            contention_report
                .frontier
                .iter()
                .any(|q| (q.cycles, q.area, q.energy_total())
                    == (p.cycles, p.area, p.energy_total())),
            "static frontier triple for {:?} vanished under extra objectives",
            p.point
        );
    }
    for q in &contention_report.frontier {
        assert_eq!(q.objectives.len(), 5);
        assert!(q.contention.is_some(), "contention metrics attached");
    }
}
