//! Three-address-code IR with an explicit basic-block CFG.
//!
//! This is the frontend's equivalent of the paper's MachineSUIF-level
//! representation: the lowering pass turns the AST into `Instr` sequences
//! grouped into basic blocks, calls are inlined away, and the result is
//! what both the profiler (interpretation with per-BB counters) and the
//! CDFG conversion consume. Keeping one shared block structure guarantees
//! the exec-frequency counters and the partitioned basic blocks line up
//! one-to-one — the property the paper gets by placing Lex counters in the
//! same source the partitioner reads.

use crate::ast::{BinOp, UnOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a scalar variable (parameter, named local, or compiler temp)
/// within a [`Function`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a basic block within a [`Function`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockIdx(pub u32);

impl BlockIdx {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Reference to an array: program-global or function-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayRef {
    /// Index into [`IrProgram::globals`].
    Global(u32),
    /// Index into [`Function::arrays`].
    Local(u32),
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayRef::Global(i) => write!(f, "g{i}"),
            ArrayRef::Local(i) => write!(f, "a{i}"),
        }
    }
}

/// An instruction operand: a scalar variable or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read of a scalar variable.
    Var(VarId),
    /// Immediate constant.
    Const(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One three-address instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination variable.
        dst: VarId,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination variable.
        dst: VarId,
        /// Operand.
        src: Operand,
    },
    /// `dst = src` (copy / materialise constant).
    Copy {
        /// Destination variable.
        dst: VarId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = array[index]`.
    Load {
        /// Destination variable.
        dst: VarId,
        /// Array accessed.
        array: ArrayRef,
        /// Element index.
        index: Operand,
    },
    /// `array[index] = value`.
    Store {
        /// Array accessed.
        array: ArrayRef,
        /// Element index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {lhs} {op} {rhs}"),
            Instr::Un { op, dst, src } => write!(f, "{dst} = {op}{src}"),
            Instr::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Load { dst, array, index } => write!(f, "{dst} = {array}[{index}]"),
            Instr::Store {
                array,
                index,
                value,
            } => write!(f, "{array}[{index}] = {value}"),
        }
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockIdx),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Target when non-zero.
        then_bb: BlockIdx,
        /// Target when zero.
        else_bb: BlockIdx,
    },
    /// Function return (the inlined whole-program function returns from
    /// the application).
    Return(Option<Operand>),
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                write!(f, "branch {cond} ? {then_bb} : {else_bb}")
            }
            Terminator::Return(Some(v)) => write!(f, "return {v}"),
            Terminator::Return(None) => write!(f, "return"),
        }
    }
}

/// One basic block of straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable label.
    pub label: String,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// Successor blocks of this block's terminator.
    pub fn successors(&self) -> Vec<BlockIdx> {
        match &self.term {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// Metadata for one scalar variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarInfo {
    /// Source name, or a generated `%tN` name for compiler temps.
    pub name: String,
    /// Declared bitwidth.
    pub bits: u16,
    /// Whether this is a compiler-generated temporary.
    pub is_temp: bool,
}

/// Metadata for one local array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalArray {
    /// Source name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Element bitwidth.
    pub bits: u16,
}

/// A lowered function (after inlining there is exactly one per program).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter variables (prefix of `vars`).
    pub params: Vec<VarId>,
    /// All scalar variables.
    pub vars: Vec<VarInfo>,
    /// All local arrays.
    pub arrays: Vec<LocalArray>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block index (always `L0`).
    pub fn entry(&self) -> BlockIdx {
        BlockIdx(0)
    }

    /// Variable metadata lookup.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Number of instructions across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Predecessor lists for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockIdx>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.index()].push(BlockIdx(i as u32));
            }
        }
        preds
    }
}

/// Metadata for one global array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalArray {
    /// Source name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Element bitwidth.
    pub bits: u16,
    /// Initial contents (length `len`, zero-padded).
    pub init: Vec<i64>,
}

/// A whole lowered program: global arrays plus the single inlined entry
/// function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrProgram {
    /// Global arrays.
    pub globals: Vec<GlobalArray>,
    /// The inlined entry function.
    pub entry: Function,
}

impl IrProgram {
    /// Pretty listing of the whole program (labels, instructions,
    /// terminators) — the `-emit-ir` style debugging view.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for g in &self.globals {
            let _ = writeln!(out, "global {}[{}] : i{}", g.name, g.len, g.bits);
        }
        let f = &self.entry;
        let _ = writeln!(
            out,
            "fn {}({} vars, {} arrays):",
            f.name,
            f.vars.len(),
            f.arrays.len()
        );
        for (i, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "L{i}: ; {}", b.label);
            for ins in &b.instrs {
                let _ = writeln!(out, "  {ins}");
            }
            let _ = writeln!(out, "  {}", b.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_of_terminators() {
        let jump = Block {
            label: "j".into(),
            instrs: vec![],
            term: Terminator::Jump(BlockIdx(3)),
        };
        assert_eq!(jump.successors(), vec![BlockIdx(3)]);

        let branch = Block {
            label: "b".into(),
            instrs: vec![],
            term: Terminator::Branch {
                cond: Operand::Const(1),
                then_bb: BlockIdx(1),
                else_bb: BlockIdx(2),
            },
        };
        assert_eq!(branch.successors(), vec![BlockIdx(1), BlockIdx(2)]);

        let same = Block {
            label: "s".into(),
            instrs: vec![],
            term: Terminator::Branch {
                cond: Operand::Const(1),
                then_bb: BlockIdx(1),
                else_bb: BlockIdx(1),
            },
        };
        assert_eq!(same.successors(), vec![BlockIdx(1)]);

        let ret = Block {
            label: "r".into(),
            instrs: vec![],
            term: Terminator::Return(None),
        };
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn display_forms() {
        let i = Instr::Bin {
            op: BinOp::Mul,
            dst: VarId(3),
            lhs: Operand::Var(VarId(1)),
            rhs: Operand::Const(7),
        };
        assert_eq!(i.to_string(), "v3 = v1 * 7");
        let s = Instr::Store {
            array: ArrayRef::Global(0),
            index: Operand::Var(VarId(2)),
            value: Operand::Const(5),
        };
        assert_eq!(s.to_string(), "g0[v2] = 5");
        let t = Terminator::Branch {
            cond: Operand::Var(VarId(0)),
            then_bb: BlockIdx(1),
            else_bb: BlockIdx(2),
        };
        assert_eq!(t.to_string(), "branch v0 ? L1 : L2");
    }
}
