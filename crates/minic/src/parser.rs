//! Recursive-descent parser for mini-C.
//!
//! Grammar (EBNF sketch):
//!
//! ```text
//! program     := (global_array | function)*
//! global_array:= width ident '[' intlit ']' ('=' '{' intlit (',' intlit)* '}')? ';'
//! function    := (width | 'void') ident '(' params? ')' block
//! params      := width ident (',' width ident)*
//! block       := '{' stmt* '}'
//! stmt        := decl | assign | if | while | do-while | for | return
//!              | break | continue | exprstmt | block
//! ```
//!
//! Compound assignments (`+=`, `<<=`, …) and `++`/`--` are desugared into
//! plain assignments during parsing; short-circuit `&&`/`||` and `?:` are
//! kept structured for the lowering pass to expand into control flow.

use crate::ast::*;
use crate::token::{Keyword, Span, Token, TokenKind};
use crate::CompileError;

/// Parse a full translation unit.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered (no recovery — the flows
/// this frontend feeds want all-or-nothing input).
///
/// # Examples
///
/// ```
/// use amdrel_minic::{lexer::lex, parser::parse};
///
/// # fn main() -> Result<(), amdrel_minic::CompileError> {
/// let tokens = lex("int main() { return 1 + 2; }")?;
/// let program = parse(&tokens)?;
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].name, "main");
/// # Ok(())
/// # }
/// ```
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    Parser::new(tokens).program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, CompileError> {
        if self.peek() == kind {
            Ok(self.bump().span)
        } else {
            Err(CompileError::new(
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(CompileError::new(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    fn width_keyword(&mut self) -> Option<IntWidth> {
        let w = match self.peek() {
            TokenKind::Keyword(Keyword::Char) => IntWidth::W8,
            TokenKind::Keyword(Keyword::Short) => IntWidth::W16,
            TokenKind::Keyword(Keyword::Int) => IntWidth::W32,
            TokenKind::Keyword(Keyword::Long) => IntWidth::W64,
            _ => return None,
        };
        self.bump();
        Some(w)
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        while self.peek() != &TokenKind::Eof {
            // Lookahead: width ident '[' → global array; otherwise function.
            let is_void = matches!(self.peek(), TokenKind::Keyword(Keyword::Void));
            let is_width = matches!(
                self.peek(),
                TokenKind::Keyword(Keyword::Int | Keyword::Short | Keyword::Char | Keyword::Long)
            );
            if !is_void && !is_width {
                return Err(CompileError::new(
                    format!("expected type at top level, found {}", self.peek()),
                    self.span(),
                ));
            }
            if is_width && matches!(self.peek_at(2), TokenKind::LBracket) {
                program.globals.push(self.global_array()?);
            } else {
                program.functions.push(self.function()?);
            }
        }
        Ok(program)
    }

    fn global_array(&mut self) -> Result<GlobalArrayDef, CompileError> {
        let start = self.span();
        let width = self.width_keyword().expect("caller checked width keyword");
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBracket)?;
        let len = self.int_literal()? as usize;
        self.expect(&TokenKind::RBracket)?;
        let mut init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            self.expect(&TokenKind::LBrace)?;
            if self.peek() != &TokenKind::RBrace {
                loop {
                    init.push(self.signed_int_literal()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RBrace)?;
            if init.len() > len {
                return Err(CompileError::new(
                    format!(
                        "array '{name}' initialiser has {} values but length is {len}",
                        init.len()
                    ),
                    start,
                ));
            }
        }
        let end = self.expect(&TokenKind::Semi)?;
        Ok(GlobalArrayDef {
            width,
            name,
            len,
            init,
            span: start.merge(end),
        })
    }

    fn int_literal(&mut self) -> Result<i64, CompileError> {
        match *self.peek() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(CompileError::new(
                format!("expected integer literal, found {other}"),
                self.span(),
            )),
        }
    }

    fn signed_int_literal(&mut self) -> Result<i64, CompileError> {
        if self.eat(&TokenKind::Minus) {
            Ok(-self.int_literal()?)
        } else {
            self.int_literal()
        }
    }

    fn function(&mut self) -> Result<FunctionDef, CompileError> {
        let start = self.span();
        let return_width = if self.eat(&TokenKind::Keyword(Keyword::Void)) {
            None
        } else {
            Some(
                self.width_keyword()
                    .ok_or_else(|| CompileError::new("expected return type", self.span()))?,
            )
        };
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            // Allow `void` as an empty parameter list, C-style.
            if self.eat(&TokenKind::Keyword(Keyword::Void)) {
                // nothing
            } else {
                loop {
                    let w = self
                        .width_keyword()
                        .ok_or_else(|| CompileError::new("expected parameter type", self.span()))?;
                    let (pname, _) = self.expect_ident()?;
                    params.push((w, pname));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            return_width,
            params,
            body,
            span: start,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(CompileError::new("unterminated block", self.span()));
            }
            body.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Int | Keyword::Short | Keyword::Char | Keyword::Long) => {
                self.decl()
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt(),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(),
            TokenKind::Keyword(Keyword::Do) => self.do_while_stmt(),
            TokenKind::Keyword(Keyword::For) => self.for_stmt(),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { span })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::LBrace => {
                let body = self.block()?;
                Ok(Stmt::Block { body, span })
            }
            _ => self.simple_stmt_semicolon(),
        }
    }

    fn decl(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let width = self.width_keyword().expect("caller checked");
        let (name, _) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let len = self.int_literal()? as usize;
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::ArrayDecl {
                width,
                name,
                len,
                span,
            });
        }
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Decl {
            width,
            name,
            init,
            span,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.bump(); // if
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = self.stmt_as_block()?;
        let else_branch = if self.eat(&TokenKind::Keyword(Keyword::Else)) {
            self.stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.bump(); // while
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While { cond, body, span })
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.bump(); // do
        let body = self.stmt_as_block()?;
        self.expect(&TokenKind::Keyword(Keyword::While))?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::DoWhile { body, cond, span })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            self.bump();
            None
        } else if matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Int | Keyword::Short | Keyword::Char | Keyword::Long)
        ) {
            Some(Box::new(self.decl()?))
        } else {
            let s = self.simple_stmt()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn simple_stmt_semicolon(&mut self) -> Result<Stmt, CompileError> {
        let s = self.simple_stmt()?;
        self.expect(&TokenKind::Semi)?;
        Ok(s)
    }

    /// An assignment / increment / call, without the trailing semicolon
    /// (shared between expression statements and `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        // lvalue-leading forms need lookahead: ident ('[' ... ']')? assign-op
        if let TokenKind::Ident(name) = self.peek().clone() {
            // Scan ahead to find what follows the lvalue.
            let after = if matches!(self.peek_at(1), TokenKind::LBracket) {
                // Find matching ']' by scanning with a depth counter.
                let mut depth = 0usize;
                let mut i = self.pos + 1;
                loop {
                    match &self.tokens[i.min(self.tokens.len() - 1)].kind {
                        TokenKind::LBracket => depth += 1,
                        TokenKind::RBracket => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Eof => break,
                        _ => {}
                    }
                    i += 1;
                }
                self.tokens[(i + 1).min(self.tokens.len() - 1)].kind.clone()
            } else {
                self.peek_at(1).clone()
            };

            let compound = |op: BinOp| Some(op);
            let desugar_op = match after {
                TokenKind::Assign => None,
                TokenKind::PlusAssign => compound(BinOp::Add),
                TokenKind::MinusAssign => compound(BinOp::Sub),
                TokenKind::StarAssign => compound(BinOp::Mul),
                TokenKind::ShlAssign => compound(BinOp::Shl),
                TokenKind::ShrAssign => compound(BinOp::Shr),
                TokenKind::AmpAssign => compound(BinOp::And),
                TokenKind::PipeAssign => compound(BinOp::Or),
                TokenKind::CaretAssign => compound(BinOp::Xor),
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    // i++ / i-- desugars to i = i ± 1.
                    let target = self.lvalue()?;
                    let is_inc = self.peek() == &TokenKind::PlusPlus;
                    self.bump();
                    let value = Expr::Binary {
                        op: if is_inc { BinOp::Add } else { BinOp::Sub },
                        lhs: Box::new(lvalue_to_expr(&target)),
                        rhs: Box::new(Expr::IntLit { value: 1, span }),
                        span,
                    };
                    return Ok(Stmt::Assign {
                        target,
                        value,
                        span,
                    });
                }
                _ => {
                    // Not an assignment — it must be a call expression.
                    let expr = self.expr()?;
                    if !matches!(expr, Expr::Call { .. }) {
                        return Err(CompileError::new(
                            format!("expression statement '{name}…' has no effect"),
                            span,
                        ));
                    }
                    return Ok(Stmt::ExprStmt { expr, span });
                }
            };

            let target = self.lvalue()?;
            self.bump(); // the (compound) assignment token
            let rhs = self.expr()?;
            let value = match desugar_op {
                None => rhs,
                Some(op) => Expr::Binary {
                    op,
                    lhs: Box::new(lvalue_to_expr(&target)),
                    rhs: Box::new(rhs),
                    span,
                },
            };
            return Ok(Stmt::Assign {
                target,
                value,
                span,
            });
        }
        // Anything else: a call expression statement.
        let expr = self.expr()?;
        if !matches!(expr, Expr::Call { .. }) {
            return Err(CompileError::new(
                "only calls may be used as expression statements",
                span,
            ));
        }
        Ok(Stmt::ExprStmt { expr, span })
    }

    fn lvalue(&mut self) -> Result<LValue, CompileError> {
        let (name, span) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Ok(LValue::Index { name, index, span })
        } else {
            Ok(LValue::Var { name, span })
        }
    }

    // ---- expressions: precedence climbing ------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let span = cond.span();
            let then_val = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_val = self.ternary()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_val: Box::new(then_val),
                else_val: Box::new(else_val),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Binary operator precedence (C-like, low to high):
    /// `||` < `&&` < `|` < `^` < `&` < `==`/`!=` < relational < shifts
    /// < additive < multiplicative.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (prec, kind) = match self.peek() {
                TokenKind::PipePipe => (1, BinKind::LogOr),
                TokenKind::AmpAmp => (2, BinKind::LogAnd),
                TokenKind::Pipe => (3, BinKind::Op(BinOp::Or)),
                TokenKind::Caret => (4, BinKind::Op(BinOp::Xor)),
                TokenKind::Amp => (5, BinKind::Op(BinOp::And)),
                TokenKind::EqEq => (6, BinKind::Op(BinOp::Eq)),
                TokenKind::Ne => (6, BinKind::Op(BinOp::Ne)),
                TokenKind::Lt => (7, BinKind::Op(BinOp::Lt)),
                TokenKind::Le => (7, BinKind::Op(BinOp::Le)),
                TokenKind::Gt => (7, BinKind::Op(BinOp::Gt)),
                TokenKind::Ge => (7, BinKind::Op(BinOp::Ge)),
                TokenKind::Shl => (8, BinKind::Op(BinOp::Shl)),
                TokenKind::Shr => (8, BinKind::Op(BinOp::Shr)),
                TokenKind::Plus => (9, BinKind::Op(BinOp::Add)),
                TokenKind::Minus => (9, BinKind::Op(BinOp::Sub)),
                TokenKind::Star => (10, BinKind::Op(BinOp::Mul)),
                TokenKind::Slash => (10, BinKind::Op(BinOp::Div)),
                TokenKind::Percent => (10, BinKind::Op(BinOp::Rem)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = match kind {
                BinKind::Op(op) => Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                },
                BinKind::LogAnd => Expr::Logical {
                    is_and: true,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                },
                BinKind::LogOr => Expr::Logical {
                    is_and: false,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                },
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Bang => Some(UnOp::LogicalNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(value) => {
                self.bump();
                Ok(Expr::IntLit { value, span })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        span,
                    })
                } else if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        span,
                    })
                } else {
                    Ok(Expr::Var { name, span })
                }
            }
            other => Err(CompileError::new(
                format!("expected expression, found {other}"),
                span,
            )),
        }
    }
}

enum BinKind {
    Op(BinOp),
    LogAnd,
    LogOr,
}

fn lvalue_to_expr(lv: &LValue) -> Expr {
    match lv {
        LValue::Var { name, span } => Expr::Var {
            name: name.clone(),
            span: *span,
        },
        LValue::Index { name, index, span } => Expr::Index {
            name: name.clone(),
            index: Box::new(index.clone()),
            span: *span,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> CompileError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn parse_function_and_params() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        let f = &p.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.return_width, Some(IntWidth::W32));
    }

    #[test]
    fn parse_void_function() {
        let p = parse_src("void run(void) { }");
        assert_eq!(p.functions[0].return_width, None);
        assert!(p.functions[0].params.is_empty());
    }

    #[test]
    fn parse_global_array_with_init() {
        let p = parse_src("short tw[4] = {1, -2, 3, 4};\nint main() { return 0; }");
        let g = &p.globals[0];
        assert_eq!(g.name, "tw");
        assert_eq!(g.len, 4);
        assert_eq!(g.init, vec![1, -2, 3, 4]);
        assert_eq!(g.width, IntWidth::W16);
    }

    #[test]
    fn global_array_too_many_inits_errors() {
        let e = parse_err("int a[2] = {1,2,3};");
        assert!(e.to_string().contains("3 values"));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!("expected return");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected + at root, got {e:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_shift_vs_relational() {
        // `a << b < c` parses as `(a << b) < c` (shift binds tighter here).
        let p = parse_src("int f(int a, int b, int c) { return a << b < c; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn parse_for_loop_with_decl_and_increment() {
        let p =
            parse_src("int f() { int s = 0; for (int i = 0; i < 8; i++) { s += i; } return s; }");
        let Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } = &p.functions[0].body[1]
        else {
            panic!("expected for");
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
        assert_eq!(body.len(), 1);
        // i++ desugars into i = i + 1
        let Stmt::Assign { value, .. } = &**step.as_ref().unwrap() else {
            panic!("step should be assignment");
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn compound_assign_desugars() {
        let p = parse_src("int f(int x) { x <<= 2; return x; }");
        let Stmt::Assign { value, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Shl, .. }));
    }

    #[test]
    fn array_element_compound_assign() {
        let p = parse_src("int a[8];\nint f(int i) { a[i+1] += 3; return a[0]; }");
        let Stmt::Assign { target, value, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(target, LValue::Index { .. }));
        assert!(matches!(value, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let p =
            parse_src("int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }");
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &p.functions[0].body[0]
        else {
            panic!();
        };
        assert!(else_branch.is_empty(), "outer if must have no else");
        let Stmt::If {
            else_branch: inner_else,
            ..
        } = &then_branch[0]
        else {
            panic!();
        };
        assert_eq!(inner_else.len(), 1);
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse_src("int f(int a, int b) { return a && b ? a : b || 1; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(e, Expr::Ternary { .. }));
    }

    #[test]
    fn do_while_parses() {
        let p = parse_src("int f() { int i = 0; do { i++; } while (i < 4); return i; }");
        assert!(matches!(p.functions[0].body[1], Stmt::DoWhile { .. }));
    }

    #[test]
    fn break_continue_parse() {
        let p = parse_src("int f() { while (1) { break; } for (;;) { continue; } return 0; }");
        let Stmt::While { body, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(body[0], Stmt::Break { .. }));
    }

    #[test]
    fn call_statement_parses() {
        let p = parse_src("void g() {} void f() { g(); }");
        assert!(matches!(
            p.functions[1].body[0],
            Stmt::ExprStmt {
                expr: Expr::Call { .. },
                ..
            }
        ));
    }

    #[test]
    fn useless_expression_statement_rejected() {
        let e = parse_err("int f(int x) { x + 1; return x; }");
        assert!(e.to_string().contains("no effect") || e.to_string().contains("calls"));
    }

    #[test]
    fn local_array_decl() {
        let p = parse_src("int f() { int buf[16]; buf[0] = 1; return buf[0]; }");
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::ArrayDecl { len: 16, .. }
        ));
    }

    #[test]
    fn error_reports_position() {
        let e = parse_err("int f() { return 1 + ; }");
        assert_eq!(e.span().line, 1);
        assert!(e.to_string().contains("expected expression"));
    }

    #[test]
    fn unclosed_paren_rejected() {
        let e = parse_err("int f() { return (1 + 2; }");
        assert!(e.to_string().contains("')'"), "{e}");
    }

    #[test]
    fn unclosed_block_rejected() {
        let e = parse_err("int f() { int x = 1;");
        assert!(e.to_string().contains("unterminated block"), "{e}");
    }

    #[test]
    fn missing_semicolon_rejected() {
        let e = parse_err("int f() { int x = 1 return x; }");
        assert!(e.to_string().contains("';'"), "{e}");
    }

    #[test]
    fn array_length_must_be_literal() {
        let e = parse_err("int f() { int n = 4; int a[n]; return 0; }");
        assert!(e.to_string().contains("integer literal"), "{e}");
    }

    #[test]
    fn top_level_junk_rejected() {
        let e = parse_err("banana int f() { return 0; }");
        assert!(e.to_string().contains("expected type at top level"), "{e}");
    }

    #[test]
    fn chained_assignment_not_supported() {
        // `a = b = 1` is not in the subset; the second `=` must error.
        assert!(
            parse(&lex("int f() { int a = 0; int b = 0; a = b = 1; return a; }").unwrap()).is_err()
        );
    }

    #[test]
    fn empty_for_headers_parse() {
        let p =
            parse_src("int f() { int i = 0; for (;;) { i++; if (i > 3) { break; } } return i; }");
        let Stmt::For {
            init, cond, step, ..
        } = &p.functions[0].body[1]
        else {
            panic!("expected for");
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn deeply_nested_expression_parses() {
        let inner = "1".to_string();
        let expr = (0..40).fold(inner, |acc, _| format!("({acc} + 1)"));
        let src = format!("int f() {{ return {expr}; }}");
        let p = parse_src(&src);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul() {
        let p = parse_src("int f(int a) { return -a * 3; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        // Parses as (-a) * 3: multiplication at the root.
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }
}
