//! Tokens and source positions for the mini-C language.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range into the source, with 1-based line/column of the
/// start for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `start..end` at the given position.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: first.start,
            end: last.end.max(first.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Reserved words of mini-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Keyword {
    /// `int` — 32-bit integer.
    Int,
    /// `short` — 16-bit integer.
    Short,
    /// `char` — 8-bit integer.
    Char,
    /// `long` — 64-bit integer.
    Long,
    /// `void` — function return type only.
    Void,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

impl Keyword {
    /// Look up a keyword by its source spelling.
    pub fn parse(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "short" => Keyword::Short,
            "char" => Keyword::Char,
            "long" => Keyword::Long,
            "void" => Keyword::Void,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            _ => return None,
        })
    }

    /// Source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Short => "short",
            Keyword::Char => "char",
            Keyword::Long => "long",
            Keyword::Void => "void",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// A reserved word.
    Keyword(Keyword),
    /// An identifier.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    IntLit(i64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "'{}'", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::IntLit(v) => write!(f, "integer {v}"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Percent => f.write_str("'%'"),
            TokenKind::Amp => f.write_str("'&'"),
            TokenKind::Pipe => f.write_str("'|'"),
            TokenKind::Caret => f.write_str("'^'"),
            TokenKind::Tilde => f.write_str("'~'"),
            TokenKind::Bang => f.write_str("'!'"),
            TokenKind::Shl => f.write_str("'<<'"),
            TokenKind::Shr => f.write_str("'>>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::EqEq => f.write_str("'=='"),
            TokenKind::Ne => f.write_str("'!='"),
            TokenKind::AmpAmp => f.write_str("'&&'"),
            TokenKind::PipePipe => f.write_str("'||'"),
            TokenKind::Assign => f.write_str("'='"),
            TokenKind::PlusAssign => f.write_str("'+='"),
            TokenKind::MinusAssign => f.write_str("'-='"),
            TokenKind::StarAssign => f.write_str("'*='"),
            TokenKind::ShlAssign => f.write_str("'<<='"),
            TokenKind::ShrAssign => f.write_str("'>>='"),
            TokenKind::AmpAssign => f.write_str("'&='"),
            TokenKind::PipeAssign => f.write_str("'|='"),
            TokenKind::CaretAssign => f.write_str("'^='"),
            TokenKind::PlusPlus => f.write_str("'++'"),
            TokenKind::MinusMinus => f.write_str("'--'"),
            TokenKind::Question => f.write_str("'?'"),
            TokenKind::Colon => f.write_str("':'"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::LBrace => f.write_str("'{'"),
            TokenKind::RBrace => f.write_str("'}'"),
            TokenKind::LBracket => f.write_str("'['"),
            TokenKind::RBracket => f.write_str("']'"),
            TokenKind::Semi => f.write_str("';'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::Short,
            Keyword::Char,
            Keyword::Long,
            Keyword::Void,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::Do,
            Keyword::For,
            Keyword::Return,
            Keyword::Break,
            Keyword::Continue,
        ] {
            assert_eq!(Keyword::parse(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::parse("float"), None);
    }

    #[test]
    fn span_merge_orders_endpoints() {
        let a = Span::new(10, 14, 2, 3);
        let b = Span::new(2, 6, 1, 1);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line, m.col), (2, 14, 1, 1));
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Keyword(Keyword::For).to_string(), "'for'");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier 'x'");
        assert_eq!(TokenKind::Shl.to_string(), "'<<'");
    }
}
