//! IR → CDFG conversion (step 1 of the paper's Figure 2 flow).
//!
//! Every IR basic block becomes one [`BasicBlock`] whose [`Dfg`] captures
//! the true data dependencies of the straight-line code:
//!
//! * scalar reads of values produced outside the block become `LiveIn`
//!   boundary nodes (one per variable);
//! * values that are live out of the block (or feed the block's branch)
//!   get `LiveOut` boundary nodes;
//! * constants become shared `Const` nodes;
//! * `Copy` instructions vanish — they only alias value nodes;
//! * array accesses get memory-ordering edges per array (load→store WAR,
//!   store→load RAW, store→store WAW) so no schedule can reorder
//!   conflicting accesses. A symbolic base+offset disambiguator prunes
//!   edges between accesses that provably touch different elements
//!   (`a[i]` vs `a[i + 1]`, or distinct constant indices), which is what
//!   lets hand-unrolled DSP bodies (FFT butterfly pairs, fast-DCT
//!   columns) schedule in parallel on the CGC datapath.

use crate::ir::{ArrayRef, Function, Instr, IrProgram, Operand, Terminator, VarId};
use crate::liveness::Liveness;
use amdrel_cdfg::{BasicBlock, Cdfg, Dfg, DfgNode, NodeId, OpKind};
use std::collections::HashMap;

/// Convert a lowered program into the CDFG consumed by the partitioning
/// flow. Block indices are preserved: IR block `i` becomes CDFG `bb i`.
///
/// # Panics
///
/// Panics only on malformed IR (dangling block indices), which the
/// frontend pipeline cannot produce.
pub fn program_to_cdfg(ir: &IrProgram) -> Cdfg {
    let f = &ir.entry;
    let liveness = Liveness::compute(f);
    let mut cdfg = Cdfg::new(f.name.clone());
    for (i, block) in f.blocks.iter().enumerate() {
        let dfg = block_to_dfg(ir, f, i, &liveness);
        cdfg.add_block(BasicBlock::from_dfg(block.label.clone(), dfg));
    }
    for (i, block) in f.blocks.iter().enumerate() {
        for s in block.successors() {
            cdfg.add_edge(amdrel_cdfg::BlockId(i as u32), amdrel_cdfg::BlockId(s.0))
                .expect("IR successors are in range");
        }
    }
    cdfg
}

fn array_name(ir: &IrProgram, f: &Function, array: ArrayRef) -> String {
    match array {
        ArrayRef::Global(g) => ir.globals[g as usize].name.clone(),
        ArrayRef::Local(a) => f.arrays[a as usize].name.clone(),
    }
}

fn array_bits(ir: &IrProgram, f: &Function, array: ArrayRef) -> u16 {
    match array {
        ArrayRef::Global(g) => ir.globals[g as usize].bits,
        ArrayRef::Local(a) => f.arrays[a as usize].bits,
    }
}

/// Symbolic address: a base value plus a constant byte-free element
/// offset. Two addresses with the same base and different offsets are
/// provably distinct; anything else may alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SymAddr {
    base: SymBase,
    offset: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymBase {
    /// A pure constant index (base "zero").
    Zero,
    /// A value flowing into the block.
    LiveVar(VarId),
    /// A value defined by instruction `n` of this block (opaque root).
    Def(usize),
}

impl SymAddr {
    /// Whether two addresses may refer to the same element.
    fn may_alias(self, other: SymAddr) -> bool {
        if self.base == other.base {
            self.offset == other.offset
        } else {
            true // different symbolic bases: no range info, stay safe
        }
    }
}

struct DfgBuilder<'a> {
    ir: &'a IrProgram,
    f: &'a Function,
    dfg: Dfg,
    /// Current defining node per variable (within the block).
    def: HashMap<VarId, NodeId>,
    /// Current symbolic value per variable (within the block).
    sym: HashMap<VarId, SymAddr>,
    /// Shared constant nodes per value.
    consts: HashMap<i64, NodeId>,
    /// Shared live-in nodes per variable.
    live_ins: HashMap<VarId, NodeId>,
    /// Outstanding memory accesses per array: `(node, address)` of every
    /// store and load so far, for pairwise disambiguation.
    stores: HashMap<ArrayRef, Vec<(NodeId, SymAddr)>>,
    loads: HashMap<ArrayRef, Vec<(NodeId, SymAddr)>>,
    /// Monotone counter used to mint opaque [`SymBase::Def`] roots.
    instr_pos: usize,
}

impl<'a> DfgBuilder<'a> {
    fn operand(&mut self, op: Operand) -> NodeId {
        match op {
            Operand::Const(c) => {
                if let Some(&n) = self.consts.get(&c) {
                    return n;
                }
                let n = self
                    .dfg
                    .add_node(DfgNode::with_label(OpKind::Const, 32, c.to_string()));
                self.consts.insert(c, n);
                n
            }
            Operand::Var(v) => {
                if let Some(&n) = self.def.get(&v) {
                    return n;
                }
                if let Some(&n) = self.live_ins.get(&v) {
                    return n;
                }
                let info = self.f.var(v);
                let n = self.dfg.add_node(DfgNode::with_label(
                    OpKind::LiveIn,
                    info.bits,
                    info.name.clone(),
                ));
                self.live_ins.insert(v, n);
                n
            }
        }
    }

    fn link(&mut self, from: NodeId, to: NodeId) {
        self.dfg
            .add_edge(from, to)
            .expect("builder edges are in range and never self-loops");
    }

    /// The symbolic value of an operand at the current program point.
    fn sym_of(&self, op: Operand) -> SymAddr {
        match op {
            Operand::Const(c) => SymAddr {
                base: SymBase::Zero,
                offset: c,
            },
            Operand::Var(v) => self.sym.get(&v).copied().unwrap_or(SymAddr {
                base: SymBase::LiveVar(v),
                offset: 0,
            }),
        }
    }

    fn fresh_root(&mut self) -> SymAddr {
        SymAddr {
            base: SymBase::Def(self.instr_pos),
            offset: 0,
        }
    }

    fn instr(&mut self, instr: &Instr) {
        self.instr_pos += 1;
        match instr {
            Instr::Bin { op, dst, lhs, rhs } => {
                let l = self.operand(*lhs);
                let r = self.operand(*rhs);
                // Symbolic tracking of ± constant for disambiguation.
                let sym = match op {
                    crate::ast::BinOp::Add => match (self.sym_of(*lhs), self.sym_of(*rhs)) {
                        (a, b) if b.base == SymBase::Zero => SymAddr {
                            base: a.base,
                            offset: a.offset.wrapping_add(b.offset),
                        },
                        (a, b) if a.base == SymBase::Zero => SymAddr {
                            base: b.base,
                            offset: b.offset.wrapping_add(a.offset),
                        },
                        _ => self.fresh_root(),
                    },
                    crate::ast::BinOp::Sub => {
                        let (a, b) = (self.sym_of(*lhs), self.sym_of(*rhs));
                        if b.base == SymBase::Zero {
                            SymAddr {
                                base: a.base,
                                offset: a.offset.wrapping_sub(b.offset),
                            }
                        } else {
                            self.fresh_root()
                        }
                    }
                    _ => self.fresh_root(),
                };
                self.sym.insert(*dst, sym);
                let kind = bin_opkind(*op);
                let bits = self.f.var(*dst).bits;
                let n = self.dfg.add_node(DfgNode::with_label(
                    kind,
                    bits,
                    self.f.var(*dst).name.clone(),
                ));
                self.link(l, n);
                self.link(r, n);
                self.def.insert(*dst, n);
            }
            Instr::Un { op, dst, src } => {
                let s = self.operand(*src);
                let kind = match op {
                    crate::ast::UnOp::Neg => OpKind::Neg,
                    crate::ast::UnOp::BitNot => OpKind::Not,
                    crate::ast::UnOp::LogicalNot => OpKind::Eq, // !x ≡ x == 0 (lowered already; defensive)
                };
                let sym = self.fresh_root();
                self.sym.insert(*dst, sym);
                let bits = self.f.var(*dst).bits;
                let n = self.dfg.add_node(DfgNode::with_label(
                    kind,
                    bits,
                    self.f.var(*dst).name.clone(),
                ));
                self.link(s, n);
                self.def.insert(*dst, n);
            }
            Instr::Copy { dst, src } => {
                let s = self.operand(*src);
                let sym = self.sym_of(*src);
                self.sym.insert(*dst, sym);
                // Copies don't exist in hardware: alias the value node.
                self.def.insert(*dst, s);
            }
            Instr::Load { dst, array, index } => {
                let idx = self.operand(*index);
                let addr = self.sym_of(*index);
                let bits = array_bits(self.ir, self.f, *array);
                let n = self.dfg.add_node(DfgNode::with_label(
                    OpKind::Load,
                    bits,
                    array_name(self.ir, self.f, *array),
                ));
                self.link(idx, n);
                // RAW: order after every may-aliasing earlier store.
                let raw: Vec<NodeId> = self
                    .stores
                    .get(array)
                    .map(|stores| {
                        stores
                            .iter()
                            .filter(|(_, a)| a.may_alias(addr))
                            .map(|&(s, _)| s)
                            .collect()
                    })
                    .unwrap_or_default();
                for s in raw {
                    self.link(s, n);
                }
                self.loads.entry(*array).or_default().push((n, addr));
                let sym = self.fresh_root();
                self.sym.insert(*dst, sym);
                self.def.insert(*dst, n);
            }
            Instr::Store {
                array,
                index,
                value,
            } => {
                let idx = self.operand(*index);
                let val = self.operand(*value);
                let addr = self.sym_of(*index);
                let bits = array_bits(self.ir, self.f, *array);
                let n = self.dfg.add_node(DfgNode::with_label(
                    OpKind::Store,
                    bits,
                    array_name(self.ir, self.f, *array),
                ));
                self.link(idx, n);
                self.link(val, n);
                // WAW: after may-aliasing earlier stores.
                let waw: Vec<NodeId> = self
                    .stores
                    .get(array)
                    .map(|stores| {
                        stores
                            .iter()
                            .filter(|(_, a)| a.may_alias(addr))
                            .map(|&(s, _)| s)
                            .collect()
                    })
                    .unwrap_or_default();
                for s in waw {
                    self.link(s, n);
                }
                // WAR: after may-aliasing earlier loads.
                let war: Vec<NodeId> = self
                    .loads
                    .get(array)
                    .map(|loads| {
                        loads
                            .iter()
                            .filter(|(_, a)| a.may_alias(addr))
                            .map(|&(l, _)| l)
                            .collect()
                    })
                    .unwrap_or_default();
                for l in war {
                    if l != n {
                        self.link(l, n);
                    }
                }
                self.stores.entry(*array).or_default().push((n, addr));
            }
        }
    }
}

fn bin_opkind(op: crate::ast::BinOp) -> OpKind {
    use crate::ast::BinOp::*;
    match op {
        Add => OpKind::Add,
        Sub => OpKind::Sub,
        Mul => OpKind::Mul,
        Div => OpKind::Div,
        Rem => OpKind::Rem,
        And => OpKind::And,
        Or => OpKind::Or,
        Xor => OpKind::Xor,
        Shl => OpKind::Shl,
        Shr => OpKind::Shr,
        Lt => OpKind::Lt,
        Le => OpKind::Le,
        Gt => OpKind::Gt,
        Ge => OpKind::Ge,
        Eq => OpKind::Eq,
        Ne => OpKind::Ne,
    }
}

fn block_to_dfg(ir: &IrProgram, f: &Function, block_idx: usize, liveness: &Liveness) -> Dfg {
    let block = &f.blocks[block_idx];
    let mut b = DfgBuilder {
        ir,
        f,
        dfg: Dfg::new(block.label.clone()),
        def: HashMap::new(),
        sym: HashMap::new(),
        consts: HashMap::new(),
        live_ins: HashMap::new(),
        stores: HashMap::new(),
        loads: HashMap::new(),
        instr_pos: 0,
    };
    for instr in &block.instrs {
        b.instr(instr);
    }

    // Publish live-out values: anything defined here and live on exit.
    let mut outs: Vec<VarId> = liveness
        .live_out(block_idx)
        .iter()
        .copied()
        .filter(|v| b.def.contains_key(v))
        .collect();
    outs.sort(); // deterministic node order
    for v in outs {
        let src = b.def[&v];
        // A live-out that aliases a live-in (pure pass-through copy) moves
        // no new data; skip it.
        if b.dfg.node(src).kind == OpKind::LiveIn {
            continue;
        }
        let info = f.var(v);
        let out = b.dfg.add_node(DfgNode::with_label(
            OpKind::LiveOut,
            info.bits,
            info.name.clone(),
        ));
        b.link(src, out);
    }

    // The branch condition leaves the datapath toward the sequencer when it
    // is computed in this block.
    if let Terminator::Branch {
        cond: Operand::Var(v),
        ..
    } = block.term
    {
        if let Some(&src) = b.def.get(&v) {
            if b.dfg.node(src).kind != OpKind::LiveIn {
                let out = b.dfg.add_node(DfgNode::with_label(
                    OpKind::LiveOut,
                    1,
                    format!("{}?", f.var(v).name),
                ));
                b.link(src, out);
            }
        }
    }
    // Returned value leaves the block too.
    if let Terminator::Return(Some(Operand::Var(v))) = block.term {
        if let Some(&src) = b.def.get(&v) {
            if b.dfg.node(src).kind != OpKind::LiveIn {
                let out = b.dfg.add_node(DfgNode::with_label(
                    OpKind::LiveOut,
                    f.var(v).bits,
                    format!("ret {}", f.var(v).name),
                ));
                b.link(src, out);
            }
        }
    }
    b.dfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use amdrel_cdfg::OpClass;

    #[test]
    fn straight_line_block_structure() {
        let c = compile(
            "int main() { int x = 3; int y = x * 4; return y + 1; }",
            "main",
        )
        .unwrap();
        let cdfg = &c.cdfg;
        assert_eq!(cdfg.len(), 1);
        let dfg = &cdfg.block(cdfg.entry()).dfg;
        // const 3 aliased into x (copy), mul, const 4, add, const 1,
        // live-out for the returned value.
        let hist = dfg.class_histogram();
        assert_eq!(hist.get(&OpClass::Mul), Some(&1));
        assert_eq!(hist.get(&OpClass::Alu), Some(&1));
        assert_eq!(dfg.live_out_count(), 1);
    }

    #[test]
    fn copies_are_transparent() {
        let c = compile(
            "int main() { int a = 5; int b = a; int d = b; return d; }",
            "main",
        )
        .unwrap();
        let dfg = &c.cdfg.block(c.cdfg.entry()).dfg;
        // No ALU work at all: just const + live-out of the returned const.
        assert_eq!(dfg.op_count(), 0);
    }

    #[test]
    fn loop_body_live_in_out() {
        let c = compile(
            "int main() { int s = 0; for (int i = 0; i < 8; i++) { s = s + i; } return s; }",
            "main",
        )
        .unwrap();
        // Find the body block (contains the accumulating add).
        let body = c
            .cdfg
            .iter()
            .find(|(_, b)| {
                b.dfg
                    .iter()
                    .any(|(_, n)| n.kind == OpKind::Add && n.label.as_deref() == Some("s"))
            })
            .map(|(id, _)| id)
            .expect("body block with s = s + i");
        let bb = c.cdfg.block(body);
        // s and i flow in; s (at least) flows out.
        assert!(bb.live_in >= 2, "expected ≥2 live-ins, got {}", bb.live_in);
        assert!(bb.live_out >= 1);
    }

    #[test]
    fn memory_ordering_edges_exist() {
        let c = compile(
            "int a[8]; int main() { int i = 1; a[i] = 10; int x = a[i]; a[i] = x + 1; return a[i]; }",
            "main",
        )
        .unwrap();
        let dfg = &c.cdfg.block(c.cdfg.entry()).dfg;
        // store → load (RAW), load → store (WAR), store → store (WAW via chain)
        let stores: Vec<_> = dfg
            .iter()
            .filter(|(_, n)| n.kind == OpKind::Store)
            .map(|(id, _)| id)
            .collect();
        let loads: Vec<_> = dfg
            .iter()
            .filter(|(_, n)| n.kind == OpKind::Load)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(stores.len(), 2);
        assert_eq!(loads.len(), 2);
        // First store must reach the first load.
        assert!(dfg.succs(stores[0]).contains(&loads[0]));
        // The load between the stores must precede the second store.
        assert!(dfg.succs(loads[0]).contains(&stores[1]));
        // Whole DFG stays acyclic.
        assert!(dfg.validate().is_ok());
    }

    #[test]
    fn different_arrays_do_not_serialize() {
        let c = compile(
            "int a[4]; int b[4]; int main() { a[0] = 1; b[0] = 2; return a[0] + b[0]; }",
            "main",
        )
        .unwrap();
        let dfg = &c.cdfg.block(c.cdfg.entry()).dfg;
        let stores: Vec<_> = dfg
            .iter()
            .filter(|(_, n)| n.kind == OpKind::Store)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(stores.len(), 2);
        // No ordering edge between stores to different arrays.
        assert!(!dfg.succs(stores[0]).contains(&stores[1]));
        assert!(!dfg.succs(stores[1]).contains(&stores[0]));
    }

    #[test]
    fn constants_are_shared() {
        let c = compile(
            "int main() { int a = 7 + 1; int b = a * 8; int d = b - 8; return d; }",
            "main",
        )
        .unwrap();
        let dfg = &c.cdfg.block(c.cdfg.entry()).dfg;
        let const8 = dfg
            .iter()
            .filter(|(_, n)| n.kind == OpKind::Const && n.label.as_deref() == Some("8"))
            .count();
        assert_eq!(const8, 1, "the two uses of 8 must share one const node");
    }

    #[test]
    fn branch_condition_gets_live_out() {
        let c = compile(
            "int main() { int x = 3; int y = 0; if (x > 2) { y = 1; } return y; }",
            "main",
        )
        .unwrap();
        // The block computing x > 2 must own a LiveOut labelled with '?'.
        let found = c.cdfg.iter().any(|(_, b)| {
            b.dfg.iter().any(|(_, n)| {
                n.kind == OpKind::LiveOut && n.label.as_deref().is_some_and(|l| l.ends_with('?'))
            })
        });
        assert!(found);
    }

    #[test]
    fn cdfg_block_indices_mirror_ir() {
        let c = compile(
            "int main() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }",
            "main",
        )
        .unwrap();
        assert_eq!(c.ir.entry.blocks.len(), c.cdfg.len());
        for (i, b) in c.ir.entry.blocks.iter().enumerate() {
            assert_eq!(b.label, c.cdfg.block(amdrel_cdfg::BlockId(i as u32)).label);
        }
    }
}
