//! Whole-program function inlining.
//!
//! The partitioning methodology operates on one flat CDFG of the
//! application, so every call is inlined into the entry function (sema
//! has already rejected recursion). Functions are processed callees-first;
//! inlining one call splices a variable- and block-remapped copy of the
//! callee's CFG into the caller and rewrites `return`s into jumps to the
//! continuation block.

use crate::ir::{BlockIdx, Function, Instr, Operand, Terminator, VarId, VarInfo};
use crate::lower::{HBlock, HFunction, HInstr};
use crate::token::Span;
use crate::CompileError;
use std::collections::HashMap;

/// Inline all calls, producing the final call-free entry [`Function`].
///
/// # Errors
///
/// [`CompileError`] if the entry function is missing or a callee cannot be
/// resolved (both normally excluded by sema).
pub(crate) fn inline_program(
    functions: Vec<HFunction>,
    entry: &str,
) -> Result<Function, CompileError> {
    let order = topo_order(&functions, entry)?;
    // Inline callees-first so each inline step splices call-free bodies.
    let mut done: HashMap<String, HFunction> = HashMap::new();
    for idx in order {
        let mut f = functions[idx].clone();
        inline_calls(&mut f, &done)?;
        done.insert(f.name.clone(), f);
    }
    let entry_fn = done.remove(entry).ok_or_else(|| {
        CompileError::new(
            format!("entry function '{entry}' not found"),
            Span::default(),
        )
    })?;
    finalize(entry_fn).map_err(|callee| {
        CompileError::new(
            format!("unresolved call to '{callee}' after inlining"),
            Span::default(),
        )
    })
}

/// Callees-before-callers order over the call graph (recursion already
/// rejected by sema; a cycle here is a bug).
fn topo_order(functions: &[HFunction], entry: &str) -> Result<Vec<usize>, CompileError> {
    let index: HashMap<&str, usize> = functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut order = Vec::new();
    let mut state = vec![0u8; functions.len()]; // 0 white, 1 gray, 2 black
    fn visit(
        i: usize,
        functions: &[HFunction],
        index: &HashMap<&str, usize>,
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) -> Result<(), CompileError> {
        if state[i] == 2 {
            return Ok(());
        }
        if state[i] == 1 {
            return Err(CompileError::new(
                format!("recursive call cycle through '{}'", functions[i].name),
                Span::default(),
            ));
        }
        state[i] = 1;
        for b in &functions[i].blocks {
            for instr in &b.instrs {
                if let HInstr::Call { callee, .. } = instr {
                    if let Some(&j) = index.get(callee.as_str()) {
                        visit(j, functions, index, state, order)?;
                    }
                }
            }
        }
        state[i] = 2;
        order.push(i);
        Ok(())
    }
    // Visit everything reachable from the entry (plus the rest, so library
    // functions still get checked), entry last.
    if let Some(&e) = index.get(entry) {
        visit(e, functions, &index, &mut state, &mut order)?;
    }
    for i in 0..functions.len() {
        visit(i, functions, &index, &mut state, &mut order)?;
    }
    Ok(order)
}

/// Replace every call in `f` with a spliced copy of the (already call-free)
/// callee from `done`.
fn inline_calls(f: &mut HFunction, done: &HashMap<String, HFunction>) -> Result<(), CompileError> {
    loop {
        // Find the first remaining call.
        let mut site = None;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, instr) in b.instrs.iter().enumerate() {
                if matches!(instr, HInstr::Call { .. }) {
                    site = Some((bi, ii));
                    break 'outer;
                }
            }
        }
        let Some((bi, ii)) = site else {
            return Ok(());
        };

        let HInstr::Call { dst, callee, args } = f.blocks[bi].instrs[ii].clone() else {
            unreachable!("site points at a call");
        };
        let callee_fn = done.get(&callee).ok_or_else(|| {
            CompileError::new(
                format!("call to unknown function '{callee}'"),
                Span::default(),
            )
        })?;

        // --- allocate remapped variables and arrays for the callee copy.
        let var_base = f.vars.len() as u32;
        for v in &callee_fn.vars {
            f.vars.push(VarInfo {
                name: format!("{}::{}", callee, v.name),
                bits: v.bits,
                is_temp: v.is_temp,
            });
        }
        let array_base = f.arrays.len() as u32;
        for a in &callee_fn.arrays {
            let mut a = a.clone();
            a.name = format!("{}::{}", callee, a.name);
            f.arrays.push(a);
        }
        let remap_var = |v: VarId| VarId(v.0 + var_base);
        let remap_operand = |o: Operand| match o {
            Operand::Var(v) => Operand::Var(remap_var(v)),
            c => c,
        };
        let remap_array = |a: crate::ir::ArrayRef| match a {
            crate::ir::ArrayRef::Local(i) => crate::ir::ArrayRef::Local(i + array_base),
            g => g,
        };

        // --- split the call block.
        let post_idx = BlockIdx(f.blocks.len() as u32);
        let tail: Vec<HInstr> = f.blocks[bi].instrs.split_off(ii + 1);
        f.blocks[bi].instrs.pop(); // drop the call itself
        let post = HBlock {
            label: format!("{}.cont", f.blocks[bi].label),
            instrs: tail,
            term: f.blocks[bi].term.clone(),
        };
        f.blocks.push(post);

        // --- parameter marshalling in the caller block.
        for (p, a) in callee_fn.params.iter().zip(args.iter()) {
            f.blocks[bi].instrs.push(HInstr::Real(Instr::Copy {
                dst: remap_var(*p),
                src: *a,
            }));
        }

        // --- splice remapped callee blocks.
        let block_base = f.blocks.len() as u32;
        let remap_block = |b: BlockIdx| BlockIdx(b.0 + block_base);
        for cb in &callee_fn.blocks {
            let instrs = cb
                .instrs
                .iter()
                .map(|instr| match instr {
                    HInstr::Real(i) => {
                        HInstr::Real(remap_instr(i, &remap_operand, &remap_var, &remap_array))
                    }
                    HInstr::Call { .. } => {
                        unreachable!("callee '{callee}' still contains calls")
                    }
                })
                .collect();
            let term = match &cb.term {
                Terminator::Jump(t) => Terminator::Jump(remap_block(*t)),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => Terminator::Branch {
                    cond: remap_operand(*cond),
                    then_bb: remap_block(*then_bb),
                    else_bb: remap_block(*else_bb),
                },
                Terminator::Return(val) => {
                    // Return becomes: copy into dst (if any), jump to post.
                    // The copy is emitted into the block itself below.
                    Terminator::Return(val.as_ref().map(|v| remap_operand(*v)))
                }
            };
            f.blocks.push(HBlock {
                label: format!("{}@{}", callee, cb.label),
                instrs,
                term,
            });
        }
        // Rewrite spliced returns into copies + jumps.
        for b in f.blocks[block_base as usize..].iter_mut() {
            if let Terminator::Return(val) = b.term.clone() {
                if let (Some(d), Some(v)) = (dst, val) {
                    b.instrs.push(HInstr::Real(Instr::Copy { dst: d, src: v }));
                }
                b.term = Terminator::Jump(post_idx);
            }
        }
        // Enter the callee.
        f.blocks[bi].term = Terminator::Jump(BlockIdx(block_base));
    }
}

fn remap_instr(
    i: &Instr,
    remap_operand: &impl Fn(Operand) -> Operand,
    remap_var: &impl Fn(VarId) -> VarId,
    remap_array: &impl Fn(crate::ir::ArrayRef) -> crate::ir::ArrayRef,
) -> Instr {
    match i {
        Instr::Bin { op, dst, lhs, rhs } => Instr::Bin {
            op: *op,
            dst: remap_var(*dst),
            lhs: remap_operand(*lhs),
            rhs: remap_operand(*rhs),
        },
        Instr::Un { op, dst, src } => Instr::Un {
            op: *op,
            dst: remap_var(*dst),
            src: remap_operand(*src),
        },
        Instr::Copy { dst, src } => Instr::Copy {
            dst: remap_var(*dst),
            src: remap_operand(*src),
        },
        Instr::Load { dst, array, index } => Instr::Load {
            dst: remap_var(*dst),
            array: remap_array(*array),
            index: remap_operand(*index),
        },
        Instr::Store {
            array,
            index,
            value,
        } => Instr::Store {
            array: remap_array(*array),
            index: remap_operand(*index),
            value: remap_operand(*value),
        },
    }
}

/// Convert a call-free [`HFunction`] into the public [`Function`].
/// Returns `Err(callee_name)` if a call remains.
fn finalize(f: HFunction) -> Result<Function, String> {
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for b in f.blocks {
        let mut instrs = Vec::with_capacity(b.instrs.len());
        for i in b.instrs {
            match i {
                HInstr::Real(i) => instrs.push(i),
                HInstr::Call { callee, .. } => return Err(callee),
            }
        }
        blocks.push(crate::ir::Block {
            label: b.label,
            instrs,
            term: b.term,
        });
    }
    Ok(Function {
        name: f.name,
        params: f.params,
        vars: f.vars,
        arrays: f.arrays,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lower::lower_functions;
    use crate::parser::parse;

    fn inline_src(src: &str) -> Function {
        let ast = parse(&lex(src).unwrap()).unwrap();
        crate::sema::check(&ast, "main").unwrap();
        let (_, fns) = lower_functions(&ast).unwrap();
        inline_program(fns, "main").unwrap()
    }

    #[test]
    fn simple_call_is_inlined() {
        let f = inline_src("int add1(int x) { return x + 1; } int main() { return add1(41); }");
        assert_eq!(f.name, "main");
        // No calls can remain by construction (finalize would have failed).
        // The callee body must appear: look for the x+1 add on a remapped var.
        let has_add = f.blocks.iter().any(|b| {
            b.instrs.iter().any(|i| {
                matches!(
                    i,
                    Instr::Bin {
                        op: crate::ast::BinOp::Add,
                        ..
                    }
                )
            })
        });
        assert!(has_add);
        // Callee variables are prefixed.
        assert!(f.vars.iter().any(|v| v.name.starts_with("add1::")));
    }

    #[test]
    fn nested_calls_inline_transitively() {
        let f = inline_src(
            "int a(int x) { return x * 2; }\n             int b(int x) { return a(x) + 3; }\n             int main() { return b(5); }",
        );
        assert!(f.vars.iter().any(|v| v.name.contains("a::")));
        assert!(f.vars.iter().any(|v| v.name.contains("b::")));
    }

    #[test]
    fn two_calls_to_same_function_get_distinct_copies() {
        let f = inline_src("int sq(int x) { return x * x; } int main() { return sq(2) + sq(3); }");
        let copies = f.vars.iter().filter(|v| v.name == "sq::x").count();
        assert_eq!(copies, 2, "each call site gets its own parameter copy");
    }

    #[test]
    fn void_call_statement_inlines() {
        let f = inline_src(
            "int acc[2]; void bump() { acc[0] = acc[0] + 1; } int main() { bump(); bump(); return acc[0]; }",
        );
        let stores = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn callee_with_loop_keeps_loop_structure() {
        let f = inline_src(
            "int sum(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }\n             int main() { return sum(10); }",
        );
        // A back edge must exist: some block jumps to an earlier block.
        let mut has_back = false;
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.successors() {
                if s.index() <= i {
                    has_back = true;
                }
            }
        }
        assert!(has_back, "inlined loop lost its back edge");
    }

    #[test]
    fn callee_local_arrays_are_remapped() {
        let f = inline_src(
            "int work() { int buf[4]; buf[1] = 5; return buf[1]; } int main() { return work() + work(); }",
        );
        assert_eq!(f.arrays.len(), 2);
        assert!(f.arrays.iter().all(|a| a.name == "work::buf"));
    }

    #[test]
    fn early_return_in_callee_joins_continuation() {
        let f = inline_src(
            "int clamp(int x) { if (x > 10) { return 10; } return x; }\n             int main() { return clamp(99) + 1; }",
        );
        // Exactly one block should return (main's), all callee returns
        // became jumps.
        let returns = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Return(_)))
            .count();
        // main has its own fall-off return block too; at least one, and no
        // callee-labeled block may return.
        assert!(returns >= 1);
        for b in &f.blocks {
            if b.label.starts_with("clamp@") {
                assert!(
                    !matches!(b.term, Terminator::Return(_)),
                    "callee block {} still returns",
                    b.label
                );
            }
        }
    }
}
