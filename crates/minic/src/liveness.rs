//! Per-block scalar liveness (backward dataflow).
//!
//! The CDFG conversion uses liveness to place `LiveOut` boundary nodes —
//! the values a basic block must publish to the shared data memory. Those
//! counts feed `t_comm` in the partitioning engine's eq. (2), so liveness
//! here directly shapes the communication cost of moving a kernel to the
//! coarse-grain datapath.

use crate::ir::{Function, Instr, Operand, Terminator, VarId};
use std::collections::HashSet;

/// Live-variable sets for every block of a [`Function`].
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<VarId>>,
    live_out: Vec<HashSet<VarId>>,
    defs: Vec<HashSet<VarId>>,
    uses: Vec<HashSet<VarId>>,
}

fn operand_use(op: Operand, set: &mut HashSet<VarId>, defs: &HashSet<VarId>) {
    if let Operand::Var(v) = op {
        if !defs.contains(&v) {
            set.insert(v);
        }
    }
}

impl Liveness {
    /// Compute liveness for `f` with the standard iterative backward
    /// dataflow over `use`/`def` sets.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let (u, d) = (&mut uses[i], &mut defs[i]);
            for instr in &b.instrs {
                match instr {
                    Instr::Bin { dst, lhs, rhs, .. } => {
                        operand_use(*lhs, u, d);
                        operand_use(*rhs, u, d);
                        d.insert(*dst);
                    }
                    Instr::Un { dst, src, .. } => {
                        operand_use(*src, u, d);
                        d.insert(*dst);
                    }
                    Instr::Copy { dst, src } => {
                        operand_use(*src, u, d);
                        d.insert(*dst);
                    }
                    Instr::Load { dst, index, .. } => {
                        operand_use(*index, u, d);
                        d.insert(*dst);
                    }
                    Instr::Store { index, value, .. } => {
                        operand_use(*index, u, d);
                        operand_use(*value, u, d);
                    }
                }
            }
            match &b.term {
                Terminator::Branch { cond, .. } => operand_use(*cond, u, d),
                Terminator::Return(Some(v)) => operand_use(*v, u, d),
                _ => {}
            }
        }

        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse index order for faster convergence.
            for i in (0..n).rev() {
                let mut out: HashSet<VarId> = HashSet::new();
                for s in f.blocks[i].successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = uses[i].clone();
                for v in out.iter() {
                    if !defs[i].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            defs,
            uses,
        }
    }

    /// Variables live on entry to block `i`.
    pub fn live_in(&self, i: usize) -> &HashSet<VarId> {
        &self.live_in[i]
    }

    /// Variables live on exit from block `i`.
    pub fn live_out(&self, i: usize) -> &HashSet<VarId> {
        &self.live_out[i]
    }

    /// Variables defined in block `i`.
    pub fn defs(&self, i: usize) -> &HashSet<VarId> {
        &self.defs[i]
    }

    /// Variables used before definition in block `i`.
    pub fn upward_uses(&self, i: usize) -> &HashSet<VarId> {
        &self.uses[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ir;

    fn liveness_of(src: &str) -> (crate::ir::IrProgram, Liveness) {
        let ir = compile_to_ir(src, "main").unwrap();
        let lv = Liveness::compute(&ir.entry);
        (ir, lv)
    }

    fn var_named(f: &Function, name: &str) -> VarId {
        VarId(
            f.vars
                .iter()
                .position(|v| v.name == name)
                .unwrap_or_else(|| panic!("no var {name}")) as u32,
        )
    }

    #[test]
    fn loop_counter_live_around_loop() {
        let (ir, lv) = liveness_of(
            "int main() { int s = 0; for (int i = 0; i < 8; i++) { s = s + i; } return s; }",
        );
        let f = &ir.entry;
        let s = var_named(f, "s");
        let i = var_named(f, "i");
        // Find the loop-body block: it uses both s and i.
        let body = (0..f.blocks.len())
            .find(|&b| lv.upward_uses(b).contains(&s) && lv.upward_uses(b).contains(&i))
            .expect("body block");
        assert!(lv.live_in(body).contains(&s));
        assert!(lv.live_out(body).contains(&s));
        assert!(lv.live_out(body).contains(&i), "i feeds the step/cond");
    }

    #[test]
    fn dead_value_not_live_out() {
        let (ir, lv) = liveness_of("int main() { int dead = 5; int x = 2; return x; }");
        let f = &ir.entry;
        let dead = var_named(f, "dead");
        for b in 0..f.blocks.len() {
            assert!(!lv.live_out(b).contains(&dead));
        }
    }

    #[test]
    fn branch_condition_is_a_use() {
        let (ir, lv) = liveness_of("int main() { int c = 1; if (c) { return 1; } return 0; }");
        let f = &ir.entry;
        let c = var_named(f, "c");
        // The block whose terminator branches on c must either define c or
        // have it live-in.
        let mut found = false;
        for (i, b) in f.blocks.iter().enumerate() {
            if let Terminator::Branch {
                cond: Operand::Var(v),
                ..
            } = b.term
            {
                if v == c {
                    found = true;
                    assert!(lv.defs(i).contains(&c) || lv.live_in(i).contains(&c));
                }
            }
        }
        assert!(found, "no branch on c found");
    }

    #[test]
    fn store_operands_are_uses() {
        let (ir, lv) =
            liveness_of("int a[4]; int main() { int v = 3; int i = 1; a[i] = v; return a[1]; }");
        let f = &ir.entry;
        let v = var_named(f, "v");
        // v is used (by the store) in the block where it's defined, so it's
        // in defs; since everything is one block after simplification,
        // upward_uses won't contain it. Check defs instead.
        let b0_defs = lv.defs(0);
        assert!(b0_defs.contains(&v));
    }
}
