//! # amdrel-minic — a C-subset frontend for the AMDREL partitioning flow
//!
//! The paper builds its prototype on SUIF2/MachineSUIF with custom passes
//! for CDFG creation, and on Lex for source-level analysis. This crate is
//! that substrate, rebuilt from scratch: a lexer, recursive-descent parser,
//! semantic checker, three-address lowering with full function inlining,
//! CFG simplification, liveness analysis, and conversion to the
//! [`amdrel_cdfg`] CDFG the rest of the flow consumes.
//!
//! ## The mini-C language
//!
//! A deliberately small C subset that covers integer DSP/multimedia kernels
//! (exactly the workload class the paper targets):
//!
//! * types: `char`/`short`/`int`/`long` scalars (8/16/32/64-bit width
//!   hints; evaluation is 64-bit two's complement) and 1-D arrays;
//! * global arrays with initialiser lists, local arrays without;
//! * functions with scalar parameters and scalar/`void` returns —
//!   **no recursion** (everything is inlined into one flat CDFG);
//! * statements: declarations, assignments (compound forms and `++`/`--`
//!   included), `if`/`else`, `while`, `do-while`, `for`, `break`,
//!   `continue`, `return`, call statements, braced blocks;
//! * expressions: full C integer operator set with C precedence,
//!   short-circuit `&&`/`||`, ternary `?:`, calls, array indexing;
//! * no pointers, structs, floats, casts, `switch`, or I/O.
//!
//! ## Pipeline
//!
//! ```text
//! source ──lex──► tokens ──parse──► AST ──sema──► (checked)
//!        ──lower──► per-function IR ──inline──► one flat Function
//!        ──simplify_cfg──► honest basic blocks ──to_cdfg──► Cdfg
//! ```
//!
//! # Examples
//!
//! ```
//! use amdrel_minic::compile;
//!
//! # fn main() -> Result<(), amdrel_minic::CompileError> {
//! let src = r#"
//!     int acc[4];
//!     int main() {
//!         int s = 0;
//!         for (int i = 0; i < 4; i++) {
//!             acc[i] = i * i;
//!             s += acc[i];
//!         }
//!         return s;
//!     }
//! "#;
//! let compiled = compile(src, "main")?;
//! assert!(compiled.cdfg.len() >= 3); // entry/loop blocks
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod inline;
pub mod ir;
pub mod lexer;
pub mod liveness;
mod lower;
pub mod opt;
pub mod parser;
pub mod sema;
pub mod to_cdfg;
pub mod token;

use crate::token::Span;
use amdrel_cdfg::Cdfg;
use std::fmt;

/// A fully-compiled program: the flat IR and its CDFG.
///
/// CDFG block `bb i` corresponds to IR block `L i` one-to-one, which is the
/// property that lets the profiler's execution counters annotate exactly
/// the blocks the partitioner moves.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The inlined, simplified IR (interpreted by the profiler).
    pub ir: ir::IrProgram,
    /// The CDFG handed to the partitioning flow.
    pub cdfg: Cdfg,
}

/// Compile mini-C source into a [`CompiledProgram`].
///
/// `entry` names the application's root function (usually `"main"`); it
/// must exist and take no parameters.
///
/// # Errors
///
/// Any lexical, syntactic or semantic error, as a [`CompileError`] carrying
/// the source position.
pub fn compile(src: &str, entry: &str) -> Result<CompiledProgram, CompileError> {
    let ir = compile_to_ir(src, entry)?;
    let cdfg = to_cdfg::program_to_cdfg(&ir);
    debug_assert!(cdfg.validate().is_ok());
    Ok(CompiledProgram { ir, cdfg })
}

/// Compile mini-C source down to the flat IR only (no CDFG conversion).
/// Exposed for the profiler and for tests that inspect IR structure.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_to_ir(src: &str, entry: &str) -> Result<ir::IrProgram, CompileError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    sema::check(&ast, entry)?;
    let (globals, functions) = lower::lower_functions(&ast)?;
    let mut entry_fn = inline::inline_program(functions, entry)?;
    opt::optimize(&mut entry_fn);
    Ok(ir::IrProgram {
        globals,
        entry: entry_fn,
    })
}

/// A compilation error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
    span: Span,
}

impl CompileError {
    /// A new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            message: message.into(),
            span,
        }
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The bare message without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_error_is_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CompileError>();
        let e = CompileError::new("boom", Span::new(0, 1, 3, 7));
        assert_eq!(e.to_string(), "3:7: boom");
    }

    #[test]
    fn end_to_end_compile_produces_matching_shapes() {
        let c = compile(
            "int main() { int x = 1; while (x < 10) { x = x * 3; } return x; }",
            "main",
        )
        .unwrap();
        assert_eq!(c.ir.entry.blocks.len(), c.cdfg.len());
        assert!(c.cdfg.validate().is_ok());
    }

    #[test]
    fn compile_rejects_bad_source() {
        assert!(compile("int main() { return q; }", "main").is_err());
        assert!(compile("int main() {", "main").is_err());
        assert!(compile("@", "main").is_err());
    }
}
