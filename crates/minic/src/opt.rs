//! CFG clean-up and dead-code elimination.
//!
//! Lowering and inlining create many empty "join"/"cont" blocks and the
//! occasional dead temporary. The paper counts basic blocks the way a
//! compiler's final CFG counts them (18 BBs for the OFDM transmitter, 22
//! for the JPEG encoder), and its static analysis counts the operations
//! real hardware would execute — so the flow runs [`simplify_cfg`] and
//! [`eliminate_dead_code`] before profiling/partitioning to get honest
//! block granularity and honest operation counts.

use crate::ir::{BlockIdx, Function, Instr, Terminator};
use crate::liveness::Liveness;

/// Simplify `f`'s CFG in place until a fixpoint:
///
/// 1. drop blocks unreachable from the entry;
/// 2. thread jumps through empty forwarding blocks;
/// 3. merge `a → b` when `a` ends in an unconditional jump and `b` has no
///    other predecessors;
/// 4. renumber blocks in reverse post-order (entry stays block 0).
pub fn simplify_cfg(f: &mut Function) {
    loop {
        let mut changed = false;
        changed |= remove_unreachable(f);
        changed |= thread_jumps(f);
        changed |= merge_chains(f);
        if !changed {
            break;
        }
    }
    renumber_rpo(f);
}

fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.blocks.is_empty() {
        return seen;
    }
    let mut stack = vec![BlockIdx(0)];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.blocks[b.index()].successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

fn remove_unreachable(f: &mut Function) -> bool {
    let seen = reachable(f);
    if seen.iter().all(|&s| s) {
        return false;
    }
    // Compact the block list and remap indices.
    let mut remap = vec![None; f.blocks.len()];
    let mut kept = Vec::with_capacity(f.blocks.len());
    for (i, block) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if seen[i] {
            remap[i] = Some(BlockIdx(kept.len() as u32));
            kept.push(block);
        }
    }
    for b in &mut kept {
        rewrite_targets(&mut b.term, |t| remap[t.index()].expect("target reachable"));
    }
    f.blocks = kept;
    true
}

fn rewrite_targets(term: &mut Terminator, mut f: impl FnMut(BlockIdx) -> BlockIdx) {
    match term {
        Terminator::Jump(t) => *t = f(*t),
        Terminator::Branch {
            then_bb, else_bb, ..
        } => {
            *then_bb = f(*then_bb);
            *else_bb = f(*else_bb);
        }
        Terminator::Return(_) => {}
    }
}

/// Redirect edges through empty blocks whose only job is `jump next`.
fn thread_jumps(f: &mut Function) -> bool {
    // forward[i] = ultimate target when block i is an empty jump block.
    let n = f.blocks.len();
    let mut forward: Vec<BlockIdx> = (0..n as u32).map(BlockIdx).collect();
    for (i, fwd) in forward.iter_mut().enumerate() {
        if f.blocks[i].instrs.is_empty() {
            if let Terminator::Jump(t) = f.blocks[i].term {
                if t.index() != i {
                    *fwd = t;
                }
            }
        }
    }
    // Path-compress (bounded by n to be safe against cycles of empties).
    for _ in 0..n {
        let mut again = false;
        for i in 0..n {
            let t = forward[i];
            let tt = forward[t.index()];
            if tt != t && tt.index() != i {
                forward[i] = tt;
                again = true;
            }
        }
        if !again {
            break;
        }
    }
    let mut changed = false;
    for i in 0..n {
        let term = &mut f.blocks[i].term;
        let before = term.clone();
        rewrite_targets(term, |t| forward[t.index()]);
        if *term != before {
            changed = true;
        }
    }
    changed
}

/// Merge `a → b` where `a` ends in `jump b`, `b` is not the entry, and `b`
/// has exactly one predecessor.
fn merge_chains(f: &mut Function) -> bool {
    let n = f.blocks.len();
    let mut pred_count = vec![0usize; n];
    for b in &f.blocks {
        for s in b.successors() {
            pred_count[s.index()] += 1;
        }
    }
    let mut changed = false;
    for a in 0..n {
        while let Terminator::Jump(t) = f.blocks[a].term {
            let ti = t.index();
            if ti == a || ti == 0 || pred_count[ti] != 1 {
                break;
            }
            // Move t's body into a.
            let mut donor_instrs = std::mem::take(&mut f.blocks[ti].instrs);
            let donor_term = f.blocks[ti].term.clone();
            f.blocks[a].instrs.append(&mut donor_instrs);
            f.blocks[a].term = donor_term;
            // t becomes an unreachable husk; pred counts for t's successors
            // are unchanged (edges moved, not duplicated). Mark t dead.
            f.blocks[ti].term = Terminator::Jump(t); // self-loop husk
            pred_count[ti] = 0;
            changed = true;
        }
    }
    if changed {
        remove_unreachable(f);
    }
    changed
}

/// Remove instructions whose results are never used.
///
/// A backward sweep per block against global liveness: an instruction is
/// dead when its destination is neither used later in the block nor live
/// out of it. `Store`s are always side-effecting and kept; dead `Load`s
/// are removed like any C compiler would (a program relying on the fault
/// of a dead out-of-bounds load is already out of contract).
///
/// Returns the number of instructions removed. Run to a fixpoint by the
/// caller ([`optimize`]) — removing one instruction can kill another.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let liveness = Liveness::compute(f);
    let mut removed = 0;
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = liveness.live_out(bi).clone();
        // Terminator uses stay live.
        match &block.term {
            Terminator::Branch {
                cond: crate::ir::Operand::Var(v),
                ..
            } => {
                live.insert(*v);
            }
            Terminator::Return(Some(crate::ir::Operand::Var(v))) => {
                live.insert(*v);
            }
            _ => {}
        }
        let mut kept = Vec::with_capacity(block.instrs.len());
        for instr in block.instrs.drain(..).rev() {
            let (dst, uses): (Option<crate::ir::VarId>, Vec<crate::ir::Operand>) = match &instr {
                Instr::Bin { dst, lhs, rhs, .. } => (Some(*dst), vec![*lhs, *rhs]),
                Instr::Un { dst, src, .. } => (Some(*dst), vec![*src]),
                Instr::Copy { dst, src } => (Some(*dst), vec![*src]),
                Instr::Load { dst, index, .. } => (Some(*dst), vec![*index]),
                Instr::Store { index, value, .. } => (None, vec![*index, *value]),
            };
            let is_dead = match dst {
                Some(d) => !live.contains(&d),
                None => false, // stores are side-effecting
            };
            if is_dead {
                removed += 1;
                continue;
            }
            if let Some(d) = dst {
                live.remove(&d);
            }
            for u in uses {
                if let crate::ir::Operand::Var(v) = u {
                    live.insert(v);
                }
            }
            kept.push(instr);
        }
        kept.reverse();
        block.instrs = kept;
    }
    removed
}

/// The full optimisation pipeline: CFG simplification and dead-code
/// elimination to a joint fixpoint.
pub fn optimize(f: &mut Function) {
    loop {
        simplify_cfg(f);
        if eliminate_dead_code(f) == 0 {
            break;
        }
    }
}

/// Renumber blocks in reverse post-order so the entry is block 0 and the
/// layout reads top-down. Stable across runs.
fn renumber_rpo(f: &mut Function) {
    let n = f.blocks.len();
    if n == 0 {
        return;
    }
    let mut visited = vec![false; n];
    let mut postorder: Vec<usize> = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.blocks[b].successors();
        if *next < succs.len() {
            let s = succs[*next].index();
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    let rpo: Vec<usize> = postorder.into_iter().rev().collect();
    let mut remap = vec![BlockIdx(0); n];
    for (new, &old) in rpo.iter().enumerate() {
        remap[old] = BlockIdx(new as u32);
    }
    let mut new_blocks: Vec<_> = Vec::with_capacity(n);
    for &old in &rpo {
        let mut b = f.blocks[old].clone();
        rewrite_targets(&mut b.term, |t| remap[t.index()]);
        new_blocks.push(b);
    }
    f.blocks = new_blocks;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, Instr, Operand, VarId};

    fn jump_block(label: &str, to: u32) -> Block {
        Block {
            label: label.into(),
            instrs: vec![],
            term: Terminator::Jump(BlockIdx(to)),
        }
    }

    fn ret_block(label: &str) -> Block {
        Block {
            label: label.into(),
            instrs: vec![],
            term: Terminator::Return(None),
        }
    }

    fn func(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            vars: vec![],
            arrays: vec![],
            blocks,
        }
    }

    #[test]
    fn unreachable_blocks_removed() {
        let mut f = func(vec![
            jump_block("e", 2),
            ret_block("island"),
            ret_block("x"),
        ]);
        simplify_cfg(&mut f);
        assert!(f.blocks.iter().all(|b| b.label != "island"));
    }

    #[test]
    fn empty_jump_chain_threads_and_merges() {
        // 0 → 1 (empty) → 2 (empty) → 3(ret): collapses to a single block.
        let mut f = func(vec![
            jump_block("a", 1),
            jump_block("b", 2),
            jump_block("c", 3),
            ret_block("d"),
        ]);
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Return(None)));
    }

    #[test]
    fn merge_moves_instructions() {
        let mut b0 = jump_block("a", 1);
        b0.instrs.push(Instr::Copy {
            dst: VarId(0),
            src: Operand::Const(1),
        });
        let mut b1 = ret_block("b");
        b1.instrs.push(Instr::Copy {
            dst: VarId(0),
            src: Operand::Const(2),
        });
        let mut f = func(vec![b0, b1]);
        f.vars.push(crate::ir::VarInfo {
            name: "x".into(),
            bits: 32,
            is_temp: false,
        });
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].instrs.len(), 2);
    }

    #[test]
    fn diamond_is_preserved() {
        // 0 branches to 1/2, both jump to 3. No block may be merged away
        // except that empty arms thread through.
        let mut b0 = ret_block("c");
        b0.term = Terminator::Branch {
            cond: Operand::Var(VarId(0)),
            then_bb: BlockIdx(1),
            else_bb: BlockIdx(2),
        };
        let mut then_b = jump_block("t", 3);
        then_b.instrs.push(Instr::Copy {
            dst: VarId(1),
            src: Operand::Const(1),
        });
        let mut else_b = jump_block("e", 3);
        else_b.instrs.push(Instr::Copy {
            dst: VarId(1),
            src: Operand::Const(2),
        });
        let mut join = ret_block("j");
        join.instrs.push(Instr::Copy {
            dst: VarId(2),
            src: Operand::Var(VarId(1)),
        });
        let mut f = func(vec![b0, then_b, else_b, join]);
        for n in ["c", "x", "y"] {
            f.vars.push(crate::ir::VarInfo {
                name: n.into(),
                bits: 32,
                is_temp: false,
            });
        }
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 4, "diamond must survive");
    }

    #[test]
    fn loop_back_edge_survives() {
        // 0 → 1; 1 branch → (1, 2); 2 ret. Nothing merges across the loop
        // header since it has 2 predecessors.
        let b0 = jump_block("e", 1);
        let mut b1 = ret_block("h");
        b1.instrs.push(Instr::Copy {
            dst: VarId(0),
            src: Operand::Const(0),
        });
        b1.term = Terminator::Branch {
            cond: Operand::Var(VarId(0)),
            then_bb: BlockIdx(1),
            else_bb: BlockIdx(2),
        };
        let b2 = ret_block("x");
        let mut f = func(vec![b0, b1, b2]);
        f.vars.push(crate::ir::VarInfo {
            name: "i".into(),
            bits: 32,
            is_temp: false,
        });
        simplify_cfg(&mut f);
        // entry merges into nothing (header has 2 preds), so 3 blocks −
        // entry may merge with header? No: header has preds {entry, header}.
        assert_eq!(f.blocks.len(), 3);
        // Back edge still present.
        let has_back = f
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.successors().iter().any(|s| s.index() <= i));
        assert!(has_back);
    }

    #[test]
    fn dead_straightline_temp_removed() {
        let src = "int main() { int dead = 3 * 3 + 1; int x = 2; return x * x; }";
        let ir = crate::compile_to_ir(src, "main").unwrap();
        // 'dead' is folded to a constant copy and then eliminated; only
        // the x computation survives.
        let names: Vec<&str> = ir
            .entry
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Copy { dst, .. } | Instr::Bin { dst, .. } => {
                    Some(ir.entry.vars[dst.index()].name.as_str())
                }
                _ => None,
            })
            .collect();
        assert!(!names.contains(&"dead"), "dead def survived: {names:?}");
    }

    #[test]
    fn dead_load_removed_but_store_kept() {
        let src = r#"
            int a[4];
            int main() {
                int unused = a[2];
                a[1] = 7;
                return a[1];
            }
        "#;
        let ir = crate::compile_to_ir(src, "main").unwrap();
        let loads = ir
            .entry
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let stores = ir
            .entry
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(loads, 1, "only the returned a[1] load survives");
        assert_eq!(stores, 1, "the store is side-effecting and kept");
    }

    #[test]
    fn dce_cascades_through_chains() {
        // y depends only on dead x: both must go.
        let src = "int main() { int x = 5; int y = x * 7; int z = 1; return z; }";
        let ir = crate::compile_to_ir(src, "main").unwrap();
        let instrs: usize = ir.entry.instr_count();
        // Only `z = 1` (a single copy) may survive.
        assert!(instrs <= 1, "expected ≤1 instruction, got {instrs}");
    }

    #[test]
    fn live_loop_carried_values_survive() {
        let src = "int main() { int s = 0; for (int i = 0; i < 8; i++) { s += i; } return s; }";
        let ir = crate::compile_to_ir(src, "main").unwrap();
        let exec = || {
            // Interpret manually below in the profiler crate tests; here
            // just assert the accumulating add survived.
            ir.entry
                .blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| {
                    matches!(
                        i,
                        Instr::Bin {
                            op: crate::ast::BinOp::Add,
                            ..
                        }
                    )
                })
                .count()
        };
        assert!(exec() >= 2, "s += i and i++ must both survive");
    }

    #[test]
    fn branch_condition_values_survive() {
        let src = "int main() { int x = 3; if (x > 2) { return 1; } return 0; }";
        let ir = crate::compile_to_ir(src, "main").unwrap();
        let cmps = ir
            .entry
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| {
                matches!(
                    i,
                    Instr::Bin {
                        op: crate::ast::BinOp::Gt,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cmps, 1);
    }

    #[test]
    fn rpo_renumber_entry_first() {
        let mut f = func(vec![
            jump_block("e", 2),
            ret_block("second"),
            jump_block("mid", 1),
        ]);
        // add an instruction so blocks don't fully merge
        f.blocks[1].instrs.push(Instr::Copy {
            dst: VarId(0),
            src: Operand::Const(0),
        });
        f.blocks[2].instrs.push(Instr::Copy {
            dst: VarId(0),
            src: Operand::Const(1),
        });
        f.vars.push(crate::ir::VarInfo {
            name: "x".into(),
            bits: 32,
            is_temp: false,
        });
        simplify_cfg(&mut f);
        // entry is block 0 and every forward edge goes to a later index in
        // this straight-line case.
        assert!(matches!(
            f.blocks.last().unwrap().term,
            Terminator::Return(None)
        ));
    }
}
