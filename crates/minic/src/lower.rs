//! AST → three-address-code lowering with explicit CFG construction.
//!
//! Short-circuit `&&`/`||` and `?:` expand into control flow (new basic
//! blocks), compound assignments were already desugared by the parser, and
//! expressions are flattened into temporaries with local constant folding.
//! Calls survive lowering as an internal high-level instruction; the
//! [`crate::inline`] pass eliminates them before the IR is published.

use crate::ast::{self, BinOp, Expr, IntWidth, LValue, Stmt, UnOp};
use crate::ir::{
    ArrayRef, BlockIdx, GlobalArray, Instr, LocalArray, Operand, Terminator, VarId, VarInfo,
};
use crate::CompileError;
use std::collections::HashMap;

/// Internal instruction: real IR or a not-yet-inlined call.
#[derive(Debug, Clone)]
pub(crate) enum HInstr {
    Real(Instr),
    Call {
        dst: Option<VarId>,
        callee: String,
        args: Vec<Operand>,
    },
}

/// Internal terminator mirror of [`Terminator`].
pub(crate) type HTerminator = Terminator;

/// Internal block.
#[derive(Debug, Clone)]
pub(crate) struct HBlock {
    pub label: String,
    pub instrs: Vec<HInstr>,
    pub term: HTerminator,
}

/// Internal function with possibly-remaining calls.
#[derive(Debug, Clone)]
pub(crate) struct HFunction {
    pub name: String,
    pub params: Vec<VarId>,
    pub vars: Vec<VarInfo>,
    pub arrays: Vec<LocalArray>,
    pub blocks: Vec<HBlock>,
    #[allow(dead_code)] // kept for symmetry with the AST; useful to dumps
    pub return_width: Option<IntWidth>,
}

/// Lower every function of `program` independently.
///
/// Also returns the shared global-array table (indices referenced by
/// [`ArrayRef::Global`]).
pub(crate) fn lower_functions(
    program: &ast::Program,
) -> Result<(Vec<GlobalArray>, Vec<HFunction>), CompileError> {
    let globals: Vec<GlobalArray> = program
        .globals
        .iter()
        .map(|g| {
            let mut init = g.init.clone();
            init.resize(g.len, 0);
            GlobalArray {
                name: g.name.clone(),
                len: g.len,
                bits: g.width.bits(),
                init,
            }
        })
        .collect();
    let global_index: HashMap<&str, u32> = program
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.as_str(), i as u32))
        .collect();

    let mut functions = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        functions.push(FnLowerer::new(f, &global_index).run()?);
    }
    Ok((globals, functions))
}

enum Binding {
    Scalar(VarId),
    Array(u32),
}

struct FnLowerer<'p> {
    def: &'p ast::FunctionDef,
    global_index: &'p HashMap<&'p str, u32>,
    vars: Vec<VarInfo>,
    arrays: Vec<LocalArray>,
    scopes: Vec<HashMap<String, Binding>>,
    blocks: Vec<HBlock>,
    current: BlockIdx,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(BlockIdx, BlockIdx)>,
    temp_counter: u32,
}

impl<'p> FnLowerer<'p> {
    fn new(def: &'p ast::FunctionDef, global_index: &'p HashMap<&'p str, u32>) -> Self {
        FnLowerer {
            def,
            global_index,
            vars: Vec::new(),
            arrays: Vec::new(),
            scopes: vec![HashMap::new()],
            blocks: Vec::new(),
            current: BlockIdx(0),
            loop_stack: Vec::new(),
            temp_counter: 0,
        }
    }

    fn run(mut self) -> Result<HFunction, CompileError> {
        let entry = self.new_block(format!("{}.entry", self.def.name));
        self.current = entry;
        let mut params = Vec::with_capacity(self.def.params.len());
        for (w, name) in &self.def.params {
            let v = self.new_var(name.clone(), w.bits(), false);
            self.declare(name.clone(), Binding::Scalar(v));
            params.push(v);
        }
        self.lower_body(&self.def.body)?;
        // Fall-off-the-end: synthesize `return` / `return 0`.
        let fallthrough = match self.def.return_width {
            Some(_) => Terminator::Return(Some(Operand::Const(0))),
            None => Terminator::Return(None),
        };
        self.seal_current(fallthrough);
        Ok(HFunction {
            name: self.def.name.clone(),
            params,
            vars: self.vars,
            arrays: self.arrays,
            blocks: self.blocks,
            return_width: self.def.return_width,
        })
    }

    // ---- plumbing -------------------------------------------------------

    fn new_block(&mut self, label: impl Into<String>) -> BlockIdx {
        let idx = BlockIdx(self.blocks.len() as u32);
        self.blocks.push(HBlock {
            label: label.into(),
            instrs: Vec::new(),
            // Placeholder; overwritten when the block is sealed.
            term: Terminator::Return(None),
        });
        idx
    }

    fn new_var(&mut self, name: String, bits: u16, is_temp: bool) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name,
            bits,
            is_temp,
        });
        id
    }

    fn new_temp(&mut self, bits: u16) -> VarId {
        let n = self.temp_counter;
        self.temp_counter += 1;
        self.new_var(format!("%t{n}"), bits, true)
    }

    fn declare(&mut self, name: String, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, binding);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn array_ref(&self, name: &str, span: crate::token::Span) -> Result<ArrayRef, CompileError> {
        match self.lookup(name) {
            Some(Binding::Array(i)) => Ok(ArrayRef::Local(*i)),
            Some(Binding::Scalar(_)) => Err(CompileError::new(
                format!("'{name}' is a scalar, not an array"),
                span,
            )),
            None => match self.global_index.get(name) {
                Some(&g) => Ok(ArrayRef::Global(g)),
                None => Err(CompileError::new(
                    format!("undeclared array '{name}'"),
                    span,
                )),
            },
        }
    }

    fn emit(&mut self, instr: HInstr) {
        self.blocks[self.current.index()].instrs.push(instr);
    }

    fn seal_current(&mut self, term: HTerminator) {
        self.blocks[self.current.index()].term = term;
    }

    fn var_bits(&self, op: Operand) -> u16 {
        match op {
            Operand::Var(v) => self.vars[v.index()].bits,
            Operand::Const(_) => 32,
        }
    }

    // ---- statements -----------------------------------------------------

    fn lower_body(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in body {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                width, name, init, ..
            } => {
                let v = self.new_var(name.clone(), width.bits(), false);
                if let Some(init) = init {
                    self.lower_expr_into(init, v)?;
                }
                self.declare(name.clone(), Binding::Scalar(v));
                Ok(())
            }
            Stmt::ArrayDecl {
                width, name, len, ..
            } => {
                let idx = self.arrays.len() as u32;
                self.arrays.push(LocalArray {
                    name: name.clone(),
                    len: *len,
                    bits: width.bits(),
                });
                self.declare(name.clone(), Binding::Array(idx));
                Ok(())
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var { name, span } => {
                        let dst = match self.lookup(name) {
                            Some(Binding::Scalar(v)) => *v,
                            _ => {
                                return Err(CompileError::new(
                                    format!("undeclared variable '{name}'"),
                                    *span,
                                ))
                            }
                        };
                        self.lower_expr_into(value, dst)?;
                    }
                    LValue::Index { name, index, span } => {
                        let array = self.array_ref(name, *span)?;
                        let index = self.lower_expr(index)?;
                        let value = self.lower_expr(value)?;
                        self.emit(HInstr::Real(Instr::Store {
                            array,
                            index,
                            value,
                        }));
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let cond_op = self.lower_expr(cond)?;
                let then_bb = self.new_block("if.then");
                let join_bb = self.new_block("if.join");
                let else_bb = if else_branch.is_empty() {
                    join_bb
                } else {
                    self.new_block("if.else")
                };
                self.seal_current(Terminator::Branch {
                    cond: cond_op,
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                self.lower_body(then_branch)?;
                self.seal_current(Terminator::Jump(join_bb));
                if !else_branch.is_empty() {
                    self.current = else_bb;
                    self.lower_body(else_branch)?;
                    self.seal_current(Terminator::Jump(join_bb));
                }
                self.current = join_bb;
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let cond_bb = self.new_block("while.cond");
                let body_bb = self.new_block("while.body");
                let exit_bb = self.new_block("while.exit");
                self.seal_current(Terminator::Jump(cond_bb));
                self.current = cond_bb;
                let cond_op = self.lower_expr(cond)?;
                self.seal_current(Terminator::Branch {
                    cond: cond_op,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.current = body_bb;
                self.loop_stack.push((cond_bb, exit_bb));
                self.lower_body(body)?;
                self.loop_stack.pop();
                self.seal_current(Terminator::Jump(cond_bb));
                self.current = exit_bb;
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_bb = self.new_block("do.body");
                let cond_bb = self.new_block("do.cond");
                let exit_bb = self.new_block("do.exit");
                self.seal_current(Terminator::Jump(body_bb));
                self.current = body_bb;
                self.loop_stack.push((cond_bb, exit_bb));
                self.lower_body(body)?;
                self.loop_stack.pop();
                self.seal_current(Terminator::Jump(cond_bb));
                self.current = cond_bb;
                let cond_op = self.lower_expr(cond)?;
                self.seal_current(Terminator::Branch {
                    cond: cond_op,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.current = exit_bb;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new()); // for-header scope
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let cond_bb = self.new_block("for.cond");
                let body_bb = self.new_block("for.body");
                let step_bb = self.new_block("for.step");
                let exit_bb = self.new_block("for.exit");
                self.seal_current(Terminator::Jump(cond_bb));
                self.current = cond_bb;
                let cond_op = match cond {
                    Some(c) => self.lower_expr(c)?,
                    None => Operand::Const(1),
                };
                self.seal_current(Terminator::Branch {
                    cond: cond_op,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.current = body_bb;
                self.loop_stack.push((step_bb, exit_bb));
                self.lower_body(body)?;
                self.loop_stack.pop();
                self.seal_current(Terminator::Jump(step_bb));
                self.current = step_bb;
                if let Some(step) = step {
                    self.lower_stmt(step)?;
                }
                self.seal_current(Terminator::Jump(cond_bb));
                self.scopes.pop();
                self.current = exit_bb;
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let op = match value {
                    Some(v) => Some(self.lower_expr(v)?),
                    None => None,
                };
                self.seal_current(Terminator::Return(op));
                // Statements after a return are unreachable; give them a
                // fresh block so lowering stays well-formed (the CFG
                // simplifier drops it).
                let dead = self.new_block("unreachable");
                self.current = dead;
                Ok(())
            }
            Stmt::Break { span } => {
                let Some(&(_, exit_bb)) = self.loop_stack.last() else {
                    return Err(CompileError::new("break outside of a loop", *span));
                };
                self.seal_current(Terminator::Jump(exit_bb));
                let dead = self.new_block("unreachable");
                self.current = dead;
                Ok(())
            }
            Stmt::Continue { span } => {
                let Some(&(cont_bb, _)) = self.loop_stack.last() else {
                    return Err(CompileError::new("continue outside of a loop", *span));
                };
                self.seal_current(Terminator::Jump(cont_bb));
                let dead = self.new_block("unreachable");
                self.current = dead;
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                if let Expr::Call { callee, args, .. } = expr {
                    let args = args
                        .iter()
                        .map(|a| self.lower_expr(a))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.emit(HInstr::Call {
                        dst: None,
                        callee: callee.clone(),
                        args,
                    });
                    Ok(())
                } else {
                    // Parser already restricts this; evaluate defensively.
                    self.lower_expr(expr)?;
                    Ok(())
                }
            }
            Stmt::Block { body, .. } => self.lower_body(body),
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Lower `expr` writing its result directly into `dst` where the
    /// expression shape allows it (binary/unary/load/call), avoiding a
    /// temp + copy pair. Keeps DFG node labels attached to the source
    /// variable the programmer wrote.
    fn lower_expr_into(&mut self, expr: &Expr, dst: VarId) -> Result<(), CompileError> {
        match expr {
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                if let (Operand::Const(a), Operand::Const(b)) = (l, r) {
                    if let Some(v) = fold(*op, a, b) {
                        self.emit(HInstr::Real(Instr::Copy {
                            dst,
                            src: Operand::Const(v),
                        }));
                        return Ok(());
                    }
                }
                self.emit(HInstr::Real(Instr::Bin {
                    op: *op,
                    dst,
                    lhs: l,
                    rhs: r,
                }));
                Ok(())
            }
            Expr::Unary {
                op: UnOp::Neg | UnOp::BitNot,
                operand,
                ..
            } => {
                let src = self.lower_expr(operand)?;
                if let Operand::Const(_) = src {
                    let folded = self.lower_expr(expr)?;
                    self.emit(HInstr::Real(Instr::Copy { dst, src: folded }));
                    return Ok(());
                }
                let Expr::Unary { op, .. } = expr else {
                    unreachable!()
                };
                self.emit(HInstr::Real(Instr::Un { op: *op, dst, src }));
                Ok(())
            }
            Expr::Index { name, index, span } => {
                let array = self.array_ref(name, *span)?;
                let index = self.lower_expr(index)?;
                self.emit(HInstr::Real(Instr::Load { dst, array, index }));
                Ok(())
            }
            Expr::Call { callee, args, .. } => {
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.emit(HInstr::Call {
                    dst: Some(dst),
                    callee: callee.clone(),
                    args,
                });
                Ok(())
            }
            _ => {
                let src = self.lower_expr(expr)?;
                self.emit(HInstr::Real(Instr::Copy { dst, src }));
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Operand, CompileError> {
        match expr {
            Expr::IntLit { value, .. } => Ok(Operand::Const(*value)),
            Expr::Var { name, span } => match self.lookup(name) {
                Some(Binding::Scalar(v)) => Ok(Operand::Var(*v)),
                _ => Err(CompileError::new(
                    format!("undeclared variable '{name}'"),
                    *span,
                )),
            },
            Expr::Index { name, index, span } => {
                let array = self.array_ref(name, *span)?;
                let index = self.lower_expr(index)?;
                let bits = match array {
                    ArrayRef::Local(i) => self.arrays[i as usize].bits,
                    ArrayRef::Global(_) => 32,
                };
                let dst = self.new_temp(bits);
                self.emit(HInstr::Real(Instr::Load { dst, array, index }));
                Ok(Operand::Var(dst))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                // Local constant folding keeps the DFGs honest about real
                // hardware work (SUIF folds too).
                if let (Operand::Const(a), Operand::Const(b)) = (l, r) {
                    if let Some(v) = fold(*op, a, b) {
                        return Ok(Operand::Const(v));
                    }
                }
                let bits = if op.is_comparison() {
                    1
                } else {
                    self.var_bits(l).max(self.var_bits(r))
                };
                let dst = self.new_temp(bits);
                self.emit(HInstr::Real(Instr::Bin {
                    op: *op,
                    dst,
                    lhs: l,
                    rhs: r,
                }));
                Ok(Operand::Var(dst))
            }
            Expr::Unary { op, operand, .. } => {
                let src = self.lower_expr(operand)?;
                if let Operand::Const(c) = src {
                    let v = match op {
                        UnOp::Neg => c.wrapping_neg(),
                        UnOp::BitNot => !c,
                        UnOp::LogicalNot => i64::from(c == 0),
                    };
                    return Ok(Operand::Const(v));
                }
                match op {
                    UnOp::LogicalNot => {
                        let dst = self.new_temp(1);
                        self.emit(HInstr::Real(Instr::Bin {
                            op: BinOp::Eq,
                            dst,
                            lhs: src,
                            rhs: Operand::Const(0),
                        }));
                        Ok(Operand::Var(dst))
                    }
                    UnOp::Neg | UnOp::BitNot => {
                        let dst = self.new_temp(self.var_bits(src));
                        self.emit(HInstr::Real(Instr::Un { op: *op, dst, src }));
                        Ok(Operand::Var(dst))
                    }
                }
            }
            Expr::Logical {
                is_and, lhs, rhs, ..
            } => {
                // Short-circuit lowering with a result temp.
                let result = self.new_temp(1);
                let l = self.lower_expr(lhs)?;
                let rhs_bb = self.new_block(if *is_and { "and.rhs" } else { "or.rhs" });
                let short_bb = self.new_block(if *is_and { "and.short" } else { "or.short" });
                let join_bb = self.new_block(if *is_and { "and.join" } else { "or.join" });
                let (then_bb, else_bb) = if *is_and {
                    (rhs_bb, short_bb)
                } else {
                    (short_bb, rhs_bb)
                };
                self.seal_current(Terminator::Branch {
                    cond: l,
                    then_bb,
                    else_bb,
                });
                self.current = rhs_bb;
                let r = self.lower_expr(rhs)?;
                self.emit(HInstr::Real(Instr::Bin {
                    op: BinOp::Ne,
                    dst: result,
                    lhs: r,
                    rhs: Operand::Const(0),
                }));
                self.seal_current(Terminator::Jump(join_bb));
                self.current = short_bb;
                self.emit(HInstr::Real(Instr::Copy {
                    dst: result,
                    src: Operand::Const(i64::from(!*is_and)),
                }));
                self.seal_current(Terminator::Jump(join_bb));
                self.current = join_bb;
                Ok(Operand::Var(result))
            }
            Expr::Ternary {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let result = self.new_temp(32);
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block("sel.then");
                let else_bb = self.new_block("sel.else");
                let join_bb = self.new_block("sel.join");
                self.seal_current(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                let t = self.lower_expr(then_val)?;
                self.emit(HInstr::Real(Instr::Copy {
                    dst: result,
                    src: t,
                }));
                self.seal_current(Terminator::Jump(join_bb));
                self.current = else_bb;
                let e = self.lower_expr(else_val)?;
                self.emit(HInstr::Real(Instr::Copy {
                    dst: result,
                    src: e,
                }));
                self.seal_current(Terminator::Jump(join_bb));
                self.current = join_bb;
                Ok(Operand::Var(result))
            }
            Expr::Call { callee, args, .. } => {
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let dst = self.new_temp(32);
                self.emit(HInstr::Call {
                    dst: Some(dst),
                    callee: callee.clone(),
                    args,
                });
                Ok(Operand::Var(dst))
            }
        }
    }
}

/// Constant folding for binary operators. Returns `None` where folding is
/// unsafe (division by zero, out-of-range shift) so the fault surfaces at
/// interpretation time like it would on hardware.
fn fold(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shl(b as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shr(b as u32)
        }
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn lower_src(src: &str) -> (Vec<GlobalArray>, Vec<HFunction>) {
        let ast = parse(&lex(src).unwrap()).unwrap();
        crate::sema::check(&ast, "main").unwrap();
        lower_functions(&ast).unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let (_, fns) = lower_src("int main() { int x = 3; int y = x * 4; return y + 1; }");
        let f = &fns[0];
        // Entry block plus the dead block lowering opens after `return`
        // (the CFG simplifier removes it later in the pipeline).
        assert_eq!(f.blocks.len(), 2);
        // x=3 copy, y = x*4 bin, t = y+1 bin → 3 instructions.
        assert_eq!(f.blocks[0].instrs.len(), 3);
        assert!(matches!(f.blocks[0].term, Terminator::Return(Some(_))));
    }

    #[test]
    fn constant_folding() {
        let (_, fns) = lower_src("int main() { return 2 + 3 * 4; }");
        let f = &fns[0];
        assert!(f.blocks[0].instrs.is_empty(), "should fold to constant");
        assert!(matches!(
            f.blocks[0].term,
            Terminator::Return(Some(Operand::Const(14)))
        ));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (_, fns) = lower_src("int main() { return 1 / 0; }");
        assert_eq!(fns[0].blocks[0].instrs.len(), 1);
    }

    #[test]
    fn while_produces_loop_shape() {
        let (_, fns) =
            lower_src("int main() { int i = 0; while (i < 4) { i = i + 1; } return i; }");
        let f = &fns[0];
        // entry, cond, body, exit + the dead block after the final return.
        assert_eq!(f.blocks.len(), 5);
        // body jumps back to cond
        let body = f
            .blocks
            .iter()
            .position(|b| b.label == "while.body")
            .unwrap();
        let cond = f
            .blocks
            .iter()
            .position(|b| b.label == "while.cond")
            .unwrap();
        assert!(matches!(
            f.blocks[body].term,
            Terminator::Jump(t) if t.index() == cond
        ));
    }

    #[test]
    fn for_loop_shape_with_step_block() {
        let (_, fns) = lower_src(
            "int main() { int s = 0; for (int i = 0; i < 8; i++) { s += i; } return s; }",
        );
        let labels: Vec<&str> = fns[0].blocks.iter().map(|b| b.label.as_str()).collect();
        for l in ["for.cond", "for.body", "for.step", "for.exit"] {
            assert!(labels.contains(&l), "missing {l} in {labels:?}");
        }
    }

    #[test]
    fn logical_and_short_circuits() {
        let (_, fns) = lower_src("int main() { int a = 1; int b = 2; return a && b; }");
        let labels: Vec<&str> = fns[0].blocks.iter().map(|b| b.label.as_str()).collect();
        assert!(labels.contains(&"and.rhs"));
        assert!(labels.contains(&"and.short"));
        assert!(labels.contains(&"and.join"));
    }

    #[test]
    fn ternary_lowers_to_diamond() {
        let (_, fns) = lower_src("int main() { int a = 1; return a ? 10 : 20; }");
        let labels: Vec<&str> = fns[0].blocks.iter().map(|b| b.label.as_str()).collect();
        assert!(labels.contains(&"sel.then") && labels.contains(&"sel.else"));
    }

    #[test]
    fn array_load_store() {
        let (globals, fns) = lower_src("int a[4]; int main() { a[0] = 7; return a[0]; }");
        assert_eq!(globals[0].name, "a");
        let instrs = &fns[0].blocks[0].instrs;
        assert!(matches!(instrs[0], HInstr::Real(Instr::Store { .. })));
        assert!(matches!(instrs[1], HInstr::Real(Instr::Load { .. })));
    }

    #[test]
    fn global_initialiser_zero_padded() {
        let (globals, _) = lower_src("int a[5] = {1, 2}; int main() { return a[4]; }");
        assert_eq!(globals[0].init, vec![1, 2, 0, 0, 0]);
    }

    #[test]
    fn call_survives_lowering_for_inline_pass() {
        let (_, fns) = lower_src("int f(int x) { return x + 1; } int main() { return f(41); }");
        let main = fns.iter().find(|f| f.name == "main").unwrap();
        assert!(main.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, HInstr::Call { .. })));
    }

    #[test]
    fn break_and_continue_targets() {
        let (_, fns) = lower_src(
            "int main() { int i = 0; while (1) { i++; if (i > 3) { break; } continue; } return i; }",
        );
        // Just verify lowering succeeds and produces a return-terminated CFG.
        let f = &fns[0];
        assert!(f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Return(_))));
    }

    #[test]
    fn comparison_temp_is_one_bit() {
        // Nested comparison forces a temp (direct-dst lowering would give
        // the declared variable's width instead).
        let (_, fns) = lower_src("int main() { int a = 1; int b = 2; return (a < b) * 5; }");
        let f = &fns[0];
        let cmp_dst = f.blocks[0]
            .instrs
            .iter()
            .find_map(|i| match i {
                HInstr::Real(Instr::Bin {
                    op: BinOp::Lt, dst, ..
                }) => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert_eq!(f.vars[cmp_dst.index()].bits, 1);
    }
}
