//! Abstract syntax tree for mini-C.

use crate::token::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer width classes of mini-C (`char`/`short`/`int`/`long`).
///
/// Widths only influence the hardware cost models (area/weight per
/// bitwidth); interpretation is performed in full `i64` like a typical
/// 2000s DSP C compiler targeting 32-bit semantics with widening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IntWidth {
    /// 8-bit (`char`).
    W8,
    /// 16-bit (`short`).
    W16,
    /// 32-bit (`int`).
    W32,
    /// 64-bit (`long`).
    W64,
}

impl IntWidth {
    /// The width in bits.
    pub fn bits(self) -> u16 {
        match self {
            IntWidth::W8 => 8,
            IntWidth::W16 => 16,
            IntWidth::W32 => 32,
            IntWidth::W64 => 64,
        }
    }
}

impl fmt::Display for IntWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits())
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinOp {
    /// Whether the result is boolean (0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    BitNot,
    /// Logical not `!` (result 0/1).
    LogicalNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::BitNot => "~",
            UnOp::LogicalNot => "!",
        })
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    IntLit {
        /// The literal value.
        value: i64,
        /// Source location.
        span: Span,
    },
    /// Scalar variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// Array element read `name[index]`.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Short-circuit `&&` / `||`.
    Logical {
        /// `true` for `&&`, `false` for `||`.
        is_and: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Conditional expression `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if the condition is non-zero.
        then_val: Box<Expr>,
        /// Value if the condition is zero.
        else_val: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function call.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit { span, .. }
            | Expr::Var { span, .. }
            | Expr::Index { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Logical { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}

/// An assignment target: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar variable.
    Var {
        /// Variable name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// Array element.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Expr,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// The source span of this lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var { span, .. } | LValue::Index { span, .. } => *span,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Scalar declaration `int x = init;` (init optional).
    Decl {
        /// Declared width.
        width: IntWidth,
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// Local array declaration `int a[N];`.
    ArrayDecl {
        /// Element width.
        width: IntWidth,
        /// Array name.
        name: String,
        /// Number of elements.
        len: usize,
        /// Source location.
        span: Span,
    },
    /// Assignment `lv = value;` (compound assignments are desugared by the
    /// parser into plain assignments).
    Assign {
        /// Target.
        target: LValue,
        /// Value expression.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `if (cond) then_branch [else else_branch]`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken when `cond != 0`.
        then_branch: Vec<Stmt>,
        /// Taken when `cond == 0`.
        else_branch: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Condition (tested before each iteration).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body (executed at least once).
        body: Vec<Stmt>,
        /// Condition (tested after each iteration).
        cond: Expr,
        /// Source location.
        span: Span,
    },
    /// `for (init; cond; step) body`. All three headers optional.
    For {
        /// Initialiser statement.
        init: Option<Box<Stmt>>,
        /// Condition; `None` means always true.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `return [expr];`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `break;`
    Break {
        /// Source location.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for its side effects (a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
    /// A braced block introducing a scope.
    Block {
        /// Statements in the block.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// `None` for `void` functions.
    pub return_width: Option<IntWidth>,
    /// Scalar parameters `(width, name)`.
    pub params: Vec<(IntWidth, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the signature.
    pub span: Span,
}

/// A global array definition with optional initialiser list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalArrayDef {
    /// Element width.
    pub width: IntWidth,
    /// Array name.
    pub name: String,
    /// Number of elements.
    pub len: usize,
    /// Initial values (zero-padded to `len`; empty means all zeros).
    pub init: Vec<i64>,
    /// Source location.
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Global arrays, in declaration order.
    pub globals: Vec<GlobalArrayDef>,
    /// Functions, in declaration order.
    pub functions: Vec<FunctionDef>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a global array by name.
    pub fn global(&self, name: &str) -> Option<&GlobalArrayDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(IntWidth::W8.bits(), 8);
        assert_eq!(IntWidth::W64.bits(), 64);
        assert_eq!(IntWidth::W16.to_string(), "i16");
    }

    #[test]
    fn binop_properties() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }

    #[test]
    fn expr_span_access() {
        let e = Expr::IntLit {
            value: 1,
            span: Span::new(3, 4, 1, 4),
        };
        assert_eq!(e.span().start, 3);
    }
}
