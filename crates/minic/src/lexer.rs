//! Hand-written lexer for mini-C.
//!
//! Plays the role Lex plays in the paper's prototype framework: it is the
//! first thing the analysis flow runs over the source. Supports `//` line
//! and `/* */` block comments, decimal and `0x` hexadecimal literals.

use crate::token::{Keyword, Span, Token, TokenKind};
use crate::CompileError;

/// Lex `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`CompileError`] on unknown characters, malformed literals, or
/// unterminated block comments.
///
/// # Examples
///
/// ```
/// use amdrel_minic::lexer::lex;
/// use amdrel_minic::token::TokenKind;
///
/// # fn main() -> Result<(), amdrel_minic::CompileError> {
/// let tokens = lex("int x = 0x10;")?;
/// assert_eq!(tokens.len(), 6); // int, x, =, 16, ;, EOF
/// assert!(matches!(tokens[3].kind, TokenKind::IntLit(16)));
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start.0, self.pos, start.1, start.2),
        });
    }

    fn error(&self, start: (usize, u32, u32), message: impl Into<String>) -> CompileError {
        CompileError::new(message, Span::new(start.0, self.pos, start.1, start.2))
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                _ => self.symbol(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, start: (usize, u32, u32)) -> Result<(), CompileError> {
        let mut value: i64 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let mut any = false;
            while let Some(c) = self.peek() {
                let digit = match c {
                    b'0'..=b'9' => i64::from(c - b'0'),
                    b'a'..=b'f' => i64::from(c - b'a' + 10),
                    b'A'..=b'F' => i64::from(c - b'A' + 10),
                    _ => break,
                };
                any = true;
                value = value
                    .checked_mul(16)
                    .and_then(|v| v.checked_add(digit))
                    .ok_or_else(|| self.error(start, "integer literal overflows i64"))?;
                self.bump();
            }
            if !any {
                return Err(self.error(start, "hexadecimal literal has no digits"));
            }
        } else {
            while let Some(c @ b'0'..=b'9') = self.peek() {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(c - b'0')))
                    .ok_or_else(|| self.error(start, "integer literal overflows i64"))?;
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            return Err(self.error(start, "identifier characters after integer literal"));
        }
        self.push(TokenKind::IntLit(value), start);
        Ok(())
    }

    fn ident(&mut self, start: (usize, u32, u32)) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text =
            std::str::from_utf8(&self.src[start.0..self.pos]).expect("identifier bytes are ASCII");
        let kind = match Keyword::parse(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_owned()),
        };
        self.push(kind, start);
    }

    fn symbol(&mut self, start: (usize, u32, u32)) -> Result<(), CompileError> {
        let c = self.bump().expect("symbol() called at EOF");
        let next = self.peek();
        let kind = match (c, next) {
            (b'<', Some(b'<')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::ShlAssign
                } else {
                    TokenKind::Shl
                }
            }
            (b'>', Some(b'>')) => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::ShrAssign
                } else {
                    TokenKind::Shr
                }
            }
            (b'<', Some(b'=')) => {
                self.bump();
                TokenKind::Le
            }
            (b'>', Some(b'=')) => {
                self.bump();
                TokenKind::Ge
            }
            (b'=', Some(b'=')) => {
                self.bump();
                TokenKind::EqEq
            }
            (b'!', Some(b'=')) => {
                self.bump();
                TokenKind::Ne
            }
            (b'&', Some(b'&')) => {
                self.bump();
                TokenKind::AmpAmp
            }
            (b'|', Some(b'|')) => {
                self.bump();
                TokenKind::PipePipe
            }
            (b'+', Some(b'+')) => {
                self.bump();
                TokenKind::PlusPlus
            }
            (b'-', Some(b'-')) => {
                self.bump();
                TokenKind::MinusMinus
            }
            (b'+', Some(b'=')) => {
                self.bump();
                TokenKind::PlusAssign
            }
            (b'-', Some(b'=')) => {
                self.bump();
                TokenKind::MinusAssign
            }
            (b'*', Some(b'=')) => {
                self.bump();
                TokenKind::StarAssign
            }
            (b'&', Some(b'=')) => {
                self.bump();
                TokenKind::AmpAssign
            }
            (b'|', Some(b'=')) => {
                self.bump();
                TokenKind::PipeAssign
            }
            (b'^', Some(b'=')) => {
                self.bump();
                TokenKind::CaretAssign
            }
            (b'+', _) => TokenKind::Plus,
            (b'-', _) => TokenKind::Minus,
            (b'*', _) => TokenKind::Star,
            (b'/', _) => TokenKind::Slash,
            (b'%', _) => TokenKind::Percent,
            (b'&', _) => TokenKind::Amp,
            (b'|', _) => TokenKind::Pipe,
            (b'^', _) => TokenKind::Caret,
            (b'~', _) => TokenKind::Tilde,
            (b'!', _) => TokenKind::Bang,
            (b'<', _) => TokenKind::Lt,
            (b'>', _) => TokenKind::Gt,
            (b'=', _) => TokenKind::Assign,
            (b'?', _) => TokenKind::Question,
            (b':', _) => TokenKind::Colon,
            (b'(', _) => TokenKind::LParen,
            (b')', _) => TokenKind::RParen,
            (b'{', _) => TokenKind::LBrace,
            (b'}', _) => TokenKind::RBrace,
            (b'[', _) => TokenKind::LBracket,
            (b']', _) => TokenKind::RBracket,
            (b';', _) => TokenKind::Semi,
            (b',', _) => TokenKind::Comma,
            _ => {
                return Err(self.error(start, format!("unexpected character '{}'", c as char)));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::IntLit(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_hex_and_decimal() {
        assert_eq!(
            kinds("0xFF 255 0"),
            vec![
                TokenKind::IntLit(255),
                TokenKind::IntLit(255),
                TokenKind::IntLit(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_compound_operators() {
        assert_eq!(
            kinds("a <<= b >>= c == d != e && f || g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::ShlAssign,
                TokenKind::Ident("b".into()),
                TokenKind::ShrAssign,
                TokenKind::Ident("c".into()),
                TokenKind::EqEq,
                TokenKind::Ident("d".into()),
                TokenKind::Ne,
                TokenKind::Ident("e".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("f".into()),
                TokenKind::PipePipe,
                TokenKind::Ident("g".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_increment_and_shift_disambiguation() {
        assert_eq!(
            kinds("i++ << j--"),
            vec![
                TokenKind::Ident("i".into()),
                TokenKind::PlusPlus,
                TokenKind::Shl,
                TokenKind::Ident("j".into()),
                TokenKind::MinusMinus,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line\nint /* block\nspanning */ x;";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let tokens = lex("int\n  x;").unwrap();
        assert_eq!((tokens[0].span.line, tokens[0].span.col), (1, 1));
        assert_eq!((tokens[1].span.line, tokens[1].span.col), (2, 3));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("/* never closed").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn overflow_literal_errors() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn trailing_letters_after_number_error() {
        assert!(lex("123abc").is_err());
    }

    #[test]
    fn empty_input_gives_eof_only() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
