//! Semantic analysis: name resolution, arity/shape checks, recursion
//! detection.
//!
//! Runs between parsing and lowering so the lowering pass can assume a
//! well-formed program. Mini-C restrictions enforced here (documented in
//! the crate docs): arrays live at file scope or function scope but are
//! not passable as parameters, functions are non-recursive (they are fully
//! inlined — the methodology partitions one flat CDFG), and every name
//! must resolve.

use crate::ast::{Expr, FunctionDef, LValue, Program, Stmt};
use crate::token::Span;
use crate::CompileError;
use std::collections::{HashMap, HashSet};

/// Check `program` for semantic errors.
///
/// `entry` is the function the flow will treat as the application root
/// (usually `main`); it must exist and take no parameters.
///
/// # Errors
///
/// The first semantic violation found, as a [`CompileError`] with the
/// offending source span.
pub fn check(program: &Program, entry: &str) -> Result<(), CompileError> {
    let mut checker = Checker::new(program);
    checker.check_program(entry)
}

struct Checker<'p> {
    program: &'p Program,
    functions: HashMap<&'p str, &'p FunctionDef>,
    globals: HashSet<&'p str>,
}

#[derive(Clone, Copy, PartialEq)]
enum NameKind {
    Scalar,
    Array,
}

struct Scopes<'p> {
    stack: Vec<HashMap<&'p str, NameKind>>,
}

impl<'p> Scopes<'p> {
    fn new() -> Self {
        Scopes {
            stack: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn declare(&mut self, name: &'p str, kind: NameKind) -> bool {
        self.stack
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, kind)
            .is_none()
    }

    fn lookup(&self, name: &str) -> Option<NameKind> {
        self.stack.iter().rev().find_map(|s| s.get(name).copied())
    }
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Self {
        Checker {
            program,
            functions: HashMap::new(),
            globals: HashSet::new(),
        }
    }

    fn check_program(&mut self, entry: &str) -> Result<(), CompileError> {
        for g in &self.program.globals {
            if g.len == 0 {
                return Err(CompileError::new(
                    format!("global array '{}' has zero length", g.name),
                    g.span,
                ));
            }
            if !self.globals.insert(&g.name) {
                return Err(CompileError::new(
                    format!("duplicate global array '{}'", g.name),
                    g.span,
                ));
            }
        }
        for f in &self.program.functions {
            if self.functions.insert(&f.name, f).is_some() {
                return Err(CompileError::new(
                    format!("duplicate function '{}'", f.name),
                    f.span,
                ));
            }
            if self.globals.contains(f.name.as_str()) {
                return Err(CompileError::new(
                    format!("'{}' is both a global array and a function", f.name),
                    f.span,
                ));
            }
        }
        let Some(entry_fn) = self.functions.get(entry) else {
            return Err(CompileError::new(
                format!("entry function '{entry}' not found"),
                Span::default(),
            ));
        };
        if !entry_fn.params.is_empty() {
            return Err(CompileError::new(
                format!("entry function '{entry}' must take no parameters"),
                entry_fn.span,
            ));
        }

        for f in &self.program.functions {
            self.check_function(f)?;
        }
        self.check_recursion()?;
        Ok(())
    }

    fn check_function(&self, f: &'p FunctionDef) -> Result<(), CompileError> {
        let mut scopes = Scopes::new();
        for (_, p) in &f.params {
            if !scopes.declare(p, NameKind::Scalar) {
                return Err(CompileError::new(
                    format!("duplicate parameter '{p}' in function '{}'", f.name),
                    f.span,
                ));
            }
        }
        self.check_body(&f.body, &mut scopes, f, 0)
    }

    fn check_body(
        &self,
        body: &'p [Stmt],
        scopes: &mut Scopes<'p>,
        f: &'p FunctionDef,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        scopes.push();
        for stmt in body {
            self.check_stmt(stmt, scopes, f, loop_depth)?;
        }
        scopes.pop();
        Ok(())
    }

    fn check_stmt(
        &self,
        stmt: &'p Stmt,
        scopes: &mut Scopes<'p>,
        f: &'p FunctionDef,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                name, init, span, ..
            } => {
                if let Some(init) = init {
                    self.check_expr(init, scopes)?;
                }
                if !scopes.declare(name, NameKind::Scalar) {
                    return Err(CompileError::new(
                        format!("duplicate declaration of '{name}' in the same scope"),
                        *span,
                    ));
                }
                Ok(())
            }
            Stmt::ArrayDecl {
                name, len, span, ..
            } => {
                if *len == 0 {
                    return Err(CompileError::new(
                        format!("array '{name}' has zero length"),
                        *span,
                    ));
                }
                if !scopes.declare(name, NameKind::Array) {
                    return Err(CompileError::new(
                        format!("duplicate declaration of '{name}' in the same scope"),
                        *span,
                    ));
                }
                Ok(())
            }
            Stmt::Assign { target, value, .. } => {
                self.check_lvalue(target, scopes)?;
                self.check_expr(value, scopes)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.check_expr(cond, scopes)?;
                self.check_body(then_branch, scopes, f, loop_depth)?;
                self.check_body(else_branch, scopes, f, loop_depth)
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond, scopes)?;
                self.check_body(body, scopes, f, loop_depth + 1)
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.check_body(body, scopes, f, loop_depth + 1)?;
                self.check_expr(cond, scopes)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                // The for header introduces its own scope (C99 semantics).
                scopes.push();
                if let Some(init) = init {
                    self.check_stmt(init, scopes, f, loop_depth)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond, scopes)?;
                }
                if let Some(step) = step {
                    self.check_stmt(step, scopes, f, loop_depth + 1)?;
                }
                let r = self.check_body(body, scopes, f, loop_depth + 1);
                scopes.pop();
                r
            }
            Stmt::Return { value, span } => match (value, f.return_width) {
                (Some(_), None) => Err(CompileError::new(
                    format!("void function '{}' returns a value", f.name),
                    *span,
                )),
                (None, Some(_)) => Err(CompileError::new(
                    format!("non-void function '{}' returns without a value", f.name),
                    *span,
                )),
                (Some(v), Some(_)) => self.check_expr(v, scopes),
                (None, None) => Ok(()),
            },
            Stmt::Break { span } | Stmt::Continue { span } => {
                if loop_depth == 0 {
                    Err(CompileError::new("break/continue outside of a loop", *span))
                } else {
                    Ok(())
                }
            }
            Stmt::ExprStmt { expr, .. } => self.check_expr(expr, scopes),
            Stmt::Block { body, .. } => self.check_body(body, scopes, f, loop_depth),
        }
    }

    fn check_lvalue(&self, lv: &'p LValue, scopes: &Scopes<'p>) -> Result<(), CompileError> {
        match lv {
            LValue::Var { name, span } => match self.resolve(name, scopes) {
                Some(NameKind::Scalar) => Ok(()),
                Some(NameKind::Array) => Err(CompileError::new(
                    format!("cannot assign to array '{name}' without an index"),
                    *span,
                )),
                None => Err(CompileError::new(
                    format!("undeclared variable '{name}'"),
                    *span,
                )),
            },
            LValue::Index { name, index, span } => match self.resolve(name, scopes) {
                Some(NameKind::Array) => self.check_expr(index, scopes),
                Some(NameKind::Scalar) => Err(CompileError::new(
                    format!("'{name}' is a scalar, not an array"),
                    *span,
                )),
                None => Err(CompileError::new(
                    format!("undeclared array '{name}'"),
                    *span,
                )),
            },
        }
    }

    fn resolve(&self, name: &str, scopes: &Scopes<'p>) -> Option<NameKind> {
        scopes
            .lookup(name)
            .or_else(|| self.globals.contains(name).then_some(NameKind::Array))
    }

    fn check_expr(&self, expr: &'p Expr, scopes: &Scopes<'p>) -> Result<(), CompileError> {
        match expr {
            Expr::IntLit { .. } => Ok(()),
            Expr::Var { name, span } => match self.resolve(name, scopes) {
                Some(NameKind::Scalar) => Ok(()),
                Some(NameKind::Array) => Err(CompileError::new(
                    format!("array '{name}' used as a scalar value"),
                    *span,
                )),
                None => Err(CompileError::new(
                    format!("undeclared variable '{name}'"),
                    *span,
                )),
            },
            Expr::Index { name, index, span } => match self.resolve(name, scopes) {
                Some(NameKind::Array) => self.check_expr(index, scopes),
                Some(NameKind::Scalar) => Err(CompileError::new(
                    format!("'{name}' is a scalar, not an array"),
                    *span,
                )),
                None => Err(CompileError::new(
                    format!("undeclared array '{name}'"),
                    *span,
                )),
            },
            Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
                self.check_expr(lhs, scopes)?;
                self.check_expr(rhs, scopes)
            }
            Expr::Unary { operand, .. } => self.check_expr(operand, scopes),
            Expr::Ternary {
                cond,
                then_val,
                else_val,
                ..
            } => {
                self.check_expr(cond, scopes)?;
                self.check_expr(then_val, scopes)?;
                self.check_expr(else_val, scopes)
            }
            Expr::Call { callee, args, span } => {
                let Some(def) = self.functions.get(callee.as_str()) else {
                    return Err(CompileError::new(
                        format!("call to undeclared function '{callee}'"),
                        *span,
                    ));
                };
                if def.params.len() != args.len() {
                    return Err(CompileError::new(
                        format!(
                            "function '{callee}' takes {} arguments, {} given",
                            def.params.len(),
                            args.len()
                        ),
                        *span,
                    ));
                }
                for a in args {
                    self.check_expr(a, scopes)?;
                }
                Ok(())
            }
        }
    }

    /// Reject direct or mutual recursion — all calls are inlined.
    fn check_recursion(&self) -> Result<(), CompileError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let names: Vec<&str> = self
            .program
            .functions
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut marks = vec![Mark::White; names.len()];

        fn calls_of(body: &[Stmt], out: &mut Vec<(String, Span)>) {
            fn expr(e: &Expr, out: &mut Vec<(String, Span)>) {
                match e {
                    Expr::Call { callee, args, span } => {
                        out.push((callee.clone(), *span));
                        for a in args {
                            expr(a, out);
                        }
                    }
                    Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
                        expr(lhs, out);
                        expr(rhs, out);
                    }
                    Expr::Unary { operand, .. } => expr(operand, out),
                    Expr::Ternary {
                        cond,
                        then_val,
                        else_val,
                        ..
                    } => {
                        expr(cond, out);
                        expr(then_val, out);
                        expr(else_val, out);
                    }
                    Expr::Index { index, .. } => expr(index, out),
                    Expr::IntLit { .. } | Expr::Var { .. } => {}
                }
            }
            for s in body {
                match s {
                    Stmt::Decl { init: Some(e), .. } => expr(e, out),
                    Stmt::Decl { .. } | Stmt::ArrayDecl { .. } => {}
                    Stmt::Assign { target, value, .. } => {
                        if let LValue::Index { index, .. } = target {
                            expr(index, out);
                        }
                        expr(value, out);
                    }
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        expr(cond, out);
                        calls_of(then_branch, out);
                        calls_of(else_branch, out);
                    }
                    Stmt::While { cond, body, .. } => {
                        expr(cond, out);
                        calls_of(body, out);
                    }
                    Stmt::DoWhile { body, cond, .. } => {
                        calls_of(body, out);
                        expr(cond, out);
                    }
                    Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                        ..
                    } => {
                        if let Some(i) = init {
                            calls_of(std::slice::from_ref(i), out);
                        }
                        if let Some(c) = cond {
                            expr(c, out);
                        }
                        if let Some(st) = step {
                            calls_of(std::slice::from_ref(st), out);
                        }
                        calls_of(body, out);
                    }
                    Stmt::Return { value: Some(e), .. } => expr(e, out),
                    Stmt::Return { .. } | Stmt::Break { .. } | Stmt::Continue { .. } => {}
                    Stmt::ExprStmt { expr: e, .. } => expr(e, out),
                    Stmt::Block { body, .. } => calls_of(body, out),
                }
            }
        }

        fn visit(
            i: usize,
            program: &Program,
            index: &HashMap<&str, usize>,
            marks: &mut [Mark],
        ) -> Result<(), CompileError> {
            marks[i] = Mark::Gray;
            let mut calls = Vec::new();
            calls_of(&program.functions[i].body, &mut calls);
            for (callee, span) in calls {
                if let Some(&j) = index.get(callee.as_str()) {
                    match marks[j] {
                        Mark::Gray => {
                            return Err(CompileError::new(
                                format!(
                                    "recursion involving '{}' is not supported (all calls are inlined)",
                                    callee
                                ),
                                span,
                            ));
                        }
                        Mark::White => visit(j, program, index, marks)?,
                        Mark::Black => {}
                    }
                }
            }
            marks[i] = Mark::Black;
            Ok(())
        }

        for i in 0..names.len() {
            if marks[i] == Mark::White {
                visit(i, self.program, &index, &mut marks)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap(), "main")
    }

    #[test]
    fn valid_program_passes() {
        check_src(
            "int buf[8];\nint helper(int x) { return x * 2; }\nint main() { int s = 0; for (int i = 0; i < 8; i++) { buf[i] = helper(i); s += buf[i]; } return s; }",
        )
        .unwrap();
    }

    #[test]
    fn undeclared_variable() {
        let e = check_src("int main() { return q; }").unwrap_err();
        assert!(e.to_string().contains("undeclared variable 'q'"));
    }

    #[test]
    fn undeclared_function() {
        let e = check_src("int main() { return f(1); }").unwrap_err();
        assert!(e.to_string().contains("undeclared function 'f'"));
    }

    #[test]
    fn arity_mismatch() {
        let e = check_src("int f(int a) { return a; } int main() { return f(1, 2); }").unwrap_err();
        assert!(e.to_string().contains("takes 1 arguments, 2 given"));
    }

    #[test]
    fn array_used_as_scalar() {
        let e = check_src("int a[4]; int main() { return a; }").unwrap_err();
        assert!(e.to_string().contains("used as a scalar"));
    }

    #[test]
    fn scalar_indexed_as_array() {
        let e = check_src("int main() { int x = 0; return x[1]; }").unwrap_err();
        assert!(e.to_string().contains("not an array"));
    }

    #[test]
    fn missing_entry() {
        let e = check_src("int f() { return 0; }").unwrap_err();
        assert!(e.to_string().contains("entry function 'main' not found"));
    }

    #[test]
    fn entry_with_params_rejected() {
        let e = check_src("int main(int argc) { return argc; }").unwrap_err();
        assert!(e.to_string().contains("must take no parameters"));
    }

    #[test]
    fn direct_recursion_rejected() {
        let e =
            check_src("int main() { return 0; } int f(int n) { return f(n - 1); }").unwrap_err();
        assert!(e.to_string().contains("recursion"));
    }

    #[test]
    fn mutual_recursion_rejected() {
        let e = check_src(
            "int main() { return 0; } int f(int n) { return g(n); } int g(int n) { return f(n); }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("recursion"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = check_src("int main() { break; return 0; }").unwrap_err();
        assert!(e.to_string().contains("outside of a loop"));
    }

    #[test]
    fn continue_in_for_step_scope_allowed() {
        check_src("int main() { for (int i = 0; i < 4; i++) { continue; } return 0; }").unwrap();
    }

    #[test]
    fn void_return_with_value_rejected() {
        let e = check_src("void f() { return 1; } int main() { return 0; }").unwrap_err();
        assert!(e.to_string().contains("void function"));
    }

    #[test]
    fn nonvoid_bare_return_rejected() {
        let e = check_src("int f() { return; } int main() { return 0; }").unwrap_err();
        assert!(e.to_string().contains("without a value"));
    }

    #[test]
    fn duplicate_declaration_same_scope() {
        let e = check_src("int main() { int x = 1; int x = 2; return x; }").unwrap_err();
        assert!(e.to_string().contains("duplicate declaration"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        check_src("int main() { int x = 1; { int x = 2; x = 3; } return x; }").unwrap();
    }

    #[test]
    fn duplicate_global_rejected() {
        let e = check_src("int a[2]; int a[3]; int main() { return 0; }").unwrap_err();
        assert!(e.to_string().contains("duplicate global"));
    }

    #[test]
    fn zero_length_array_rejected() {
        let e = check_src("int main() { int a[0]; return 0; }").unwrap_err();
        assert!(e.to_string().contains("zero length"));
    }
}
