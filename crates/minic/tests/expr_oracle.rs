//! Differential testing of the whole frontend + interpreter pipeline:
//! random expression trees are rendered to mini-C, compiled, interpreted,
//! and compared against a direct Rust evaluation of the same tree.

use amdrel_minic::compile_to_ir;
use proptest::prelude::*;

/// A little expression AST we can both render to mini-C and evaluate.
#[derive(Debug, Clone)]
enum E {
    Const(i64),
    Var(usize),
    Bin(&'static str, Box<E>, Box<E>),
    Un(&'static str, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const VARS: usize = 4;

fn leaf() -> impl Strategy<Value = E> {
    prop_oneof![
        (-1000i64..1000).prop_map(E::Const),
        (0usize..VARS).prop_map(E::Var),
    ]
}

fn expr() -> impl Strategy<Value = E> {
    leaf().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("=="),
                    Just("!="),
                    Just("&&"),
                    Just("||"),
                ],
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            (prop_oneof![Just("-"), Just("~"), Just("!")], inner.clone())
                .prop_map(|(op, a)| E::Un(op, Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Ternary(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Const(c) if *c < 0 => format!("(0 - {})", -c),
        E::Const(c) => c.to_string(),
        E::Var(i) => format!("v{i}"),
        E::Bin(op, a, b) => format!("({} {op} {})", render(a), render(b)),
        E::Un(op, a) => format!("({op}{})", render(a)),
        E::Ternary(c, a, b) => format!("({} ? {} : {})", render(c), render(a), render(b)),
    }
}

/// Evaluate with mini-C semantics (wrapping 64-bit, C-style booleans).
/// Returns `None` where mini-C would fault (division by zero, shift
/// range) so those cases are skipped.
fn eval(e: &E, vars: &[i64]) -> Option<i64> {
    Some(match e {
        E::Const(c) => *c,
        E::Var(i) => vars[*i],
        E::Bin(op, a, b) => {
            // Short-circuit forms must not evaluate the RHS eagerly when
            // mini-C wouldn't (the RHS may fault).
            match *op {
                "&&" => {
                    let l = eval(a, vars)?;
                    if l == 0 {
                        0
                    } else {
                        i64::from(eval(b, vars)? != 0)
                    }
                }
                "||" => {
                    let l = eval(a, vars)?;
                    if l != 0 {
                        1
                    } else {
                        i64::from(eval(b, vars)? != 0)
                    }
                }
                _ => {
                    let l = eval(a, vars)?;
                    let r = eval(b, vars)?;
                    match *op {
                        "+" => l.wrapping_add(r),
                        "-" => l.wrapping_sub(r),
                        "*" => l.wrapping_mul(r),
                        "/" => {
                            if r == 0 {
                                return None;
                            }
                            l.wrapping_div(r)
                        }
                        "%" => {
                            if r == 0 {
                                return None;
                            }
                            l.wrapping_rem(r)
                        }
                        "&" => l & r,
                        "|" => l | r,
                        "^" => l ^ r,
                        "<" => i64::from(l < r),
                        "<=" => i64::from(l <= r),
                        ">" => i64::from(l > r),
                        ">=" => i64::from(l >= r),
                        "==" => i64::from(l == r),
                        "!=" => i64::from(l != r),
                        _ => unreachable!(),
                    }
                }
            }
        }
        E::Un(op, a) => {
            let v = eval(a, vars)?;
            match *op {
                "-" => v.wrapping_neg(),
                "~" => !v,
                "!" => i64::from(v == 0),
                _ => unreachable!(),
            }
        }
        E::Ternary(c, a, b) => {
            if eval(c, vars)? != 0 {
                eval(a, vars)?
            } else {
                eval(b, vars)?
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn interpreter_matches_direct_evaluation(
        e in expr(),
        vars in prop::array::uniform4(-100i64..100),
    ) {
        let Some(expected) = eval(&e, &vars) else {
            // mini-C would fault (division by zero somewhere) — both
            // sides refusing is the agreement we want; the interpreter
            // path is checked in the else-branch below.
            return Ok(());
        };
        let src = format!(
            "int main() {{ long v0 = {}; long v1 = {}; long v2 = {}; long v3 = {}; return {}; }}",
            vars[0], vars[1], vars[2], vars[3], render(&e),
        );
        let src = src.replace("= -", "= 0 - "); // negative initialisers
        let ir = compile_to_ir(&src, "main").expect("generated source compiles");
        let exec = amdrel_profiler::Interpreter::new(&ir)
            .run(&[])
            .expect("generated source runs");
        prop_assert_eq!(
            exec.return_value,
            Some(expected),
            "expr {} with vars {:?}",
            render(&e),
            vars
        );
    }

    /// Faulting expressions (division/remainder by zero) are rejected by
    /// the interpreter rather than miscomputed: wrap any expression in a
    /// top-level division by a dynamically-zero denominator.
    #[test]
    fn faults_are_reported_not_miscomputed(
        e in expr(),
        vars in prop::array::uniform4(-100i64..100),
    ) {
        let faulting = E::Bin(
            "/",
            Box::new(e),
            Box::new(E::Bin("-", Box::new(E::Var(0)), Box::new(E::Var(0)))),
        );
        prop_assert!(eval(&faulting, &vars).is_none(), "oracle agrees it faults");
        let src = format!(
            "int main() {{ long v0 = {}; long v1 = {}; long v2 = {}; long v3 = {}; return {}; }}",
            vars[0], vars[1], vars[2], vars[3], render(&faulting),
        );
        let src = src.replace("= -", "= 0 - ");
        let ir = compile_to_ir(&src, "main").expect("generated source compiles");
        let r = amdrel_profiler::Interpreter::new(&ir).run(&[]);
        prop_assert!(r.is_err(), "fault must surface for {}", render(&faulting));
    }
}
