//! The 2D region model of the fine-grain fabric.
//!
//! The scalar area pool of [`FpgaDevice`](amdrel_finegrain::FpgaDevice)
//! (`usable_area()`) is quantised onto a `width × height` rectangle of
//! abstract area cells, partitioned into rectangular *reconfigurable
//! regions* — the unit a partial-reconfiguration controller can
//! reprogram independently. Every constructor is a pure function of its
//! integer inputs (integer square root, no floats, no RNG), so a grid
//! is bit-reproducible from `(usable_area, rows, cols)` alone.

use amdrel_finegrain::{FpgaConfigKey, FpgaDevice};

/// Integer square root (largest `r` with `r² ≤ n`), by Newton iteration.
fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// Smallest `r` with `r² ≥ n`.
fn ceil_sqrt(n: u64) -> u64 {
    let r = isqrt(n);
    if r * r < n {
        r + 1
    } else {
        r
    }
}

/// One rectangular reconfigurable region of a [`FabricGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    index: usize,
    x: u64,
    y: u64,
    width: u64,
    height: u64,
}

impl Region {
    /// Position of this region in [`FabricGrid::regions`] (row-major).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Left edge, in grid cells.
    pub fn x(&self) -> u64 {
        self.x
    }

    /// Bottom edge, in grid cells.
    pub fn y(&self) -> u64 {
        self.y
    }

    /// Width in grid cells.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Height in grid cells.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Area in grid cells (`width × height`) — what a region-granular
    /// reconfiguration load pays to reprogram this region.
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// `true` if this region overlaps the rectangle `[x, x+w) × [y, y+h)`.
    pub fn overlaps(&self, x: u64, y: u64, w: u64, h: u64) -> bool {
        self.x < x + w && x < self.x + self.width && self.y < y + h && y < self.y + self.height
    }

    /// Cells of this region covered by the rectangle `[x, x+w) × [y, y+h)`.
    pub fn overlap_area(&self, x: u64, y: u64, w: u64, h: u64) -> u64 {
        let ox = (self.x + self.width)
            .min(x + w)
            .saturating_sub(self.x.max(x));
        let oy = (self.y + self.height)
            .min(y + h)
            .saturating_sub(self.y.max(y));
        ox * oy
    }
}

/// The fine-grain fabric as a 2D grid of reconfigurable regions.
///
/// # Examples
///
/// ```
/// use amdrel_floorplan::FabricGrid;
///
/// // The paper's small device: 1500 area units, 70% usable → 1050.
/// let grid = FabricGrid::uniform(1050, 4);
/// assert_eq!(grid.len(), 4);
/// assert!(grid.area() >= 1050); // quantised up to the next rectangle
/// assert_eq!(grid.regions().iter().map(|r| r.area()).sum::<u64>(), grid.area());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FabricGrid {
    width: u64,
    height: u64,
    rows: u32,
    cols: u32,
    regions: Vec<Region>,
}

impl FabricGrid {
    /// A single full-fabric region: the degenerate grid under which a
    /// partial-reconfiguration runtime admits no partial loads and must
    /// behave exactly like the scalar area pool.
    ///
    /// # Panics
    ///
    /// Panics if `usable_area` is zero.
    pub fn full(usable_area: u64) -> FabricGrid {
        FabricGrid::shaped(usable_area, 1, 1)
    }

    /// `regions` equal horizontal bands of the quantised fabric
    /// rectangle (partial-reconfiguration regions on column-oriented
    /// fabrics are full-width stripes).
    ///
    /// # Panics
    ///
    /// Panics if `usable_area` is zero, `regions` is zero, or the
    /// rectangle is too short to give every band at least one row.
    pub fn uniform(usable_area: u64, regions: usize) -> FabricGrid {
        FabricGrid::shaped(usable_area, regions, 1)
    }

    /// A `rows × cols` grid of regions over the quantised fabric
    /// rectangle, indexed row-major. Cell remainders go to the
    /// lower-indexed rows/columns, so the split is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `usable_area` is zero, either dimension is zero, or
    /// the rectangle cannot give every region at least one cell in each
    /// dimension.
    pub fn shaped(usable_area: u64, rows: usize, cols: usize) -> FabricGrid {
        assert!(usable_area > 0, "usable area must be positive");
        assert!(
            rows > 0 && cols > 0,
            "region grid dimensions must be positive"
        );
        let width = ceil_sqrt(usable_area);
        let height = usable_area.div_ceil(width);
        assert!(
            rows as u64 <= height && cols as u64 <= width,
            "a {rows}x{cols} region grid needs at least {rows}x{cols} cells, \
             but {usable_area} area units quantise to {width}x{height}"
        );
        let col_edges = split_edges(width, cols as u64);
        let row_edges = split_edges(height, rows as u64);
        let mut regions = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                regions.push(Region {
                    index: r * cols + c,
                    x: col_edges[c],
                    y: row_edges[r],
                    width: col_edges[c + 1] - col_edges[c],
                    height: row_edges[r + 1] - row_edges[r],
                });
            }
        }
        FabricGrid {
            width,
            height,
            rows: rows as u32,
            cols: cols as u32,
            regions,
        }
    }

    /// [`FabricGrid::uniform`] over a device's routable area.
    ///
    /// # Panics
    ///
    /// As [`FabricGrid::uniform`].
    pub fn for_device(device: &FpgaDevice, regions: usize) -> FabricGrid {
        FabricGrid::uniform(device.usable_area(), regions)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Total grid area in cells (`width × height ≥ usable_area`).
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// Region rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Region columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Always `false` — a grid has at least one region.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// All regions, row-major.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// One region by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn region(&self, index: usize) -> &Region {
        &self.regions[index]
    }

    /// Indices of the regions overlapping `[x, x+w) × [y, y+h)`,
    /// ascending.
    pub fn regions_touching(&self, x: u64, y: u64, w: u64, h: u64) -> Vec<usize> {
        self.regions
            .iter()
            .filter(|r| r.overlaps(x, y, w, h))
            .map(|r| r.index)
            .collect()
    }

    /// The placement-aware extension of
    /// [`FpgaDevice::config_key`](amdrel_finegrain::FpgaDevice::config_key):
    /// two `(device, grid)` pairs with equal keys price every
    /// region-granular reconfiguration identically.
    pub fn config_key(&self, device: &FpgaDevice) -> RegionConfigKey {
        RegionConfigKey {
            device: device.config_key(),
            width: self.width,
            height: self.height,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

/// `parts + 1` monotone edges splitting `[0, extent)` into `parts`
/// near-equal intervals, remainder to the lower-indexed intervals.
fn split_edges(extent: u64, parts: u64) -> Vec<u64> {
    let base = extent / parts;
    let extra = extent % parts;
    let mut edges = Vec::with_capacity(parts as usize + 1);
    let mut at = 0;
    edges.push(0);
    for i in 0..parts {
        at += base + u64::from(i < extra);
        edges.push(at);
    }
    edges
}

/// Hashable identity of a device characterisation *plus* its region
/// grid geometry. See [`FabricGrid::config_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionConfigKey {
    device: FpgaConfigKey,
    width: u64,
    height: u64,
    rows: u32,
    cols: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_covers_the_usable_area() {
        for area in [1, 2, 3, 7, 100, 1050, 3500, 123_457] {
            let grid = FabricGrid::full(area);
            assert!(grid.area() >= area, "area {area}");
            assert!((grid.width() - 1).pow(2) < area, "tight width for {area}");
            assert_eq!(grid.len(), 1);
            assert_eq!(grid.region(0).area(), grid.area());
        }
    }

    #[test]
    fn uniform_bands_tile_the_grid_exactly() {
        let grid = FabricGrid::uniform(1050, 4);
        assert_eq!((grid.width(), grid.height()), (33, 32));
        assert_eq!(grid.len(), 4);
        let total: u64 = grid.regions().iter().map(|r| r.area()).sum();
        assert_eq!(total, grid.area());
        // Bands are disjoint and stacked bottom-up.
        for pair in grid.regions().windows(2) {
            assert_eq!(pair[0].y() + pair[0].height(), pair[1].y());
            assert_eq!(pair[0].x(), 0);
            assert_eq!(pair[0].width(), grid.width());
        }
        // The 32 rows split 8/8/8/8.
        assert!(grid.regions().iter().all(|r| r.height() == 8));
    }

    #[test]
    fn shaped_grid_is_row_major_with_remainder_first() {
        let grid = FabricGrid::shaped(1050, 2, 3);
        assert_eq!(grid.len(), 6);
        assert_eq!((grid.rows(), grid.cols()), (2, 3));
        // Width 33 into 3 columns: 11 each; height 32 into 2 rows: 16 each.
        assert!(grid
            .regions()
            .iter()
            .all(|r| r.width() == 11 && r.height() == 16));
        assert_eq!(grid.region(4).index(), 4);
        assert_eq!((grid.region(4).x(), grid.region(4).y()), (11, 16));
        // Remainder goes to the first rows/columns.
        let odd = FabricGrid::shaped(1050, 3, 2);
        let heights: Vec<u64> = (0..3).map(|r| odd.region(r * 2).height()).collect();
        assert_eq!(heights, [11, 11, 10]);
        let widths: Vec<u64> = (0..2).map(|c| odd.region(c).width()).collect();
        assert_eq!(widths, [17, 16]);
    }

    #[test]
    fn regions_touching_reports_overlaps() {
        let grid = FabricGrid::uniform(1050, 4); // 33x32, bands of height 8
        assert_eq!(grid.regions_touching(0, 0, 5, 5), [0]);
        assert_eq!(grid.regions_touching(0, 6, 5, 5), [0, 1]);
        assert_eq!(grid.regions_touching(0, 0, 33, 32), [0, 1, 2, 3]);
        assert!(grid.regions_touching(0, 32, 5, 5).is_empty());
        let r = grid.region(1);
        assert_eq!(r.overlap_area(0, 6, 5, 5), 5 * 3);
        assert_eq!(r.overlap_area(0, 0, 5, 5), 0);
    }

    #[test]
    fn config_key_tracks_device_and_geometry() {
        let dev = FpgaDevice::new(1500);
        let grid = FabricGrid::for_device(&dev, 4);
        assert_eq!(
            grid.config_key(&dev),
            FabricGrid::uniform(1050, 4).config_key(&dev)
        );
        assert_ne!(
            grid.config_key(&dev),
            FabricGrid::uniform(1050, 2).config_key(&dev)
        );
        assert_ne!(
            grid.config_key(&dev),
            grid.config_key(&FpgaDevice::new(5000))
        );
        assert_ne!(
            FabricGrid::shaped(1050, 4, 1).config_key(&dev),
            FabricGrid::shaped(1050, 1, 4).config_key(&dev)
        );
    }

    #[test]
    #[should_panic(expected = "region grid needs")]
    fn oversubscribed_grid_panics() {
        let _ = FabricGrid::uniform(9, 4); // 3x3 rectangle, 4 bands
    }

    #[test]
    #[should_panic(expected = "usable area")]
    fn zero_area_panics() {
        let _ = FabricGrid::full(0);
    }
}
