//! # amdrel-floorplan — 2D region model and deterministic floorplanner
//!
//! The paper prices reconfiguration by *logical* partition area on a
//! scalar pool. Real partial-reconfiguration fabrics reprogram whole
//! rectangular *regions*: what a load costs depends on where the
//! configuration lands and how fragmented the fabric is (Chen et al.,
//! arXiv 1803.03748; Ding et al., arXiv 2212.05397). This crate adds
//! the placement layer the scalar pool abstracts away:
//!
//! * [`FabricGrid`] — the usable area of an
//!   [`FpgaDevice`](amdrel_finegrain::FpgaDevice) quantised onto a 2D
//!   cell rectangle and split into rectangular reconfigurable regions,
//!   with [`RegionConfigKey`] extending the device's `config_key()`
//!   with grid geometry;
//! * [`Floorplanner`] — a deterministic first-fit-decreasing placer
//!   with a skyline packer per region and owner affinity, taking
//!   [`Footprint`]s (temporal-partition areas tagged with a tenant)
//!   and producing a [`Placement`];
//! * [`FragmentationStats`] — internal/external fragmentation,
//!   worst-region occupancy, and placement failures, held as integer
//!   permille so objective vectors stay `Eq`/`Hash`.
//!
//! Everything here is pure integer arithmetic over its inputs — no
//! RNG, no floats on any decision path — so placements are
//! bit-reproducible across runs and hosts, preserving the workspace's
//! determinism contract.
//!
//! # Examples
//!
//! ```
//! use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint};
//!
//! // The paper's small device (1500 units, 70% usable) as 4 regions.
//! let grid = FabricGrid::uniform(1050, 4);
//! let tenants = [
//!     Footprint::new(0, 200),
//!     Footprint::new(0, 120),
//!     Footprint::new(1, 150),
//! ];
//! let placement = Floorplanner.place(&grid, &tenants);
//! assert!(placement.failures().is_empty());
//! // Each tenant is resident in its own region set, so reloading
//! // tenant 1 leaves tenant 0's regions untouched.
//! assert_ne!(placement.touched_regions(0), placement.touched_regions(1));
//! assert!(placement.stats().worst_region_occupancy() <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod grid;
mod planner;

pub use grid::{FabricGrid, Region, RegionConfigKey};
pub use planner::{
    footprints_of, Floorplanner, Footprint, FragmentationStats, PlacedRect, Placement,
};
