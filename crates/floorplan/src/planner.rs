//! The deterministic floorplanner: first-fit-decreasing over regions
//! with a skyline (bottom-left) packer inside each region.
//!
//! Footprints are sorted by area descending (original index breaking
//! ties, so the order is a pure function of the input sequence) and
//! offered to regions first-fit with *owner affinity*: regions already
//! hosting the footprint's owner first, then regions hosting nobody,
//! then the rest — all ascending by region index. Inside a region the
//! footprint is shaped into the squarest rectangle the region's height
//! admits and dropped at the lowest-then-leftmost position of that
//! region's skyline. A footprint no region can hold geometrically is
//! recorded as a placement failure and *assigned* (without geometry) to
//! its owner's lowest home region — or the lowest empty region, or the
//! least-loaded one — so every owner still gets a deterministic
//! residency set. The planner consumes no randomness: identical inputs
//! give identical [`Placement`]s on every run and host.

use crate::grid::FabricGrid;
use amdrel_finegrain::TemporalPartitioning;
use std::collections::BTreeMap;

/// One rectangle of configuration to place: the area of a temporal
/// partition, tagged with the owner (application / tenant index) whose
/// region residency it determines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// Owner tag grouping footprints (e.g. the profile index of the
    /// application whose configuration this partition belongs to).
    pub owner: usize,
    /// Logical configuration area, in the same abstract units as
    /// [`TemporalPartition::area`](amdrel_finegrain::TemporalPartition).
    pub area: u64,
}

impl Footprint {
    /// A footprint of `area` units owned by `owner`.
    pub fn new(owner: usize, area: u64) -> Footprint {
        Footprint { owner, area }
    }
}

/// The footprints of one [`TemporalPartitioning`], in partition order,
/// all tagged with `owner`.
pub fn footprints_of(partitioning: &TemporalPartitioning, owner: usize) -> Vec<Footprint> {
    partitioning
        .partition_areas()
        .map(|area| Footprint::new(owner, area))
        .collect()
}

/// One footprint geometrically placed on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacedRect {
    /// Index of the footprint in the input slice.
    pub footprint: usize,
    /// The footprint's owner tag.
    pub owner: usize,
    /// Index of the region holding the rectangle.
    pub region: usize,
    /// Left edge, in grid (not region-local) cells.
    pub x: u64,
    /// Bottom edge, in grid cells.
    pub y: u64,
    /// Rectangle width (cells).
    pub width: u64,
    /// Rectangle height (cells).
    pub height: u64,
    /// Logical footprint area (≤ `width × height`; the difference is
    /// internal fragmentation).
    pub area: u64,
}

impl PlacedRect {
    /// Cells the rectangle occupies (`width × height`).
    pub fn cells(&self) -> u64 {
        self.width * self.height
    }
}

/// Placement-quality metrics, all held as integer permille so the
/// struct stays `Eq`/`Hash` (objective vectors and memo keys need exact
/// comparison). The `f64` accessors return each metric in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FragmentationStats {
    internal_permille: u64,
    external_permille: u64,
    worst_region_permille: u64,
    placement_failures: u64,
}

impl FragmentationStats {
    /// Internal fragmentation, permille: cells wasted padding logical
    /// areas to rectangles, over all cells the placed rectangles claim.
    pub fn internal_permille(&self) -> u64 {
        self.internal_permille
    }

    /// External fragmentation, permille: `1 − largest free region /
    /// total free`, 0 when nothing is free or nothing was placed.
    pub fn external_permille(&self) -> u64 {
        self.external_permille
    }

    /// Occupancy of the fullest region, permille (clamped to 1000 when
    /// fallback assignment oversubscribes a region).
    pub fn worst_region_permille(&self) -> u64 {
        self.worst_region_permille
    }

    /// Footprints no region could hold geometrically (each fell back to
    /// a deterministic residency assignment).
    pub fn placement_failures(&self) -> u64 {
        self.placement_failures
    }

    /// The `fragmentation` objective value, permille:
    /// [`Self::external_permille`], saturated to 1000 whenever any
    /// footprint failed geometric placement. An overfull grid has no
    /// free space to fragment, which would otherwise score it as a
    /// *perfect* floorplan; for optimisation it is the worst one.
    pub fn fragmentation_permille(&self) -> u64 {
        if self.placement_failures > 0 {
            1000
        } else {
            self.external_permille
        }
    }

    /// [`Self::internal_permille`] in `[0, 1]`.
    pub fn internal(&self) -> f64 {
        self.internal_permille as f64 / 1000.0
    }

    /// [`Self::external_permille`] in `[0, 1]`.
    pub fn external(&self) -> f64 {
        self.external_permille as f64 / 1000.0
    }

    /// [`Self::worst_region_permille`] in `[0, 1]`.
    pub fn worst_region_occupancy(&self) -> f64 {
        self.worst_region_permille as f64 / 1000.0
    }
}

/// The result of placing a footprint set on a [`FabricGrid`]: the
/// geometric rectangles, per-region load, per-owner touched-region
/// sets, and the [`FragmentationStats`] summarising them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    rects: Vec<PlacedRect>,
    failed: Vec<usize>,
    region_used: Vec<u64>,
    region_areas: Vec<u64>,
    touched: BTreeMap<usize, Vec<usize>>,
    stats: FragmentationStats,
}

impl Placement {
    /// The geometrically placed rectangles, in placement order
    /// (area-descending).
    pub fn rects(&self) -> &[PlacedRect] {
        &self.rects
    }

    /// Input indices of footprints no region could hold, ascending.
    pub fn failures(&self) -> &[usize] {
        &self.failed
    }

    /// Cells of region `r` claimed by placed rectangles plus logical
    /// areas assigned on fallback (may exceed the region's area then).
    pub fn region_load(&self, r: usize) -> u64 {
        self.region_used[r]
    }

    /// Per-region loads, indexed like the grid's regions.
    pub fn region_loads(&self) -> &[u64] {
        &self.region_used
    }

    /// Areas of the grid's regions (copied so a `Placement` stands on
    /// its own).
    pub fn region_areas(&self) -> &[u64] {
        &self.region_areas
    }

    /// Sorted, duplicate-free indices of the regions `owner`'s
    /// footprints occupy — the regions a runtime must reprogram to make
    /// that owner resident. Empty for owners with no footprints.
    pub fn touched_regions(&self, owner: usize) -> &[usize] {
        self.touched.get(&owner).map_or(&[], Vec::as_slice)
    }

    /// Total cells claimed by placed rectangles (≤ the grid area).
    pub fn placed_cells(&self) -> u64 {
        self.rects.iter().map(PlacedRect::cells).sum()
    }

    /// The placement-quality summary.
    pub fn stats(&self) -> FragmentationStats {
        self.stats
    }
}

/// One skyline segment: the packing frontier is `y` over `[x, x+width)`
/// in region-local coordinates.
#[derive(Debug, Clone, Copy)]
struct Seg {
    x: u64,
    width: u64,
    y: u64,
}

/// The deterministic first-fit-decreasing skyline floorplanner.
///
/// # Examples
///
/// ```
/// use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint};
///
/// let grid = FabricGrid::uniform(1050, 4);
/// let footprints = [Footprint::new(0, 200), Footprint::new(1, 150)];
/// let placement = Floorplanner.place(&grid, &footprints);
/// assert!(placement.failures().is_empty());
/// // The two tenants land in disjoint regions.
/// let a = placement.touched_regions(0);
/// let b = placement.touched_regions(1);
/// assert!(!a.is_empty() && a.iter().all(|r| !b.contains(r)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Floorplanner;

impl Floorplanner {
    /// Place `footprints` on `grid` (see the module docs for the
    /// algorithm). Zero-area footprints occupy nothing and touch no
    /// region.
    pub fn place(&self, grid: &FabricGrid, footprints: &[Footprint]) -> Placement {
        let n_regions = grid.len();
        let mut order: Vec<usize> = (0..footprints.len())
            .filter(|&i| footprints[i].area > 0)
            .collect();
        order.sort_by(|&a, &b| footprints[b].area.cmp(&footprints[a].area).then(a.cmp(&b)));

        let mut skylines: Vec<Vec<Seg>> = grid
            .regions()
            .iter()
            .map(|r| {
                vec![Seg {
                    x: 0,
                    width: r.width(),
                    y: 0,
                }]
            })
            .collect();
        let mut region_used = vec![0u64; n_regions];
        let mut hosts: Vec<Vec<usize>> = vec![Vec::new(); n_regions];
        let mut touched: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut rects = Vec::with_capacity(order.len());
        let mut failed = Vec::new();

        for &idx in &order {
            let fp = &footprints[idx];
            let candidates = candidate_order(&hosts, fp.owner);
            let mut placed = false;
            for &r in &candidates {
                let region = grid.region(r);
                let Some((w, h)) = shape(fp.area, region.width(), region.height()) else {
                    continue;
                };
                if let Some((lx, ly)) = best_position(&skylines[r], w, h, region.height()) {
                    raise(&mut skylines[r], lx, w, ly + h);
                    rects.push(PlacedRect {
                        footprint: idx,
                        owner: fp.owner,
                        region: r,
                        x: region.x() + lx,
                        y: region.y() + ly,
                        width: w,
                        height: h,
                        area: fp.area,
                    });
                    occupy(
                        &mut region_used,
                        &mut hosts,
                        &mut touched,
                        r,
                        fp.owner,
                        w * h,
                    );
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Fallback residency: the owner's lowest home region,
                // else the lowest empty one, else the least-loaded.
                let r = *candidates
                    .iter()
                    .find(|&&r| hosts[r].contains(&fp.owner) || hosts[r].is_empty())
                    .unwrap_or_else(|| {
                        candidates
                            .iter()
                            .min_by_key(|&&r| (region_used[r], r))
                            .expect("grids have at least one region")
                    });
                occupy(
                    &mut region_used,
                    &mut hosts,
                    &mut touched,
                    r,
                    fp.owner,
                    fp.area,
                );
                failed.push(idx);
            }
        }
        failed.sort_unstable();
        for owned in touched.values_mut() {
            owned.sort_unstable();
        }

        let region_areas: Vec<u64> = grid.regions().iter().map(|r| r.area()).collect();
        let claimed: u64 = rects.iter().map(PlacedRect::cells).sum();
        let pad: u64 = rects.iter().map(|r: &PlacedRect| r.cells() - r.area).sum();
        let internal_permille = (pad * 1000).checked_div(claimed).unwrap_or(0);

        let free: Vec<u64> = region_areas
            .iter()
            .zip(&region_used)
            .map(|(&a, &u)| a.saturating_sub(u))
            .collect();
        let total_free: u64 = free.iter().sum();
        let largest_free = free.iter().copied().max().unwrap_or(0);
        let untouched = region_used.iter().all(|&u| u == 0);
        let external_permille = if total_free == 0 || untouched {
            0
        } else {
            1000 - largest_free * 1000 / total_free
        };

        let worst_region_permille = region_areas
            .iter()
            .zip(&region_used)
            .map(|(&a, &u)| (u * 1000 / a).min(1000))
            .max()
            .unwrap_or(0);

        let stats = FragmentationStats {
            internal_permille,
            external_permille,
            worst_region_permille,
            placement_failures: failed.len() as u64,
        };
        Placement {
            rects,
            failed,
            region_used,
            region_areas,
            touched,
            stats,
        }
    }
}

/// Record `cells` of owner `o`'s configuration in region `r`.
fn occupy(
    region_used: &mut [u64],
    hosts: &mut [Vec<usize>],
    touched: &mut BTreeMap<usize, Vec<usize>>,
    r: usize,
    o: usize,
    cells: u64,
) {
    region_used[r] += cells;
    if !hosts[r].contains(&o) {
        hosts[r].push(o);
    }
    let owned = touched.entry(o).or_default();
    if !owned.contains(&r) {
        owned.push(r);
    }
}

/// First-fit order for `owner`: its home regions, then empty regions,
/// then the rest — each group ascending by index.
fn candidate_order(hosts: &[Vec<usize>], owner: usize) -> Vec<usize> {
    let mut cands = Vec::with_capacity(hosts.len());
    cands.extend((0..hosts.len()).filter(|&r| hosts[r].contains(&owner)));
    cands.extend((0..hosts.len()).filter(|&r| hosts[r].is_empty()));
    cands.extend((0..hosts.len()).filter(|&r| !hosts[r].is_empty() && !hosts[r].contains(&owner)));
    cands
}

/// The squarest `w × h` rectangle of at least `area` cells that a
/// `rw × rh` region admits, or `None` if the region is too small.
fn shape(area: u64, rw: u64, rh: u64) -> Option<(u64, u64)> {
    if area > rw * rh {
        return None;
    }
    let w = ceil_sqrt(area).max(area.div_ceil(rh)).min(rw);
    let h = area.div_ceil(w);
    (h <= rh).then_some((w, h))
}

/// The lowest-then-leftmost skyline position admitting a `w × h` rect
/// under the region ceiling `rh`, or `None`. Callers guarantee `w` fits
/// the region width.
fn best_position(skyline: &[Seg], w: u64, h: u64, rh: u64) -> Option<(u64, u64)> {
    let rw = skyline.iter().map(|s| s.x + s.width).max().unwrap_or(0);
    let mut best: Option<(u64, u64)> = None; // (y, x)
    for seg in skyline {
        let x = seg.x;
        if x + w > rw {
            continue;
        }
        let y = skyline
            .iter()
            .filter(|s| s.x < x + w && x < s.x + s.width)
            .map(|s| s.y)
            .max()
            .unwrap_or(0);
        if y + h > rh {
            continue;
        }
        if best.is_none() || (y, x) < best.unwrap() {
            best = Some((y, x));
        }
    }
    best.map(|(y, x)| (x, y))
}

/// Raise the skyline to `top` over `[x, x+w)`, merging equal-height
/// neighbours.
fn raise(skyline: &mut Vec<Seg>, x: u64, w: u64, top: u64) {
    let end = x + w;
    let mut out: Vec<Seg> = Vec::with_capacity(skyline.len() + 2);
    for seg in skyline.iter() {
        let (sx, se) = (seg.x, seg.x + seg.width);
        if se <= x || sx >= end {
            out.push(*seg);
            continue;
        }
        if sx < x {
            out.push(Seg {
                x: sx,
                width: x - sx,
                y: seg.y,
            });
        }
        if se > end {
            out.push(Seg {
                x: end,
                width: se - end,
                y: seg.y,
            });
        }
    }
    out.push(Seg {
        x,
        width: w,
        y: top,
    });
    out.sort_by_key(|s| s.x);
    let mut merged: Vec<Seg> = Vec::with_capacity(out.len());
    for seg in out {
        if let Some(last) = merged.last_mut() {
            if last.y == seg.y && last.x + last.width == seg.x {
                last.width += seg.width;
                continue;
            }
        }
        merged.push(seg);
    }
    *skyline = merged;
}

fn ceil_sqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    if x * x < n {
        x + 1
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(grid: &FabricGrid, areas: &[(usize, u64)]) -> Placement {
        let fps: Vec<Footprint> = areas.iter().map(|&(o, a)| Footprint::new(o, a)).collect();
        Floorplanner.place(grid, &fps)
    }

    #[test]
    fn empty_input_places_nothing() {
        let grid = FabricGrid::uniform(1050, 4);
        let p = place(&grid, &[]);
        assert!(p.rects().is_empty());
        assert!(p.failures().is_empty());
        assert_eq!(p.stats(), FragmentationStats::default());
        assert_eq!(p.touched_regions(0), &[] as &[usize]);
    }

    #[test]
    fn zero_area_footprints_touch_nothing() {
        let grid = FabricGrid::uniform(1050, 4);
        let p = place(&grid, &[(0, 0), (1, 100)]);
        assert_eq!(p.rects().len(), 1);
        assert!(p.failures().is_empty());
        assert_eq!(p.touched_regions(0), &[] as &[usize]);
        assert!(!p.touched_regions(1).is_empty());
    }

    #[test]
    fn skyline_packs_one_region_tightly() {
        let grid = FabricGrid::full(100); // 10x10, one region
        let p = place(&grid, &[(0, 25), (0, 25), (0, 25), (0, 25)]);
        assert!(p.failures().is_empty());
        assert_eq!(p.placed_cells(), 100);
        assert_eq!(p.region_load(0), 100);
        assert_eq!(p.touched_regions(0), &[0]);
        assert_eq!(p.stats().worst_region_permille(), 1000);
        assert_eq!(p.stats().internal_permille(), 0);
        assert_eq!(
            p.stats().external_permille(),
            0,
            "one region, one free block"
        );
    }

    #[test]
    fn rects_never_overlap_and_stay_inside() {
        let grid = FabricGrid::shaped(1024, 2, 2); // 32x32, 16x16 quadrants
        let p = place(&grid, &[(0, 100), (1, 64), (2, 49), (3, 36), (0, 100)]);
        assert!(p.failures().is_empty());
        for (i, a) in p.rects().iter().enumerate() {
            assert!(a.x + a.width <= grid.width() && a.y + a.height <= grid.height());
            let region = grid.region(a.region);
            assert_eq!(region.overlap_area(a.x, a.y, a.width, a.height), a.cells());
            for b in &p.rects()[i + 1..] {
                let disjoint = a.x + a.width <= b.x
                    || b.x + b.width <= a.x
                    || a.y + a.height <= b.y
                    || b.y + b.height <= a.y;
                assert!(disjoint, "{a:?} overlaps {b:?}");
            }
        }
        assert!(p.placed_cells() <= grid.area());
        let used: u64 = p.region_loads().iter().sum();
        assert_eq!(used, p.placed_cells());
    }

    #[test]
    fn placement_is_deterministic_and_ffd_ordered() {
        let grid = FabricGrid::shaped(2000, 2, 2);
        let fps = [(0, 333), (1, 333), (0, 500), (2, 40)];
        let a = place(&grid, &fps);
        let b = place(&grid, &fps);
        assert_eq!(a, b);
        // Placement order is area-descending with input-index ties.
        let order: Vec<usize> = a.rects().iter().map(|r| r.footprint).collect();
        assert_eq!(order, [2, 0, 1, 3]);
    }

    #[test]
    fn owners_prefer_their_home_region() {
        let grid = FabricGrid::shaped(1024, 2, 2);
        // Owner 0 places twice; both rects land in its first region even
        // though region 1 is empty when the second is placed.
        let p = place(&grid, &[(0, 64), (0, 49)]);
        assert!(p.failures().is_empty());
        assert_eq!(p.touched_regions(0).len(), 1);
    }

    #[test]
    fn disjoint_tenants_get_disjoint_regions_when_capacity_allows() {
        let grid = FabricGrid::shaped(1024, 2, 2);
        let p = place(&grid, &[(0, 200), (1, 200), (2, 200), (3, 200)]);
        assert!(p.failures().is_empty());
        for a in 0..4usize {
            assert_eq!(p.touched_regions(a).len(), 1, "tenant {a} stays home");
            for b in (a + 1)..4 {
                assert_ne!(
                    p.touched_regions(a),
                    p.touched_regions(b),
                    "tenants {a} and {b} share a region"
                );
            }
        }
    }

    #[test]
    fn oversized_footprints_fail_but_keep_a_sticky_residency() {
        let grid = FabricGrid::uniform(100, 2); // 10x10, bands of 5 rows
        let p = place(&grid, &[(7, 2_000), (7, 2_000), (3, 16)]);
        assert_eq!(p.failures(), &[0, 1]);
        assert_eq!(p.stats().placement_failures(), 2);
        // Both failed footprints pile onto owner 7's first region; the
        // placeable tenant gets the other one.
        assert_eq!(p.touched_regions(7), &[0]);
        assert_eq!(p.touched_regions(3), &[1]);
        assert_eq!(p.stats().worst_region_permille(), 1000);
        // Any geometric failure saturates the objective value: an
        // overfull grid must never look like a perfect floorplan.
        assert_eq!(p.stats().fragmentation_permille(), 1000);
    }

    #[test]
    fn single_region_has_no_external_fragmentation() {
        let grid = FabricGrid::full(1050);
        let p = place(&grid, &[(0, 100), (1, 200), (2, 50)]);
        assert_eq!(p.stats().external_permille(), 0);
        assert!(p.stats().worst_region_occupancy() > 0.0);
        // With no failures the objective is the external fragmentation.
        assert_eq!(p.stats().fragmentation_permille(), 0);
    }

    #[test]
    fn footprints_of_tags_every_partition() {
        use amdrel_cdfg::{Dfg, OpKind};
        use amdrel_finegrain::{temporal_partition, FpgaDevice};
        let mut dfg = Dfg::new("wide");
        for _ in 0..50 {
            dfg.add_op(OpKind::Add, 32); // 1500 units: 2 partitions at 1050
        }
        let parts = temporal_partition(&dfg, &FpgaDevice::new(1500)).unwrap();
        let fps = footprints_of(&parts, 9);
        assert_eq!(fps.len(), parts.len());
        assert!(fps.iter().all(|f| f.owner == 9));
        assert_eq!(fps.iter().map(|f| f.area).sum::<u64>(), parts.total_area());
    }
}
