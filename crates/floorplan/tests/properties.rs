//! Property tests for the floorplanner: placement determinism, rect
//! disjointness, area conservation, and metric ranges — the invariants
//! the placement-aware reconfiguration cost model leans on.

use amdrel_core::rng::SplitMix64;
use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint, PlacedRect, Placement};
use proptest::prelude::*;

/// Expand a seed into a footprint set: 0–24 footprints over 1–6 owners
/// with areas spanning trivial to deliberately unplaceable.
fn footprints(seed: u64) -> Vec<Footprint> {
    let mut rng = SplitMix64::new(seed);
    let owners = 1 + rng.below(6) as usize;
    let n = rng.below(25) as usize;
    (0..n)
        .map(|_| Footprint::new(rng.below(owners as u64) as usize, rng.below(2_000)))
        .collect()
}

/// A grid drawn from the same seed space: area 64..=8063, 1–6 bands or
/// a 2D split when the rectangle admits one.
fn grid(seed: u64) -> FabricGrid {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let area = 64 + rng.below(8_000);
    match rng.below(3) {
        0 => FabricGrid::full(area),
        1 => FabricGrid::uniform(area, 1 + rng.below(6) as usize),
        _ => FabricGrid::shaped(area, 1 + rng.below(3) as usize, 1 + rng.below(3) as usize),
    }
}

fn place(seed: u64) -> (FabricGrid, Vec<Footprint>, Placement) {
    let grid = grid(seed);
    let fps = footprints(seed);
    let placement = Floorplanner.place(&grid, &fps);
    (grid, fps, placement)
}

fn disjoint(a: &PlacedRect, b: &PlacedRect) -> bool {
    a.x + a.width <= b.x || b.x + b.width <= a.x || a.y + a.height <= b.y || b.y + b.height <= a.y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The same grid and footprints give the same placement, always.
    #[test]
    fn placement_is_deterministic(seed in 0u64..1_000_000) {
        let (grid, fps, a) = place(seed);
        let b = Floorplanner.place(&grid, &fps);
        prop_assert_eq!(a, b);
    }

    /// No two placed rectangles share a cell, and every rectangle lies
    /// inside exactly one region of the grid.
    #[test]
    fn placed_rects_are_disjoint_and_in_bounds(seed in 0u64..1_000_000) {
        let (grid, _, p) = place(seed);
        for (i, a) in p.rects().iter().enumerate() {
            prop_assert!(a.x + a.width <= grid.width());
            prop_assert!(a.y + a.height <= grid.height());
            let region = grid.region(a.region);
            prop_assert_eq!(region.overlap_area(a.x, a.y, a.width, a.height), a.cells());
            for b in &p.rects()[i + 1..] {
                prop_assert!(disjoint(a, b), "{:?} overlaps {:?}", a, b);
            }
        }
    }

    /// Areas are conserved: every positive-area footprint is either
    /// placed (with its logical area intact under rectangle padding) or
    /// reported failed; placed cells never exceed the grid.
    #[test]
    fn areas_are_conserved(seed in 0u64..1_000_000) {
        let (grid, fps, p) = place(seed);
        let positive = fps.iter().filter(|f| f.area > 0).count();
        prop_assert_eq!(p.rects().len() + p.failures().len(), positive);
        for r in p.rects() {
            prop_assert_eq!(r.area, fps[r.footprint].area);
            prop_assert!(r.cells() >= r.area);
        }
        prop_assert!(p.placed_cells() <= grid.area());
        let accounted: u64 = p.region_loads().iter().sum();
        let fallback: u64 = p.failures().iter().map(|&i| fps[i].area).sum();
        prop_assert_eq!(accounted, p.placed_cells() + fallback);
    }

    /// Fragmentation metrics stay in [0, 1] and failures match.
    #[test]
    fn metrics_stay_in_range(seed in 0u64..1_000_000) {
        let (_, _, p) = place(seed);
        let s = p.stats();
        for v in [s.internal(), s.external(), s.worst_region_occupancy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{} out of range", v);
        }
        prop_assert_eq!(s.placement_failures(), p.failures().len() as u64);
    }

    /// Every owner with a positive-area footprint gets a non-empty
    /// residency set, and touched sets are sorted and duplicate-free.
    #[test]
    fn residency_covers_every_owner(seed in 0u64..1_000_000) {
        let (grid, fps, p) = place(seed);
        for f in fps.iter().filter(|f| f.area > 0) {
            let touched = p.touched_regions(f.owner);
            prop_assert!(!touched.is_empty());
            prop_assert!(touched.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(touched.iter().all(|&r| r < grid.len()));
        }
    }
}
