//! Property-based tests for the Figure 3 temporal partitioning
//! invariants over random DFGs.

use amdrel_cdfg::synth::{random_dfg, SynthConfig};
use amdrel_cdfg::{asap_levels, OpClass};
use amdrel_finegrain::{map_dfg, temporal_partition, FpgaDevice, ReconfigPolicy};
use proptest::prelude::*;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        2usize..150,
        0.05f64..0.6,
        1usize..4,
        0.0f64..0.5,
        0.0f64..0.3,
    )
        .prop_map(
            |(nodes, edge_prob, max_fanin, mul_fraction, load_fraction)| SynthConfig {
                nodes,
                edge_prob,
                max_fanin,
                mul_fraction,
                load_fraction,
                bitwidth: 16,
            },
        )
}

fn device() -> impl Strategy<Value = FpgaDevice> {
    (1200u64..20_000, 1u64..100)
        .prop_map(|(area, reconfig)| FpgaDevice::new(area).with_reconfig_cycles(reconfig))
}

proptest! {
    /// Every schedulable node lands in exactly one partition; boundary
    /// nodes in none.
    #[test]
    fn partition_covers_each_node_once(
        seed in any::<u64>(),
        cfg in synth_config(),
        dev in device(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let tp = temporal_partition(&dfg, &dev).expect("partitions");
        let mut seen = vec![0u32; dfg.len()];
        for p in tp.partitions() {
            for &n in &p.nodes {
                seen[n.index()] += 1;
            }
        }
        for n in dfg.node_ids() {
            let expected = u32::from(dfg.node(n).kind.is_schedulable());
            prop_assert_eq!(seen[n.index()], expected, "node {}", n);
            if expected == 1 {
                prop_assert!(tp.partition_of(n) >= 1);
            } else {
                prop_assert_eq!(tp.partition_of(n), 0);
            }
        }
    }

    /// No partition exceeds the usable area, and recorded areas are the
    /// sum of their nodes' areas.
    #[test]
    fn partition_area_bounded(
        seed in any::<u64>(),
        cfg in synth_config(),
        dev in device(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let tp = temporal_partition(&dfg, &dev).expect("partitions");
        for p in tp.partitions() {
            prop_assert!(p.area <= dev.usable_area(), "partition {} area", p.index);
            let sum: u64 = p.nodes.iter().map(|&n| dev.area.node_area(dfg.node(n))).sum();
            prop_assert_eq!(sum, p.area);
        }
    }

    /// ASAP level order is preserved: nodes appear in non-decreasing
    /// level order across the concatenated partitions (the Figure 3
    /// traversal discipline).
    #[test]
    fn level_order_preserved(
        seed in any::<u64>(),
        cfg in synth_config(),
        dev in device(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let levels = asap_levels(&dfg).expect("acyclic");
        let tp = temporal_partition(&dfg, &dev).expect("partitions");
        let mut last = 0u32;
        for p in tp.partitions() {
            for &n in &p.nodes {
                let lv = levels.level(n);
                prop_assert!(lv >= last, "level regression at {}", n);
                last = lv;
            }
        }
    }

    /// Partition indices are 1..=len in order, and each partition's
    /// `levels` list is ascending and consistent with its nodes.
    #[test]
    fn partition_metadata_consistent(
        seed in any::<u64>(),
        cfg in synth_config(),
        dev in device(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let levels = asap_levels(&dfg).expect("acyclic");
        let tp = temporal_partition(&dfg, &dev).expect("partitions");
        for (k, p) in tp.partitions().iter().enumerate() {
            prop_assert_eq!(p.index, k as u32 + 1);
            prop_assert!(p.levels.windows(2).all(|w| w[0] < w[1]));
            for &n in &p.nodes {
                prop_assert!(p.levels.contains(&levels.level(n)));
            }
        }
    }

    /// A larger device never yields more partitions or more cycles.
    #[test]
    fn monotone_in_area(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let small = map_dfg(&dfg, &FpgaDevice::new(1500)).expect("maps");
        let large = map_dfg(&dfg, &FpgaDevice::new(6000)).expect("maps");
        prop_assert!(large.partitioning.len() <= small.partitioning.len());
        prop_assert!(large.cycles_per_exec() <= small.cycles_per_exec());
    }

    /// Resident policy never charges more reconfiguration than
    /// per-execution, and they agree for multi-partition mappings.
    #[test]
    fn reconfig_policies_ordered(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let per = map_dfg(&dfg, &FpgaDevice::new(2000)).expect("maps");
        let res = map_dfg(
            &dfg,
            &FpgaDevice::new(2000).with_reconfig_policy(ReconfigPolicy::Resident),
        )
        .expect("maps");
        prop_assert!(res.reconfig_cycles <= per.reconfig_cycles);
        if per.partitioning.len() > 1 {
            prop_assert_eq!(res.reconfig_cycles, per.reconfig_cycles);
        }
        prop_assert_eq!(res.compute_cycles, per.compute_cycles);
    }

    /// Compute cycles are bounded below by the latency-weighted critical
    /// path (levels can only serialise further, never compress).
    #[test]
    fn compute_cycles_at_least_critical_path(
        seed in any::<u64>(),
        cfg in synth_config(),
        dev in device(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let map = map_dfg(&dfg, &dev).expect("maps");
        let cp = amdrel_cdfg::critical_path(&dfg, |k| dev.latency.op_latency(k))
            .expect("acyclic");
        prop_assert!(
            map.compute_cycles >= cp,
            "compute {} < critical path {cp}",
            map.compute_cycles
        );
    }

    /// Mem-class nodes cost area too (no free loads): histograms with
    /// memory ops yield strictly positive partition areas.
    #[test]
    fn areas_strictly_positive(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let dev = FpgaDevice::new(4000);
        let tp = temporal_partition(&dfg, &dev).expect("partitions");
        for p in tp.partitions() {
            prop_assert!(p.area > 0);
            prop_assert!(!p.nodes.is_empty());
        }
        // Class histogram sanity: no boundary class ever counted.
        prop_assert!(!dfg.class_histogram().contains_key(&OpClass::Boundary));
    }
}
