//! Fine-grain mapping: per-block execution time on the FPGA (step 2 of
//! Figure 2) and the whole-application `t_FPGA` of eq. (4).
//!
//! A temporal partition executes its ASAP levels in order; each level
//! costs the maximum op latency at that level (nodes of one level run in
//! parallel — "all the DFG nodes with the same level can be considered for
//! parallel execution"). Each partition additionally pays one full
//! reconfiguration ("the reconfiguration time has the same value for each
//! partition and it is added to the execution time of each temporal
//! partition").

use crate::device::{FpgaDevice, ReconfigPolicy};
use crate::temporal::{temporal_partition, TemporalPartitioning};
use crate::FineGrainError;
use amdrel_cdfg::{asap_levels, Cdfg, Dfg};
use serde::{Deserialize, Serialize};

/// The fine-grain mapping of one basic block's DFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FineGrainMapping {
    /// The temporal partitioning (Figure 3 output).
    pub partitioning: TemporalPartitioning,
    /// Pure compute cycles per execution (sum over partitions of their
    /// level latencies), excluding reconfiguration.
    pub compute_cycles: u64,
    /// Reconfiguration cycles per execution under the device's policy.
    pub reconfig_cycles: u64,
}

impl FineGrainMapping {
    /// Total FPGA cycles for one execution of the block
    /// (`t_to_FPGA(BB)` in eq. (4)).
    pub fn cycles_per_exec(&self) -> u64 {
        self.compute_cycles + self.reconfig_cycles
    }
}

/// Map one DFG onto the fine-grain device.
///
/// # Errors
///
/// Propagates [`FineGrainError`] from the temporal partitioner.
pub fn map_dfg(dfg: &Dfg, device: &FpgaDevice) -> Result<FineGrainMapping, FineGrainError> {
    let partitioning = temporal_partition(dfg, device)?;
    let levels = asap_levels(dfg)?;

    let mut compute_cycles = 0u64;
    for p in partitioning.partitions() {
        // Cost of a partition: for each ASAP level it covers, the slowest
        // node at that level gates the step.
        for &lv in &p.levels {
            let step = p
                .nodes
                .iter()
                .filter(|&&n| levels.level(n) == lv)
                .map(|&n| device.latency.op_latency(dfg.node(n).kind))
                .max()
                .unwrap_or(0);
            compute_cycles += step;
        }
    }

    let n_parts = partitioning.len() as u64;
    let reconfig_cycles = match device.reconfig_policy {
        ReconfigPolicy::PerExecution => n_parts * device.reconfig_cycles,
        // Resident: a single-partition block keeps its bitstream loaded
        // across back-to-back executions; multi-partition blocks must
        // still swap through all bitstreams every execution.
        ReconfigPolicy::Resident => {
            if n_parts <= 1 {
                0
            } else {
                n_parts * device.reconfig_cycles
            }
        }
    };

    Ok(FineGrainMapping {
        partitioning,
        compute_cycles,
        reconfig_cycles,
    })
}

/// The fine-grain mapping of a whole CDFG: one [`FineGrainMapping`] per
/// basic block, in block order ("The mapping methodology also handles
/// CDFG, by iteratively mapping the DFGs composing the CDFG").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdfgFineGrainMapping {
    /// Per-block mappings, indexed by block id.
    pub blocks: Vec<FineGrainMapping>,
}

impl CdfgFineGrainMapping {
    /// Map every block of `cdfg`.
    ///
    /// # Errors
    ///
    /// The first block that fails to map.
    pub fn map(cdfg: &Cdfg, device: &FpgaDevice) -> Result<Self, FineGrainError> {
        let blocks = cdfg
            .iter()
            .map(|(_, bb)| map_dfg(&bb.dfg, device))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CdfgFineGrainMapping { blocks })
    }

    /// eq. (4): `t_FPGA = Σ_i t_to_FPGA(BB_i) × Iter(BB_i)` over the given
    /// subset of blocks (those assigned to the fine-grain hardware).
    ///
    /// `exec_freq[i]` is `Iter(BB_i)`; `on_fpga(i)` selects the subset.
    ///
    /// # Panics
    ///
    /// Panics if `exec_freq` is shorter than the block list.
    pub fn t_fpga(&self, exec_freq: &[u64], mut on_fpga: impl FnMut(usize) -> bool) -> u64 {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| on_fpga(*i))
            .map(|(i, m)| m.cycles_per_exec().saturating_mul(exec_freq[i]))
            .sum()
    }

    /// Per-block cost vector: `t_to_FPGA(BB_i) × Iter(BB_i)` for every
    /// block. [`Self::t_fpga`] over any subset equals the sum of the
    /// corresponding entries, so callers (the partitioning engine) can
    /// maintain running sums and update them in O(1) per kernel move
    /// instead of rescanning all blocks.
    ///
    /// # Panics
    ///
    /// Panics if `exec_freq` is shorter than the block list.
    pub fn block_costs(&self, exec_freq: &[u64]) -> Vec<u64> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, m)| m.cycles_per_exec().saturating_mul(exec_freq[i]))
            .collect()
    }

    /// Total bitstreams across all blocks (reporting aid).
    pub fn total_partitions(&self) -> usize {
        self.blocks.iter().map(|m| m.partitioning.len()).sum()
    }

    /// The configuration footprint of the blocks selected by `on_fpga`:
    /// the partition areas a runtime streams onto the device to make
    /// those blocks resident, in block-then-partition order. Summing the
    /// result gives the total configuration-load area; its length is the
    /// bitstream count.
    pub fn partition_areas(&self, mut on_fpga: impl FnMut(usize) -> bool) -> Vec<u64> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| on_fpga(*i))
            .flat_map(|(_, m)| m.partitioning.partition_areas())
            .collect()
    }

    /// Like [`Self::partition_areas`] but keeping the per-mapping
    /// grouping the flat vector loses: one record per temporal
    /// partition, tagged with its block and partition index, in
    /// block-then-partition order. A floorplanner needs the grouping to
    /// keep one block's bitstreams co-resident; flattening the areas of
    /// the result reproduces [`Self::partition_areas`] exactly.
    pub fn partition_footprints(
        &self,
        mut on_fpga: impl FnMut(usize) -> bool,
    ) -> Vec<PartitionFootprint> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| on_fpga(*i))
            .flat_map(|(block, m)| {
                m.partitioning
                    .partition_areas()
                    .enumerate()
                    .map(move |(partition, area)| PartitionFootprint {
                        block,
                        partition: partition as u32,
                        area,
                    })
            })
            .collect()
    }
}

/// One temporal partition of one block's mapping: the grouped record
/// [`CdfgFineGrainMapping::partition_footprints`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionFootprint {
    /// Block id the partition belongs to.
    pub block: usize,
    /// Partition index within that block's [`TemporalPartitioning`].
    pub partition: u32,
    /// Configuration area of the partition.
    pub area: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::{BasicBlock, OpKind};

    /// A device with a fixed test characterisation (ALU 30 / MUL 120 /
    /// mem 20, reconfiguration 30) so the tests pin concrete cycle counts
    /// independently of the calibrated crate defaults.
    fn device(total: u64) -> FpgaDevice {
        let mut dev = FpgaDevice::new(total).with_reconfig_cycles(30);
        dev.area = crate::AreaLibrary {
            alu: 30,
            mul: 120,
            div: 240,
            mem: 20,
        };
        dev
    }

    #[test]
    fn chain_cycles_sum_levels() {
        // LiveIn → Mul → Add → LiveOut: levels 2 (mul, lat 2) and 3 (add, 1).
        let mut dfg = Dfg::new("mac");
        let x = dfg.add_op(OpKind::LiveIn, 32);
        let m = dfg.add_op(OpKind::Mul, 32);
        let a = dfg.add_op(OpKind::Add, 32);
        let o = dfg.add_op(OpKind::LiveOut, 32);
        dfg.add_edge(x, m).unwrap();
        dfg.add_edge(m, a).unwrap();
        dfg.add_edge(a, o).unwrap();
        let map = map_dfg(&dfg, &device(1500)).unwrap();
        assert_eq!(map.partitioning.len(), 1);
        assert_eq!(map.compute_cycles, 3); // mul 2 + add 1
        assert_eq!(map.reconfig_cycles, 30);
        assert_eq!(map.cycles_per_exec(), 33);
    }

    #[test]
    fn parallel_ops_share_a_level() {
        // 8 independent adds: one level, cost 1 (plus reconfig).
        let mut dfg = Dfg::new("wide");
        for _ in 0..8 {
            dfg.add_op(OpKind::Add, 32);
        }
        let map = map_dfg(&dfg, &device(1500)).unwrap();
        assert_eq!(map.compute_cycles, 1);
    }

    #[test]
    fn partition_split_adds_reconfig_and_serialises_levels() {
        // 50 independent adds (1500 units): splits into 2 partitions on
        // usable 1050. Each partition covers level 1 → 1 cycle each.
        let mut dfg = Dfg::new("wide");
        for _ in 0..50 {
            dfg.add_op(OpKind::Add, 32);
        }
        let map = map_dfg(&dfg, &device(1500)).unwrap();
        assert_eq!(map.partitioning.len(), 2);
        assert_eq!(map.compute_cycles, 2);
        assert_eq!(map.reconfig_cycles, 60);
    }

    #[test]
    fn bigger_fpga_means_fewer_cycles() {
        let mut dfg = Dfg::new("wide");
        for _ in 0..80 {
            dfg.add_op(OpKind::Add, 32);
        }
        let small = map_dfg(&dfg, &device(1500)).unwrap();
        let large = map_dfg(&dfg, &device(5000)).unwrap();
        assert!(large.cycles_per_exec() < small.cycles_per_exec());
        assert!(large.partitioning.len() < small.partitioning.len());
    }

    #[test]
    fn resident_policy_drops_single_partition_reconfig() {
        let mut dfg = Dfg::new("small");
        dfg.add_op(OpKind::Add, 32);
        let dev = device(1500).with_reconfig_policy(ReconfigPolicy::Resident);
        let map = map_dfg(&dfg, &dev).unwrap();
        assert_eq!(map.reconfig_cycles, 0);
        assert_eq!(map.cycles_per_exec(), 1);
    }

    #[test]
    fn resident_policy_keeps_multi_partition_cost() {
        let mut dfg = Dfg::new("wide");
        for _ in 0..50 {
            dfg.add_op(OpKind::Add, 32);
        }
        let dev = device(1500).with_reconfig_policy(ReconfigPolicy::Resident);
        let map = map_dfg(&dfg, &dev).unwrap();
        assert_eq!(map.reconfig_cycles, 60);
    }

    #[test]
    fn t_fpga_weights_by_frequency_and_subset() {
        let mut cdfg = Cdfg::new("app");
        let mut d0 = Dfg::new("b0");
        d0.add_op(OpKind::Add, 32);
        let mut d1 = Dfg::new("b1");
        d1.add_op(OpKind::Mul, 32);
        let b0 = cdfg.add_block(BasicBlock::from_dfg("b0", d0));
        let b1 = cdfg.add_block(BasicBlock::from_dfg("b1", d1));
        cdfg.add_edge(b0, b1).unwrap();
        let map = CdfgFineGrainMapping::map(&cdfg, &device(1500)).unwrap();
        let c0 = map.blocks[0].cycles_per_exec();
        let c1 = map.blocks[1].cycles_per_exec();
        let all = map.t_fpga(&[10, 5], |_| true);
        assert_eq!(all, 10 * c0 + 5 * c1);
        let only_b0 = map.t_fpga(&[10, 5], |i| i == 0);
        assert_eq!(only_b0, 10 * c0);
    }

    #[test]
    fn block_costs_agree_with_t_fpga() {
        let mut cdfg = Cdfg::new("app");
        for i in 0..4 {
            let mut d = Dfg::new(format!("b{i}"));
            for _ in 0..=i {
                d.add_op(OpKind::Mul, 32);
            }
            cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), d));
        }
        let map = CdfgFineGrainMapping::map(&cdfg, &device(1500)).unwrap();
        let freqs = [7u64, 0, 13, 100];
        let costs = map.block_costs(&freqs);
        assert_eq!(costs.iter().sum::<u64>(), map.t_fpga(&freqs, |_| true));
        for (i, &cost) in costs.iter().enumerate() {
            assert_eq!(cost, map.t_fpga(&freqs, |j| j == i));
        }
    }

    #[test]
    fn empty_block_costs_nothing() {
        let dfg = Dfg::new("empty");
        let map = map_dfg(&dfg, &device(1500)).unwrap();
        assert_eq!(map.cycles_per_exec(), 0);
    }

    #[test]
    fn partition_areas_cover_selected_blocks() {
        let mut cdfg = Cdfg::new("app");
        for i in 0..3 {
            let mut d = Dfg::new(format!("b{i}"));
            for _ in 0..50 {
                d.add_op(OpKind::Add, 32); // 1500 units → 2 partitions each
            }
            cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), d));
        }
        let map = CdfgFineGrainMapping::map(&cdfg, &device(1500)).unwrap();
        let all = map.partition_areas(|_| true);
        assert_eq!(all.len(), map.total_partitions());
        assert_eq!(
            all.iter().sum::<u64>(),
            map.blocks
                .iter()
                .map(|m| m.partitioning.total_area())
                .sum::<u64>()
        );
        let one = map.partition_areas(|i| i == 1);
        assert_eq!(one.len(), map.blocks[1].partitioning.len());
        assert_eq!(one.iter().sum::<u64>(), 50 * 30);
        assert!(map.partition_areas(|_| false).is_empty());
    }

    #[test]
    fn partition_footprints_keep_the_grouping() {
        let mut cdfg = Cdfg::new("app");
        for i in 0..3 {
            let mut d = Dfg::new(format!("b{i}"));
            for _ in 0..50 {
                d.add_op(OpKind::Add, 32); // 2 partitions per block
            }
            cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), d));
        }
        let map = CdfgFineGrainMapping::map(&cdfg, &device(1500)).unwrap();
        let grouped = map.partition_footprints(|i| i != 1);
        // Flattening the grouped records reproduces the flat vector.
        let flat: Vec<u64> = grouped.iter().map(|f| f.area).collect();
        assert_eq!(flat, map.partition_areas(|i| i != 1));
        // The grouping tags survive: blocks 0 and 2, partitions 0..len.
        assert!(grouped.iter().all(|f| f.block == 0 || f.block == 2));
        for block in [0usize, 2] {
            let parts: Vec<u32> = grouped
                .iter()
                .filter(|f| f.block == block)
                .map(|f| f.partition)
                .collect();
            let n = map.blocks[block].partitioning.len() as u32;
            assert_eq!(parts, (0..n).collect::<Vec<_>>());
        }
        assert!(map.partition_footprints(|_| false).is_empty());
    }
}
