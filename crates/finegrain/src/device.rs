//! Fine-grain (embedded FPGA) device characterisation.
//!
//! The methodology "is parameterized with respect to the reconfigurable
//! hardware … both types of reconfigurable hardware are characterized in
//! terms of timing and area characteristics". This module is that
//! characterisation for the fine-grain side: an abstract area budget
//! (`A_FPGA` in the paper, 1500 or 5000 "units of area" in the
//! experiments), the routable fraction (70% — "a typical value"), per-op
//! area and latency tables, and the full-reconfiguration cost.

use amdrel_cdfg::{DfgNode, OpClass, OpKind};
use serde::{Deserialize, Serialize};

/// Per-class area costs in abstract FPGA area units, scaled by bitwidth.
///
/// `area(node) = max(1, base(class) × bitwidth / 32)` for schedulable ops;
/// boundary pseudo-ops are free. The defaults put a 32-bit multiplier at
/// 4× a 32-bit ALU op — the usual LUT-count ratio for array multipliers
/// vs. ripple adders on 2000s FPGAs — and are calibrated so that the
/// paper's experimental regime holds on the case-study applications:
/// hot DSP kernels split into several temporal partitions at
/// `A_FPGA = 1500` but fit into one at `A_FPGA = 5000`, reproducing the
/// initial-cycle ratios of Tables 2/3 (see EXPERIMENTS.md for the
/// calibration sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AreaLibrary {
    /// Base area of an ALU-class op at 32 bits.
    pub alu: u64,
    /// Base area of a multiplier at 32 bits.
    pub mul: u64,
    /// Base area of a divider at 32 bits.
    pub div: u64,
    /// Base area of a memory port at 32 bits.
    pub mem: u64,
}

impl AreaLibrary {
    /// Default characterisation (see type-level docs).
    pub fn virtex_like() -> Self {
        AreaLibrary {
            alu: 180,
            mul: 720,
            div: 1440,
            mem: 120,
        }
    }

    /// Area of one DFG node in abstract units.
    pub fn node_area(&self, node: &DfgNode) -> u64 {
        let base = match node.kind.class() {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Mem => self.mem,
            OpClass::Boundary => return 0,
        };
        (base * u64::from(node.bitwidth.max(1)) / 32).max(1)
    }
}

impl Default for AreaLibrary {
    fn default() -> Self {
        AreaLibrary::virtex_like()
    }
}

/// Per-class execution latencies on the fine-grain fabric, in FPGA clock
/// cycles. One ASAP level of a temporal partition costs the maximum
/// latency among its nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FpgaLatency {
    /// ALU-class latency (cycles).
    pub alu: u64,
    /// Multiplier latency.
    pub mul: u64,
    /// Divider latency.
    pub div: u64,
    /// Memory access latency.
    pub mem: u64,
}

impl FpgaLatency {
    /// Defaults matching the analysis weights: ALU 1, MUL 2.
    pub fn paper() -> Self {
        FpgaLatency {
            alu: 1,
            mul: 2,
            div: 16,
            mem: 1,
        }
    }

    /// Latency of one operation kind; boundary ops take no time.
    pub fn op_latency(&self, kind: OpKind) -> u64 {
        match kind.class() {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Mem => self.mem,
            OpClass::Boundary => 0,
        }
    }
}

impl Default for FpgaLatency {
    fn default() -> Self {
        FpgaLatency::paper()
    }
}

/// When full reconfiguration is charged (§3.2: "For each temporal
/// partition, full reconfiguration of the fine-grain hardware is
/// performed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReconfigPolicy {
    /// eq. (4) taken literally: every execution of a basic block reloads
    /// the bitstream of each of its temporal partitions. The paper's
    /// model; the default.
    #[default]
    PerExecution,
    /// A single-partition block that repeats back-to-back keeps its
    /// configuration resident and pays no per-iteration reconfiguration
    /// (multi-partition blocks still cycle through their bitstreams).
    /// Exposed for the reconfiguration-cost ablation.
    Resident,
}

/// The fine-grain reconfigurable device.
///
/// # Examples
///
/// ```
/// use amdrel_finegrain::FpgaDevice;
///
/// let dev = FpgaDevice::new(1500); // the paper's small configuration
/// assert_eq!(dev.usable_area(), 1050); // 70% routable
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Total area in abstract units (`A_FPGA`).
    pub total_area: u64,
    /// Fraction of the area the mapper may fill so routing stays feasible
    /// (paper: "a typical value is a 70% of the overall FPGA area").
    pub usable_fraction: f64,
    /// Cycles to fully reconfigure the device, charged once per temporal
    /// partition per execution (policy-dependent).
    pub reconfig_cycles: u64,
    /// Reconfiguration accounting policy.
    pub reconfig_policy: ReconfigPolicy,
    /// Per-op area characterisation.
    pub area: AreaLibrary,
    /// Per-op latency characterisation.
    pub latency: FpgaLatency,
}

impl FpgaDevice {
    /// A device with `total_area` units and default characterisation.
    pub fn new(total_area: u64) -> Self {
        FpgaDevice {
            total_area,
            usable_fraction: 0.70,
            reconfig_cycles: 10,
            reconfig_policy: ReconfigPolicy::default(),
            area: AreaLibrary::default(),
            latency: FpgaLatency::default(),
        }
    }

    /// Builder-style override of the reconfiguration cost.
    pub fn with_reconfig_cycles(mut self, cycles: u64) -> Self {
        self.reconfig_cycles = cycles;
        self
    }

    /// Builder-style override of the reconfiguration policy.
    pub fn with_reconfig_policy(mut self, policy: ReconfigPolicy) -> Self {
        self.reconfig_policy = policy;
        self
    }

    /// Builder-style override of the usable fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    pub fn with_usable_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "usable fraction must be in (0, 1]"
        );
        self.usable_fraction = fraction;
        self
    }

    /// The area the temporal partitioner may fill
    /// (`A_FPGA × usable_fraction`, floored).
    pub fn usable_area(&self) -> u64 {
        (self.total_area as f64 * self.usable_fraction).floor() as u64
    }

    /// A hashable key identifying this device characterisation, usable
    /// for memoising fine-grain mappings (the device is the only input to
    /// [`crate::map_dfg`] besides the DFG itself). Two devices with equal
    /// keys produce identical mappings for any CDFG.
    pub fn config_key(&self) -> FpgaConfigKey {
        FpgaConfigKey {
            total_area: self.total_area,
            usable_fraction_bits: self.usable_fraction.to_bits(),
            reconfig_cycles: self.reconfig_cycles,
            reconfig_policy: self.reconfig_policy,
            area: self.area,
            latency: self.latency,
        }
    }
}

/// Hashable identity of an [`FpgaDevice`] configuration (the
/// `usable_fraction` float is keyed by its bit pattern). See
/// [`FpgaDevice::config_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpgaConfigKey {
    total_area: u64,
    usable_fraction_bits: u64,
    reconfig_cycles: u64,
    reconfig_policy: ReconfigPolicy,
    area: AreaLibrary,
    latency: FpgaLatency,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::DfgNode;

    #[test]
    fn usable_area_is_seventy_percent() {
        assert_eq!(FpgaDevice::new(1500).usable_area(), 1050);
        assert_eq!(FpgaDevice::new(5000).usable_area(), 3500);
    }

    #[test]
    fn area_scales_with_bitwidth() {
        let lib = AreaLibrary::virtex_like();
        let add32 = DfgNode::new(OpKind::Add, 32);
        let add16 = DfgNode::new(OpKind::Add, 16);
        let mul16 = DfgNode::new(OpKind::Mul, 16);
        assert_eq!(lib.node_area(&add32), lib.alu);
        assert_eq!(lib.node_area(&add16), lib.alu / 2);
        assert_eq!(lib.node_area(&mul16), lib.mul / 2);
        // The multiplier:ALU ratio stays 4:1 at equal width.
        assert_eq!(lib.mul, 4 * lib.alu);
    }

    #[test]
    fn boundary_nodes_are_free() {
        let lib = AreaLibrary::virtex_like();
        assert_eq!(lib.node_area(&DfgNode::new(OpKind::Const, 32)), 0);
        assert_eq!(lib.node_area(&DfgNode::new(OpKind::LiveIn, 32)), 0);
    }

    #[test]
    fn tiny_ops_cost_at_least_one_unit() {
        let lib = AreaLibrary {
            alu: 30,
            mul: 120,
            div: 240,
            mem: 20,
        };
        assert_eq!(lib.node_area(&DfgNode::new(OpKind::Lt, 1)), 1);
    }

    #[test]
    fn latency_table() {
        let lat = FpgaLatency::paper();
        assert_eq!(lat.op_latency(OpKind::Add), 1);
        assert_eq!(lat.op_latency(OpKind::Mul), 2);
        assert_eq!(lat.op_latency(OpKind::LiveIn), 0);
    }

    #[test]
    #[should_panic(expected = "usable fraction")]
    fn invalid_fraction_panics() {
        let _ = FpgaDevice::new(100).with_usable_fraction(0.0);
    }

    #[test]
    fn config_key_tracks_every_field() {
        let base = FpgaDevice::new(1500);
        assert_eq!(base.config_key(), FpgaDevice::new(1500).config_key());
        assert_ne!(base.config_key(), FpgaDevice::new(5000).config_key());
        assert_ne!(
            base.config_key(),
            FpgaDevice::new(1500).with_reconfig_cycles(99).config_key()
        );
        assert_ne!(
            base.config_key(),
            FpgaDevice::new(1500)
                .with_reconfig_policy(ReconfigPolicy::Resident)
                .config_key()
        );
        assert_ne!(
            base.config_key(),
            FpgaDevice::new(1500).with_usable_fraction(0.5).config_key()
        );
    }
}
