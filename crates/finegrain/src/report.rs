//! Human-readable rendering of a temporal partitioning — the bitstream
//! plan the fine-grain mapper would hand to configuration generation.

use crate::mapping::FineGrainMapping;
use crate::temporal::TemporalPartitioning;
use amdrel_cdfg::Dfg;
use std::fmt::Write as _;

/// Render the partition table of one block's mapping: per partition its
/// ASAP levels, node count, area, and the ops it configures.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
/// use amdrel_finegrain::{map_dfg, report::partition_table, FpgaDevice};
///
/// # fn main() -> Result<(), amdrel_finegrain::FineGrainError> {
/// let mut dfg = Dfg::new("k");
/// dfg.add_op(OpKind::Mul, 16);
/// let mapping = map_dfg(&dfg, &FpgaDevice::new(1500))?;
/// let table = partition_table(&dfg, &mapping);
/// assert!(table.contains("partition 1"));
/// # Ok(())
/// # }
/// ```
pub fn partition_table(dfg: &Dfg, mapping: &FineGrainMapping) -> String {
    let mut out = String::new();
    let tp = &mapping.partitioning;
    let _ = writeln!(
        out,
        "temporal partitioning of '{}': {} partitions, {} + {} cycles/exec (compute + reconfig)",
        dfg.name(),
        tp.len(),
        mapping.compute_cycles,
        mapping.reconfig_cycles,
    );
    for p in tp.partitions() {
        let levels = p
            .levels
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let ops = p
            .nodes
            .iter()
            .map(|&n| format!("{n}:{}", dfg.node(n).kind))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "  partition {}: levels [{}], {} nodes, {} area units",
            p.index,
            levels,
            p.nodes.len(),
            p.area,
        );
        let _ = writeln!(out, "    {ops}");
    }
    out
}

/// One-line summary per partition for CDFG-wide overviews.
pub fn partition_summary(tp: &TemporalPartitioning) -> String {
    let mut out = String::new();
    for p in tp.partitions() {
        let _ = write!(out, "[p{} {}n/{}a] ", p.index, p.nodes.len(), p.area);
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use crate::mapping::map_dfg;
    use amdrel_cdfg::OpKind;

    fn test_device(total: u64) -> FpgaDevice {
        let mut dev = FpgaDevice::new(total);
        dev.area = crate::AreaLibrary {
            alu: 30,
            mul: 120,
            div: 240,
            mem: 20,
        };
        dev
    }

    #[test]
    fn table_lists_every_partition_and_node() {
        let mut dfg = Dfg::new("k");
        for _ in 0..50 {
            dfg.add_op(OpKind::Add, 32); // 1500 units: splits at usable 1050
        }
        let mapping = map_dfg(&dfg, &test_device(1500)).unwrap();
        let table = partition_table(&dfg, &mapping);
        assert!(table.contains("2 partitions"));
        assert!(table.contains("partition 1"));
        assert!(table.contains("partition 2"));
        for n in dfg.node_ids() {
            assert!(table.contains(&format!("{n}:add")), "{n} missing");
        }
    }

    #[test]
    fn summary_is_compact() {
        let mut dfg = Dfg::new("k");
        for _ in 0..50 {
            dfg.add_op(OpKind::Add, 32);
        }
        let mapping = map_dfg(&dfg, &test_device(1500)).unwrap();
        let s = partition_summary(&mapping.partitioning);
        assert!(s.starts_with("[p1 "));
        assert!(s.contains("[p2 "));
        assert!(!s.ends_with(' '));
    }
}
