//! The temporal partitioning algorithm of the paper's Figure 3.
//!
//! "The mapping methodology classifies the nodes in the Data Flow Graph of
//! the input application according to their As Soon As Possible (ASAP)
//! levels … The algorithm traverses each node of the DFG, level by level,
//! and assigns them to a partition. … Nodes of the same ASAP level are
//! placed in a single partition and if the available area in the fine-grain
//! hardware is exhausted then the nodes are assigned to the next
//! partition."
//!
//! [`temporal_partition`] is a line-by-line transcription of the
//! pseudocode, with one production hardening: a node whose own area
//! exceeds the usable device area is rejected instead of silently
//! overflowing a partition.

use crate::device::FpgaDevice;
use crate::FineGrainError;
use amdrel_cdfg::{asap_levels, Dfg, NodeId};
use serde::{Deserialize, Serialize};

/// One temporal partition: the nodes configured on the device together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalPartition {
    /// 1-based partition number (`partition(ui) = i` in Figure 3).
    pub index: u32,
    /// Nodes in the partition, in assignment order.
    pub nodes: Vec<NodeId>,
    /// Total area of the partition's nodes.
    pub area: u64,
    /// The ASAP levels this partition covers (ascending, deduplicated).
    pub levels: Vec<u32>,
}

/// The output of the Figure 3 algorithm over one DFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalPartitioning {
    partitions: Vec<TemporalPartition>,
    assignment: Vec<u32>,
    max_level: u32,
}

impl TemporalPartitioning {
    /// The partitions, in execution order.
    pub fn partitions(&self) -> &[TemporalPartition] {
        &self.partitions
    }

    /// Number of partitions (= number of bitstreams generated).
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the DFG had no schedulable nodes at all.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The 1-based partition number of `node`; 0 for boundary pseudo-ops,
    /// which occupy no partition.
    pub fn partition_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// The maximum ASAP level of the DFG (`max_level` in Figure 3).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Total configured area across all partitions — the amount of
    /// configuration data a runtime must stream in to make this DFG's
    /// bitstream set resident on the device.
    pub fn total_area(&self) -> u64 {
        self.partitions.iter().map(|p| p.area).sum()
    }

    /// The areas of the partitions in execution order (the per-bitstream
    /// load granularity: a prefetching runtime overlaps the load of
    /// partition `i + 1` with the execution of partition `i`).
    pub fn partition_areas(&self) -> impl Iterator<Item = u64> + '_ {
        self.partitions.iter().map(|p| p.area)
    }
}

/// Run the Figure 3 temporal partitioning algorithm.
///
/// Boundary pseudo-ops (constants, live-ins/outs) occupy no area and no
/// partition; they are skipped exactly as a netlist's I/O pins would be.
///
/// # Errors
///
/// * [`FineGrainError::NodeTooLarge`] if one node alone exceeds the usable
///   area — no temporal partitioning can place it;
/// * [`FineGrainError::Graph`] if the DFG is cyclic.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
/// use amdrel_finegrain::{temporal_partition, FpgaDevice};
///
/// # fn main() -> Result<(), amdrel_finegrain::FineGrainError> {
/// let mut dfg = Dfg::new("chain");
/// let a = dfg.add_op(OpKind::Add, 32); // 180 units (default library)
/// let b = dfg.add_op(OpKind::Add, 32);
/// dfg.add_edge(a, b)?;
/// // Tiny device: only one 180-unit op fits per partition.
/// let dev = FpgaDevice::new(300).with_usable_fraction(0.8); // usable 240
/// let tp = temporal_partition(&dfg, &dev)?;
/// assert_eq!(tp.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn temporal_partition(
    dfg: &Dfg,
    device: &FpgaDevice,
) -> Result<TemporalPartitioning, FineGrainError> {
    let usable = device.usable_area();
    let levels = asap_levels(dfg)?;
    let max_level = levels.max_level();

    let mut partitions: Vec<TemporalPartition> = Vec::new();
    let mut assignment = vec![0u32; dfg.len()];

    // Figure 3: i = 1; level = 1; area_covered = 0;
    let mut i: u32 = 1;
    let mut area_covered: u64 = 0;
    let mut current: Option<TemporalPartition> = None;

    // while (level <= max_level) / for each node with level(ui) == level
    for level in 1..=max_level {
        for node in levels.nodes_at(level) {
            let n = dfg.node(node);
            if !n.kind.is_schedulable() {
                continue;
            }
            let current_area = device.area.node_area(n);
            if current_area > usable {
                return Err(FineGrainError::NodeTooLarge {
                    node,
                    area: current_area,
                    usable,
                });
            }
            if area_covered + current_area <= usable && current.is_some() {
                // partition(ui) = i; area_covered += current_area;
                area_covered += current_area;
            } else if current.is_none() {
                // First schedulable node opens partition 1.
                current = Some(TemporalPartition {
                    index: i,
                    nodes: Vec::new(),
                    area: 0,
                    levels: Vec::new(),
                });
                area_covered = current_area;
            } else {
                // i = i + 1; partition(ui) = i; area_covered = current_area;
                let done = current.take().expect("checked is_some");
                partitions.push(done);
                i += 1;
                current = Some(TemporalPartition {
                    index: i,
                    nodes: Vec::new(),
                    area: 0,
                    levels: Vec::new(),
                });
                area_covered = current_area;
            }
            let p = current.as_mut().expect("partition opened above");
            p.nodes.push(node);
            p.area += current_area;
            if p.levels.last() != Some(&level) {
                p.levels.push(level);
            }
            assignment[node.index()] = p.index;
        }
    }
    if let Some(p) = current {
        partitions.push(p);
    }
    Ok(TemporalPartitioning {
        partitions,
        assignment,
        max_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::OpKind;

    /// A device with the legacy test characterisation (ALU 30 / MUL 120 /
    /// mem 20) so the algorithm tests pin concrete partition counts
    /// independently of the calibrated crate defaults. Usable area is
    /// `0.7 × total`.
    fn device(total: u64) -> FpgaDevice {
        let mut dev = FpgaDevice::new(total);
        dev.area = crate::AreaLibrary {
            alu: 30,
            mul: 120,
            div: 240,
            mem: 20,
        };
        dev
    }

    fn wide_dfg(n: usize) -> Dfg {
        // n independent 32-bit adds, all at level 1, 30 units each.
        let mut dfg = Dfg::new("wide");
        for _ in 0..n {
            dfg.add_op(OpKind::Add, 32);
        }
        dfg
    }

    #[test]
    fn everything_fits_one_partition() {
        let dfg = wide_dfg(10); // 300 units
        let tp = temporal_partition(&dfg, &device(1500)).unwrap(); // usable 1050
        assert_eq!(tp.len(), 1);
        assert_eq!(tp.partitions()[0].area, 300);
        for n in dfg.node_ids() {
            assert_eq!(tp.partition_of(n), 1);
        }
    }

    #[test]
    fn area_exhaustion_opens_new_partition() {
        let dfg = wide_dfg(50); // 1500 units of adds
        let tp = temporal_partition(&dfg, &device(1500)).unwrap(); // usable 1050 → 35 adds
        assert_eq!(tp.len(), 2);
        assert_eq!(tp.partitions()[0].nodes.len(), 35);
        assert_eq!(tp.partitions()[1].nodes.len(), 15);
        assert!(tp.partitions().iter().all(|p| p.area <= 1050));
    }

    #[test]
    fn level_order_is_respected() {
        // Two levels: 3 muls at level 1 feeding 3 adds at level 2.
        let mut dfg = Dfg::new("two_level");
        let mut muls = Vec::new();
        for _ in 0..3 {
            muls.push(dfg.add_op(OpKind::Mul, 32)); // 120 each
        }
        for &m in &muls {
            let a = dfg.add_op(OpKind::Add, 32);
            dfg.add_edge(m, a).unwrap();
        }
        // usable 280: fits 2 muls; partition boundaries must never place a
        // level-2 node before a level-1 node.
        let dev = device(400); // usable 280
        let tp = temporal_partition(&dfg, &dev).unwrap();
        let mut seen_level2 = false;
        for p in tp.partitions() {
            for &n in &p.nodes {
                let lv = amdrel_cdfg::asap_levels(&dfg).unwrap().level(n);
                if lv == 2 {
                    seen_level2 = true;
                } else {
                    assert!(!seen_level2, "level-1 node after level-2 node");
                }
            }
        }
    }

    #[test]
    fn partition_indices_are_sequential() {
        let dfg = wide_dfg(50);
        let tp = temporal_partition(&dfg, &device(1500)).unwrap();
        for (k, p) in tp.partitions().iter().enumerate() {
            assert_eq!(p.index, k as u32 + 1);
        }
    }

    #[test]
    fn boundary_nodes_excluded() {
        let mut dfg = Dfg::new("io");
        let inp = dfg.add_op(OpKind::LiveIn, 32);
        let add = dfg.add_op(OpKind::Add, 32);
        let out = dfg.add_op(OpKind::LiveOut, 32);
        dfg.add_edge(inp, add).unwrap();
        dfg.add_edge(add, out).unwrap();
        let tp = temporal_partition(&dfg, &device(1500)).unwrap();
        assert_eq!(tp.len(), 1);
        assert_eq!(tp.partition_of(inp), 0);
        assert_eq!(tp.partition_of(add), 1);
        assert_eq!(tp.partition_of(out), 0);
    }

    #[test]
    fn oversized_node_rejected() {
        let mut dfg = Dfg::new("big");
        dfg.add_op(OpKind::Mul, 32); // 120 units
        let err = temporal_partition(&dfg, &device(100)).unwrap_err(); // usable 70
        assert!(matches!(
            err,
            FineGrainError::NodeTooLarge {
                area: 120,
                usable: 70,
                ..
            }
        ));
    }

    #[test]
    fn empty_dfg_yields_no_partitions() {
        let dfg = Dfg::new("empty");
        let tp = temporal_partition(&dfg, &device(1500)).unwrap();
        assert!(tp.is_empty());
        assert_eq!(tp.max_level(), 0);
    }

    #[test]
    fn exact_fit_boundary() {
        // usable = 70 exactly fits 2 adds of 35... adds are 30, so pick
        // total 100 → usable 70 → two 30-unit adds fit (60), third opens
        // a new partition.
        let dfg = wide_dfg(3);
        let tp = temporal_partition(&dfg, &device(100)).unwrap();
        assert_eq!(tp.len(), 2);
        assert_eq!(tp.partitions()[0].nodes.len(), 2);
    }

    #[test]
    fn levels_recorded_per_partition() {
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_op(OpKind::Add, 32);
        let b = dfg.add_op(OpKind::Add, 32);
        let c = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(a, b).unwrap();
        dfg.add_edge(b, c).unwrap();
        let tp = temporal_partition(&dfg, &device(1500)).unwrap();
        assert_eq!(tp.partitions()[0].levels, vec![1, 2, 3]);
    }
}
