//! # amdrel-finegrain — the fine-grain (embedded FPGA) side of the platform
//!
//! Models the fine-grain reconfigurable hardware of the generic platform
//! (Figure 1 of Galanis et al., DATE 2004) and implements the paper's
//! mapping methodology for it:
//!
//! * [`FpgaDevice`] — parameterised timing/area characterisation
//!   (`A_FPGA`, 70% routable fraction, reconfiguration cost);
//! * [`temporal_partition`] — the ASAP-level temporal partitioning
//!   algorithm, a line-by-line transcription of the paper's Figure 3;
//! * [`map_dfg`] / [`CdfgFineGrainMapping`] — per-block execution time and
//!   the whole-application `t_FPGA` of eq. (4), including full
//!   reconfiguration per temporal partition.
//!
//! # Examples
//!
//! ```
//! use amdrel_cdfg::{Dfg, OpKind};
//! use amdrel_finegrain::{map_dfg, FpgaDevice};
//!
//! # fn main() -> Result<(), amdrel_finegrain::FineGrainError> {
//! let mut dfg = Dfg::new("fir_tap");
//! let x = dfg.add_op(OpKind::LiveIn, 16);
//! let m = dfg.add_op(OpKind::Mul, 16);
//! let a = dfg.add_op(OpKind::Add, 32);
//! dfg.add_edge(x, m)?;
//! dfg.add_edge(m, a)?;
//!
//! let device = FpgaDevice::new(1500); // the paper's small configuration
//! let mapping = map_dfg(&dfg, &device)?;
//! assert_eq!(mapping.partitioning.len(), 1);
//! assert!(mapping.cycles_per_exec() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod mapping;
pub mod report;
mod temporal;

pub use device::{AreaLibrary, FpgaConfigKey, FpgaDevice, FpgaLatency, ReconfigPolicy};
pub use mapping::{map_dfg, CdfgFineGrainMapping, FineGrainMapping, PartitionFootprint};
pub use temporal::{temporal_partition, TemporalPartition, TemporalPartitioning};

use amdrel_cdfg::{GraphError, NodeId};
use std::fmt;

/// Errors from fine-grain mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FineGrainError {
    /// A single operation is larger than the usable device area.
    NodeTooLarge {
        /// The offending node.
        node: NodeId,
        /// Its area.
        area: u64,
        /// The usable device area.
        usable: u64,
    },
    /// The underlying DFG was malformed.
    Graph(GraphError),
}

impl fmt::Display for FineGrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FineGrainError::NodeTooLarge { node, area, usable } => write!(
                f,
                "node {node} needs {area} area units but only {usable} are usable"
            ),
            FineGrainError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for FineGrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FineGrainError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for FineGrainError {
    fn from(e: GraphError) -> Self {
        FineGrainError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<FineGrainError>();
        let e = FineGrainError::NodeTooLarge {
            node: NodeId(3),
            area: 120,
            usable: 70,
        };
        assert!(e.to_string().contains("120"));
    }
}
