//! A shared, thread-safe cache of fabric mappings.
//!
//! The experiment grids of Tables 2/3 sweep one application across
//! `A_FPGA × datapath` configurations, but the fine-grain mapping depends
//! only on the FPGA characterisation and the coarse-grain mapping only on
//! the (datapath, scheduler) pair. A [`MappingCache`] memoises both by
//! those keys (plus a ~128-bit structural fingerprint of the CDFG, so one
//! cache can serve several applications), turning an `A × D × C` sweep over
//! `A` areas, `D` datapaths and `C` constraints into `A + D` mapping
//! computations instead of `A · D · C` of each.
//!
//! Mappings are handed out as [`Arc`]s: repeated lookups of the same
//! configuration return pointer-equal clones with no copying. All methods
//! take `&self` and the cache is `Sync`, so [`run_grid_parallel`]
//! (see [`crate::run_grid_parallel`]) shares one cache across its worker
//! threads; a miss is computed while the map lock is held, so each
//! configuration is mapped exactly once even under concurrent lookups.

use crate::CoreError;
use amdrel_cdfg::Cdfg;
use amdrel_coarsegrain::{CdfgCoarseGrainMapping, CgcDatapath, SchedulerConfig};
use amdrel_finegrain::{CdfgFineGrainMapping, FpgaConfigKey, FpgaDevice};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of a [`MappingCache`].
///
/// A "miss" is a mapping actually computed, so `fine_misses` /
/// `coarse_misses` count the real mapping work performed through the
/// cache — the quantity the grid runner promises to keep at `A + D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Fine-grain lookups served from the cache.
    pub fine_hits: u64,
    /// Fine-grain mappings computed (one per distinct FPGA config × CDFG).
    pub fine_misses: u64,
    /// Coarse-grain lookups served from the cache.
    pub coarse_hits: u64,
    /// Coarse-grain mappings computed (one per distinct datapath/scheduler
    /// config × CDFG).
    pub coarse_misses: u64,
    /// Mappings currently resident (fine + coarse map entries). Grows
    /// monotonically — the cache never evicts — so this equals the
    /// distinct configurations mapped so far.
    pub entries: u64,
}

impl CacheStats {
    /// Total lookups served without mapping work.
    pub fn hits(&self) -> u64 {
        self.fine_hits + self.coarse_hits
    }

    /// Total mappings computed.
    pub fn misses(&self) -> u64 {
        self.fine_misses + self.coarse_misses
    }
}

type FineKey = (CdfgFingerprint, FpgaConfigKey);
type CoarseKey = (CdfgFingerprint, CgcDatapath, SchedulerConfig);

/// Memoises [`CdfgFineGrainMapping`]s by FPGA configuration and
/// [`CdfgCoarseGrainMapping`]s by (datapath, scheduler) configuration.
///
/// # Examples
///
/// ```
/// use amdrel_core::{MappingCache, Platform};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), amdrel_core::CoreError> {
/// let program = amdrel_minic::compile(
///     "int x[8]; int main() { int s = 0; for (int i = 0; i < 8; i++) { s += x[i]; } return s; }",
///     "main",
/// ).expect("compiles");
/// let platform = Platform::paper(1500, 2);
/// let cache = MappingCache::new();
/// let a = cache.fine(&program.cdfg, &platform.fpga)?;
/// let b = cache.fine(&program.cdfg, &platform.fpga)?;
/// assert!(Arc::ptr_eq(&a, &b)); // second lookup is a pointer-equal hit
/// assert_eq!(cache.stats().fine_misses, 1);
/// assert_eq!(cache.stats().fine_hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct MappingCache {
    fine: Mutex<HashMap<FineKey, Arc<CdfgFineGrainMapping>>>,
    coarse: Mutex<HashMap<CoarseKey, Arc<CdfgCoarseGrainMapping>>>,
    fine_hits: AtomicU64,
    fine_misses: AtomicU64,
    coarse_hits: AtomicU64,
    coarse_misses: AtomicU64,
}

impl MappingCache {
    /// An empty cache.
    pub fn new() -> Self {
        MappingCache::default()
    }

    /// The structural fingerprint of `cdfg` used in the cache keys —
    /// O(nodes + edges) to compute. Callers performing several lookups
    /// for one CDFG (the engine does two per run) can compute it once and
    /// use [`Self::fine_keyed`] / [`Self::coarse_keyed`] instead of
    /// re-hashing per lookup.
    pub fn fingerprint(cdfg: &Cdfg) -> CdfgFingerprint {
        fingerprint(cdfg)
    }

    /// The fine-grain mapping of `cdfg` on `device`, computed on first
    /// use and shared thereafter.
    ///
    /// # Errors
    ///
    /// Propagates the mapping failure of a cache miss.
    pub fn fine(
        &self,
        cdfg: &Cdfg,
        device: &FpgaDevice,
    ) -> Result<Arc<CdfgFineGrainMapping>, CoreError> {
        self.fine_keyed(fingerprint(cdfg), cdfg, device)
    }

    /// [`Self::fine`] with the CDFG fingerprint precomputed by
    /// [`Self::fingerprint`]. `fp` must belong to `cdfg`.
    ///
    /// # Errors
    ///
    /// Propagates the mapping failure of a cache miss.
    pub fn fine_keyed(
        &self,
        fp: CdfgFingerprint,
        cdfg: &Cdfg,
        device: &FpgaDevice,
    ) -> Result<Arc<CdfgFineGrainMapping>, CoreError> {
        let key = (fp, device.config_key());
        let mut map = self.fine.lock().expect("mapping cache lock poisoned");
        match map.entry(key) {
            Entry::Occupied(e) => {
                self.fine_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(e.get()))
            }
            Entry::Vacant(v) => {
                self.fine_misses.fetch_add(1, Ordering::Relaxed);
                let mapping = Arc::new(CdfgFineGrainMapping::map(cdfg, device)?);
                Ok(Arc::clone(v.insert(mapping)))
            }
        }
    }

    /// The coarse-grain mapping of `cdfg` on `datapath` under `scheduler`,
    /// computed on first use and shared thereafter.
    ///
    /// # Errors
    ///
    /// Propagates the mapping failure of a cache miss.
    pub fn coarse(
        &self,
        cdfg: &Cdfg,
        datapath: &CgcDatapath,
        scheduler: &SchedulerConfig,
    ) -> Result<Arc<CdfgCoarseGrainMapping>, CoreError> {
        self.coarse_keyed(fingerprint(cdfg), cdfg, datapath, scheduler)
    }

    /// [`Self::coarse`] with the CDFG fingerprint precomputed by
    /// [`Self::fingerprint`]. `fp` must belong to `cdfg`.
    ///
    /// # Errors
    ///
    /// Propagates the mapping failure of a cache miss.
    pub fn coarse_keyed(
        &self,
        fp: CdfgFingerprint,
        cdfg: &Cdfg,
        datapath: &CgcDatapath,
        scheduler: &SchedulerConfig,
    ) -> Result<Arc<CdfgCoarseGrainMapping>, CoreError> {
        let key = (fp, datapath.clone(), *scheduler);
        let mut map = self.coarse.lock().expect("mapping cache lock poisoned");
        match map.entry(key) {
            Entry::Occupied(e) => {
                self.coarse_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(e.get()))
            }
            Entry::Vacant(v) => {
                self.coarse_misses.fetch_add(1, Ordering::Relaxed);
                let mapping = Arc::new(CdfgCoarseGrainMapping::map(cdfg, datapath, scheduler)?);
                Ok(Arc::clone(v.insert(mapping)))
            }
        }
    }

    /// A snapshot of the hit/miss counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        let fine_entries = self.fine.lock().expect("mapping cache lock poisoned").len();
        let coarse_entries = self
            .coarse
            .lock()
            .expect("mapping cache lock poisoned")
            .len();
        CacheStats {
            fine_hits: self.fine_hits.load(Ordering::Relaxed),
            fine_misses: self.fine_misses.load(Ordering::Relaxed),
            coarse_hits: self.coarse_hits.load(Ordering::Relaxed),
            coarse_misses: self.coarse_misses.load(Ordering::Relaxed),
            entries: (fine_entries + coarse_entries) as u64,
        }
    }
}

/// An opaque structural fingerprint of a CDFG (see
/// [`MappingCache::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CdfgFingerprint((u64, u64));

/// Feeds every write to two differently-salted [`DefaultHasher`]s, giving
/// an effectively 128-bit structural hash — collisions between different
/// CDFGs sharing one cache are then out of practical reach (the cache is
/// not designed against adversarially crafted inputs).
struct PairHasher {
    a: DefaultHasher,
    b: DefaultHasher,
}

impl PairHasher {
    fn new() -> Self {
        let a = DefaultHasher::new();
        let mut b = DefaultHasher::new();
        0xA5A5_5A5A_D1FF_E4E4u64.hash(&mut b);
        PairHasher { a, b }
    }

    fn finish_pair(&self) -> (u64, u64) {
        (self.a.finish(), self.b.finish())
    }
}

impl Hasher for PairHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.a.finish()
    }
}

/// A structural fingerprint of a CDFG: name, control edges, and every
/// block's label, interface widths and DFG (node kinds, bitwidths, data
/// edges). Everything the fabric mappers read is covered, so equal
/// fingerprints mean equal mappings for a given configuration.
fn fingerprint(cdfg: &Cdfg) -> CdfgFingerprint {
    // DefaultHasher::new() is keyed with fixed constants, so the
    // fingerprint is stable within (and across) processes.
    let mut h = PairHasher::new();
    cdfg.name().hash(&mut h);
    cdfg.len().hash(&mut h);
    for (id, bb) in cdfg.iter() {
        bb.label.hash(&mut h);
        bb.live_in.hash(&mut h);
        bb.live_out.hash(&mut h);
        cdfg.succs(id).hash(&mut h);
        bb.dfg.len().hash(&mut h);
        for (nid, node) in bb.dfg.iter() {
            node.kind.hash(&mut h);
            node.bitwidth.hash(&mut h);
            bb.dfg.preds(nid).hash(&mut h);
        }
    }
    CdfgFingerprint(h.finish_pair())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use amdrel_cdfg::{BasicBlock, Dfg, OpKind};

    fn toy_cdfg(name: &str, muls: usize) -> Cdfg {
        let mut cdfg = Cdfg::new(name);
        let mut dfg = Dfg::new("b0");
        let mut prev = dfg.add_op(OpKind::LiveIn, 32);
        for _ in 0..muls {
            let m = dfg.add_op(OpKind::Mul, 32);
            dfg.add_edge(prev, m).unwrap();
            prev = m;
        }
        cdfg.add_block(BasicBlock::from_dfg("b0", dfg));
        cdfg
    }

    #[test]
    fn repeated_fine_lookups_are_pointer_equal() {
        let cdfg = toy_cdfg("app", 3);
        let platform = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let a = cache.fine(&cdfg, &platform.fpga).unwrap();
        let b = cache.fine(&cdfg, &platform.fpga).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.fine_misses, stats.fine_hits), (1, 1));
    }

    #[test]
    fn repeated_coarse_lookups_are_pointer_equal() {
        let cdfg = toy_cdfg("app", 3);
        let platform = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let a = cache
            .coarse(&cdfg, &platform.datapath, &platform.scheduler)
            .unwrap();
        let b = cache
            .coarse(&cdfg, &platform.datapath, &platform.scheduler)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.coarse_misses, stats.coarse_hits), (1, 1));
    }

    #[test]
    fn distinct_configs_miss_separately() {
        let cdfg = toy_cdfg("app", 3);
        let cache = MappingCache::new();
        let small = Platform::paper(1500, 2);
        let large = Platform::paper(5000, 3);
        let a = cache.fine(&cdfg, &small.fpga).unwrap();
        let b = cache.fine(&cdfg, &large.fpga).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let c = cache
            .coarse(&cdfg, &small.datapath, &small.scheduler)
            .unwrap();
        let d = cache
            .coarse(&cdfg, &large.datapath, &large.scheduler)
            .unwrap();
        assert!(!Arc::ptr_eq(&c, &d));
        let stats = cache.stats();
        assert_eq!(stats.misses(), 4);
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.entries, 4, "every miss leaves a resident mapping");
    }

    #[test]
    fn distinct_cdfgs_do_not_collide() {
        let cache = MappingCache::new();
        let platform = Platform::paper(1500, 2);
        let a = cache.fine(&toy_cdfg("app", 2), &platform.fpga).unwrap();
        let b = cache.fine(&toy_cdfg("app", 9), &platform.fpga).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().fine_misses, 2);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<MappingCache>();
    }
}
