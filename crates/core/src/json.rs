//! Hand-rolled machine-readable JSON rendering, shared by every `--json`
//! output in the workspace.
//!
//! The vendored `serde` stand-in provides derives only (no runtime
//! serialisation — see `vendor/README.md`), so `amdrel sweep --json`,
//! `amdrel explore --json` and `amdrel simulate --json` all render
//! through this one module instead of growing per-crate copies. Output
//! is deterministic: fixed key order, `\u` escapes for control
//! characters, and fixed-precision floats.

use crate::cache::CacheStats;
use crate::experiment::ExperimentGrid;
use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// Escape `s` for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a list of strings as a JSON array literal (each element
/// escaped), e.g. `["cycles","area"]`.
pub fn string_array<S: AsRef<str>>(items: &[S]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(item.as_ref()));
    }
    out.push(']');
    out
}

/// Render a list of `u64`s as a JSON array literal, e.g. `[1,2,3]`.
pub fn u64_array(items: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{item}");
    }
    out.push(']');
    out
}

/// Render mapping-cache counters as a JSON object.
pub fn cache_to_json(stats: &CacheStats) -> String {
    format!(
        "{{\"fine_misses\":{},\"fine_hits\":{},\"coarse_misses\":{},\"coarse_hits\":{},\
         \"entries\":{}}}",
        stats.fine_misses, stats.fine_hits, stats.coarse_misses, stats.coarse_hits, stats.entries
    )
}

/// Publish mapping-cache counters into `metrics` under the `cache.`
/// prefix (the shared shape of every `--json` report's cache metrics).
pub fn publish_cache_metrics(metrics: &mut MetricsRegistry, stats: &CacheStats) {
    metrics.set("cache.fine_hits", stats.fine_hits);
    metrics.set("cache.fine_misses", stats.fine_misses);
    metrics.set("cache.coarse_hits", stats.coarse_hits);
    metrics.set("cache.coarse_misses", stats.coarse_misses);
    metrics.set("cache.entries", stats.entries);
}

/// Render an [`ExperimentGrid`] (the `sweep` subcommand's result) plus
/// its cache counters as JSON.
pub fn grid_to_json(grid: &ExperimentGrid, cache: &CacheStats) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-sweep/v2\",\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", escape(&grid.app));
    let _ = writeln!(out, "  \"constraint\": {},", grid.constraint);
    out.push_str("  \"cells\": [\n");
    for (i, cell) in grid.cells.iter().enumerate() {
        let moved: Vec<String> = cell
            .result
            .moved_blocks()
            .iter()
            .map(|b| b.index().to_string())
            .collect();
        let _ = write!(
            out,
            "    {{\"area\":{},\"datapath\":\"{}\",\"initial_cycles\":{},\"final_cycles\":{},\
             \"cycles_in_cgc\":{},\"moved_blocks\":[{}],\"reduction_percent\":{:.2},\"met\":{}}}",
            cell.area,
            escape(&cell.datapath),
            cell.result.initial_cycles,
            cell.result.final_cycles(),
            cell.result.breakdown.t_coarse_cgc,
            moved.join(","),
            cell.result.reduction_percent(),
            cell.result.met,
        );
        out.push_str(if i + 1 == grid.cells.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"cache\": {},", cache_to_json(cache));
    let mut metrics = MetricsRegistry::new();
    publish_cache_metrics(&mut metrics, cache);
    let (mut moves, mut reverts) = (0u64, 0u64);
    for cell in &grid.cells {
        moves += cell.result.moves.len() as u64;
        reverts += cell.result.moves_reverted;
    }
    metrics.set("engine.moves", moves);
    metrics.set("engine.reverts", reverts);
    metrics.set("engine.cells", grid.cells.len() as u64);
    let _ = writeln!(out, "  \"metrics\": {}", metrics.to_json());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn array_helpers_render_literals() {
        assert_eq!(string_array(&["a", "b\"c"]), "[\"a\", \"b\\\"c\"]");
        assert_eq!(string_array::<&str>(&[]), "[]");
        assert_eq!(u64_array(&[1, 22, 333]), "[1,22,333]");
        assert_eq!(u64_array(&[]), "[]");
    }

    #[test]
    fn cache_json_shape() {
        let json = cache_to_json(&CacheStats::default());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fine_misses\":0"));
    }
}
