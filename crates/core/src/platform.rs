//! The hybrid reconfigurable platform description (Figure 1 of the paper).
//!
//! "The platform includes coarse and fine-grain reconfigurable hardware
//! units for data processing, shared data memory, and a reconfigurable
//! interconnection network." A [`Platform`] bundles the fine-grain device
//! characterisation, the CGC datapath, the clock-domain ratio and the
//! shared-memory communication model — everything the partitioning engine
//! needs to evaluate eq. (2).

use amdrel_coarsegrain::{CgcDatapath, SchedulerConfig};
use amdrel_finegrain::FpgaDevice;
use serde::{Deserialize, Serialize};

/// Cost model for moving data between the fine- and coarse-grain units
/// through the shared data memory.
///
/// Moving a kernel to the coarse-grain datapath means each execution must
/// read its live-ins from, and write its live-outs to, the shared memory:
///
/// ```text
/// t_comm(BB) = Iter(BB) × ((live_in + live_out) × cycles_per_word + setup_cycles)
/// ```
///
/// in FPGA cycles. The defaults (1 cycle/word, 2-cycle setup) keep
/// communication subordinate to kernel compute time, consistent with the
/// paper's results where `t_comm` is accounted for but never dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommModel {
    /// FPGA cycles per word transferred through the shared data memory.
    pub cycles_per_word: u64,
    /// Fixed FPGA-cycle overhead per kernel invocation (synchronisation
    /// through the interconnect).
    pub setup_cycles: u64,
}

impl CommModel {
    /// The default shared-memory cost model.
    pub fn shared_memory() -> Self {
        CommModel {
            cycles_per_word: 1,
            setup_cycles: 2,
        }
    }

    /// A zero-cost model (ablation: ideal communication).
    pub fn free() -> Self {
        CommModel {
            cycles_per_word: 0,
            setup_cycles: 0,
        }
    }

    /// Communication cycles for one execution of a block with the given
    /// interface widths.
    pub fn cycles_per_exec(&self, live_in: u32, live_out: u32) -> u64 {
        u64::from(live_in + live_out) * self.cycles_per_word + self.setup_cycles
    }
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel::shared_memory()
    }
}

/// Cost model for loading a fine-grain configuration (a set of temporal
/// partitions) onto the FPGA at runtime.
///
/// Partial-reconfiguration work scales with the configuration's area —
/// bigger bitstreams take longer to stream in — plus a fixed per-load
/// overhead for frame addressing and ICAP setup:
///
/// ```text
/// t_reconfig(partition) = base_cycles + area × cycles_per_area
/// ```
///
/// in FPGA cycles. The engine's per-execution reconfiguration accounting
/// (eq. (4)) stays inside [`amdrel_finegrain::FpgaDevice`]; this model
/// prices the *inter-application* swaps the multi-tenant runtime
/// simulator (`amdrel-runtime`) performs when one application's
/// configuration replaces another's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReconfigModel {
    /// Fixed FPGA-cycle overhead per configuration load.
    pub base_cycles: u64,
    /// FPGA cycles per abstract area unit streamed in.
    pub cycles_per_area: u64,
}

impl ReconfigModel {
    /// The default model: 100-cycle setup plus one cycle per area unit
    /// (a 1500-unit device swaps in ~1.6k cycles — small next to the
    /// case-study kernels, large enough to matter under heavy traffic).
    pub fn streamed() -> Self {
        ReconfigModel {
            base_cycles: 100,
            cycles_per_area: 1,
        }
    }

    /// A zero-cost model (ablation: free reconfiguration).
    pub fn free() -> Self {
        ReconfigModel {
            base_cycles: 0,
            cycles_per_area: 0,
        }
    }

    /// FPGA cycles to load one temporal partition of `area` units.
    pub fn load_cycles(&self, area: u64) -> u64 {
        self.base_cycles + area.saturating_mul(self.cycles_per_area)
    }

    /// Whether every load is free (the [`ReconfigModel::free`] ablation).
    pub fn is_free(&self) -> bool {
        self.base_cycles == 0 && self.cycles_per_area == 0
    }
}

impl Default for ReconfigModel {
    fn default() -> Self {
        ReconfigModel::streamed()
    }
}

/// The complete hybrid platform.
///
/// # Examples
///
/// ```
/// use amdrel_core::Platform;
///
/// // The paper's four experimental configurations:
/// for area in [1500u64, 5000] {
///     for cgcs in [2usize, 3] {
///         let p = Platform::paper(area, cgcs);
///         assert_eq!(p.clock_ratio, 3); // T_FPGA = 3 × T_CGC
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Fine-grain (embedded FPGA) device.
    pub fpga: FpgaDevice,
    /// Coarse-grain CGC datapath.
    pub datapath: CgcDatapath,
    /// `T_FPGA / T_CGC` (paper: 3 — "a rather moderate assumption for the
    /// performance gain of an ASIC technology compared to an FPGA one").
    pub clock_ratio: u64,
    /// Shared-memory communication cost model.
    pub comm: CommModel,
    /// Coarse-grain scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// Runtime configuration-load cost model (inter-application swaps).
    pub reconfig: ReconfigModel,
}

impl Platform {
    /// A platform with the given devices and default clock ratio (3),
    /// communication model and scheduler.
    pub fn new(fpga: FpgaDevice, datapath: CgcDatapath) -> Self {
        Platform {
            fpga,
            datapath,
            clock_ratio: 3,
            comm: CommModel::default(),
            scheduler: SchedulerConfig::default(),
            reconfig: ReconfigModel::default(),
        }
    }

    /// One of the paper's experimental configurations: `A_FPGA = area`
    /// (1500 or 5000 in the paper) and `cgc_count` 2×2 CGCs (two or
    /// three).
    ///
    /// # Panics
    ///
    /// Panics if `cgc_count == 0`.
    pub fn paper(area: u64, cgc_count: usize) -> Self {
        Platform::new(
            FpgaDevice::new(area),
            CgcDatapath::uniform(cgc_count, amdrel_coarsegrain::CgcGeometry::TWO_BY_TWO),
        )
    }

    /// Builder-style override of the clock ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0`.
    pub fn with_clock_ratio(mut self, ratio: u64) -> Self {
        assert!(ratio > 0, "clock ratio must be positive");
        self.clock_ratio = ratio;
        self
    }

    /// Builder-style override of the communication model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Builder-style override of the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style override of the runtime reconfiguration model.
    pub fn with_reconfig(mut self, reconfig: ReconfigModel) -> Self {
        self.reconfig = reconfig;
        self
    }

    /// Convert CGC cycles to FPGA cycles, rounding up.
    /// (`t × T_CGC = t / ratio × T_FPGA`.)
    pub fn cgc_to_fpga_cycles(&self, cgc_cycles: u64) -> u64 {
        cgc_cycles.div_ceil(self.clock_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_model_formula() {
        let m = CommModel::shared_memory();
        assert_eq!(m.cycles_per_exec(3, 2), 5 + 2);
        assert_eq!(CommModel::free().cycles_per_exec(100, 100), 0);
    }

    #[test]
    fn paper_platform_shapes() {
        let p = Platform::paper(1500, 3);
        assert_eq!(p.fpga.total_area, 1500);
        assert_eq!(p.datapath.cgcs.len(), 3);
        assert_eq!(p.datapath.describe(), "three 2x2 CGCs");
    }

    #[test]
    fn clock_conversion_rounds_up() {
        let p = Platform::paper(1500, 2);
        assert_eq!(p.cgc_to_fpga_cycles(9), 3);
        assert_eq!(p.cgc_to_fpga_cycles(10), 4);
        assert_eq!(p.cgc_to_fpga_cycles(0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_panics() {
        let _ = Platform::paper(1500, 2).with_clock_ratio(0);
    }

    #[test]
    fn reconfig_model_scales_with_area() {
        let m = ReconfigModel::streamed();
        assert_eq!(m.load_cycles(0), 100);
        assert_eq!(m.load_cycles(1050), 1150);
        assert!(!m.is_free());
        assert_eq!(ReconfigModel::free().load_cycles(u64::MAX), 0);
        assert!(ReconfigModel::free().is_free());
    }

    #[test]
    fn platform_carries_reconfig_model() {
        let p = Platform::paper(1500, 2).with_reconfig(ReconfigModel {
            base_cycles: 7,
            cycles_per_area: 3,
        });
        assert_eq!(p.reconfig.load_cycles(10), 37);
        assert_eq!(Platform::paper(1500, 2).reconfig, ReconfigModel::streamed());
    }
}
