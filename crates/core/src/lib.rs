//! # amdrel-core — the partitioning engine for hybrid reconfigurable
//! platforms
//!
//! The primary contribution of Galanis et al. (DATE 2004): a formalised,
//! automated methodology that splits an application between the fine-grain
//! (embedded FPGA) and coarse-grain (CGC datapath) units of a hybrid
//! reconfigurable platform so that a timing constraint is met.
//!
//! * [`Platform`] — the Figure 1 platform model (FPGA + CGC datapath +
//!   shared data memory + clock domains);
//! * [`PartitioningEngine`] — the Figure 2 flow: all-FPGA mapping and
//!   constraint check, then kernel-by-kernel movement to the coarse-grain
//!   hardware with eq. (2) accounting
//!   (`t_total = t_FPGA + t_coarse + t_comm`);
//! * [`run_flow`] — one-call convenience wrapper (compile → profile →
//!   analyse → partition);
//! * [`run_grid`] / [`format_paper_table`] — the Tables 2/3 experiment
//!   sweep and its paper-layout rendering;
//! * [`MappingCache`] — shared memoisation of the fabric mappings (fine
//!   by FPGA config, coarse by datapath/scheduler config), so design-space
//!   sweeps map each configuration once;
//! * [`run_grid_parallel`] — the grid sweep on scoped threads, cell-for-
//!   cell identical output to [`run_grid`] (worker count controllable via
//!   [`run_grid_parallel_jobs`]);
//! * [`rng`] — the deterministic seeded [`rng::SplitMix64`] stream that
//!   makes design-space exploration reproducible and
//!   thread-count-independent;
//! * [`BlockEnergyCosts`] — per-block energy pricing behind
//!   [`energy_of_assignment`], exposing O(1) move deltas for sweeps;
//! * [`ReconfigModel`] — area-derived configuration-load cost, priced per
//!   temporal partition, for the multi-tenant runtime simulator
//!   (`amdrel-runtime`);
//! * [`json`] — the shared hand-rolled JSON writer behind every `--json`
//!   output (`sweep`, `explore`, `simulate`);
//! * [`metrics`] — the dependency-free counter registry every `--json`
//!   report surfaces as its `metrics` object.
//!
//! # Examples
//!
//! ```
//! use amdrel_core::{run_flow, Platform};
//!
//! # fn main() -> Result<(), amdrel_core::CoreError> {
//! let src = r#"
//!     int x[64];
//!     int y[64];
//!     int main() {
//!         for (int i = 0; i < 64; i++) {
//!             y[i] = x[i] * x[i] * 3 + 5;
//!         }
//!         return y[63];
//!     }
//! "#;
//! let platform = Platform::paper(1500, 2); // A_FPGA=1500, two 2x2 CGCs
//! let outcome = run_flow(src, &[], &platform, 2_000)?;
//! println!(
//!     "initial {} → final {} cycles ({:.1}% reduction)",
//!     outcome.result.initial_cycles,
//!     outcome.result.final_cycles(),
//!     outcome.result.reduction_percent(),
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod energy;
mod engine;
mod experiment;
mod flow;
pub mod json;
pub mod metrics;
mod pipeline;
mod platform;
pub mod rng;

pub use cache::{CacheStats, CdfgFingerprint, MappingCache};
pub use energy::{
    energy_of_assignment, partition_for_energy, BlockEnergyCosts, EnergyBreakdown, EnergyModel,
    EnergyMove, EnergyResult, OpEnergyTable,
};
pub use engine::{
    Assignment, Breakdown, EngineConfig, MoveRecord, PartitionResult, PartitioningEngine,
};
pub use experiment::{
    format_paper_table, run_grid, run_grid_cached, run_grid_parallel, run_grid_parallel_cached,
    run_grid_parallel_jobs, ExperimentGrid, GridCell, GridSpec,
};
pub use flow::{run_flow, run_flow_cached, run_flow_with, FlowOutcome};
pub use metrics::MetricsRegistry;
pub use pipeline::{pipeline_report, PipelineReport, Stage};
pub use platform::{CommModel, Platform, ReconfigModel};

use std::fmt;

/// Errors from the partitioning flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Frontend failure.
    Compile(amdrel_minic::CompileError),
    /// Profiling failure.
    Profile(amdrel_profiler::ProfileError),
    /// Fine-grain mapping failure.
    FineGrain(amdrel_finegrain::FineGrainError),
    /// Coarse-grain mapping failure.
    CoarseGrain(amdrel_coarsegrain::CoarseGrainError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "compile error: {e}"),
            CoreError::Profile(e) => write!(f, "profile error: {e}"),
            CoreError::FineGrain(e) => write!(f, "fine-grain mapping error: {e}"),
            CoreError::CoarseGrain(e) => write!(f, "coarse-grain mapping error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Compile(e) => Some(e),
            CoreError::Profile(e) => Some(e),
            CoreError::FineGrain(e) => Some(e),
            CoreError::CoarseGrain(e) => Some(e),
        }
    }
}

impl From<amdrel_minic::CompileError> for CoreError {
    fn from(e: amdrel_minic::CompileError) -> Self {
        CoreError::Compile(e)
    }
}

impl From<amdrel_profiler::ProfileError> for CoreError {
    fn from(e: amdrel_profiler::ProfileError) -> Self {
        CoreError::Profile(e)
    }
}

impl From<amdrel_finegrain::FineGrainError> for CoreError {
    fn from(e: amdrel_finegrain::FineGrainError) -> Self {
        CoreError::FineGrain(e)
    }
}

impl From<amdrel_coarsegrain::CoarseGrainError> for CoreError {
    fn from(e: amdrel_coarsegrain::CoarseGrainError) -> Self {
        CoreError::CoarseGrain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CoreError>();
    }
}
