//! Energy-constrained partitioning — the paper's stated *future work*.
//!
//! §5: "Future work focuses on partitioning an application for satisfying
//! energy consumption constraints." This module supplies that extension:
//! a per-class energy characterisation of both fabrics, eq. (2)-style
//! energy accounting for any block assignment, and an engine variant that
//! drains the kernel queue until an energy budget is met.
//!
//! The default characterisation encodes the standard finding the paper's
//! related work cites (Pleiades et al.): word-level operations executed
//! on ASIC coarse-grain units cost roughly an order of magnitude less
//! energy than on fine-grain LUT fabric, while reconfiguration and
//! shared-memory traffic add fixed per-event costs.

use crate::engine::Assignment;
use crate::platform::Platform;
use crate::CoreError;
use amdrel_cdfg::{Cdfg, OpClass};
use amdrel_finegrain::CdfgFineGrainMapping;
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};

/// Energy per operation class, in abstract energy units (pJ-scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpEnergyTable {
    /// ALU-class operation.
    pub alu: u64,
    /// Multiplication.
    pub mul: u64,
    /// Division.
    pub div: u64,
    /// Memory access.
    pub mem: u64,
}

impl OpEnergyTable {
    /// Energy of one operation of `class`; boundary pseudo-ops are free.
    pub fn class_energy(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Mem => self.mem,
            OpClass::Boundary => 0,
        }
    }
}

/// The platform's energy characterisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per-op energy on the fine-grain (FPGA) fabric.
    pub fpga: OpEnergyTable,
    /// Per-op energy on the coarse-grain (ASIC CGC) datapath.
    pub cgc: OpEnergyTable,
    /// Energy per full reconfiguration (per temporal-partition load).
    pub reconfig: u64,
    /// Energy per word moved through the shared data memory.
    pub comm_word: u64,
}

impl EnergyModel {
    /// Default characterisation: CGC word-level ops ~8× cheaper than the
    /// LUT fabric, expensive bitstream loads, SRAM-access-scale
    /// shared-memory words.
    pub fn asic_vs_lut() -> Self {
        EnergyModel {
            fpga: OpEnergyTable {
                alu: 8,
                mul: 40,
                div: 160,
                mem: 12,
            },
            cgc: OpEnergyTable {
                alu: 1,
                mul: 5,
                div: 20,
                mem: 12, // the shared memory is the same physical block
            },
            reconfig: 2000,
            comm_word: 6,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::asic_vs_lut()
    }
}

/// Energy decomposition of one application run under a given assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic energy of operations executed on the FPGA.
    pub e_fpga_ops: u64,
    /// Reconfiguration energy (bitstream loads on the FPGA).
    pub e_reconfig: u64,
    /// Dynamic energy of operations executed on the CGC datapath.
    pub e_cgc_ops: u64,
    /// Shared-memory transfer energy for moved kernels.
    pub e_comm: u64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> u64 {
        self.e_fpga_ops + self.e_reconfig + self.e_cgc_ops + self.e_comm
    }
}

/// Per-block energy contributions of both fabrics, `exec_freq`-scaled —
/// the energy analogue of the timing engine's precomputed cost vectors.
///
/// Element `i` of each vector is block `i`'s contribution to the matching
/// [`EnergyBreakdown`] component when the block sits on that fabric, so
/// any assignment's energy is a sum over these vectors
/// ([`Self::breakdown`]), and moving one block between the fabrics is an
/// O(1) delta ([`Self::move_to_coarse`]). Design-space explorers use the
/// deltas to walk every kernel-budget prefix of a move trace without
/// rescanning the CDFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEnergyCosts {
    /// Dynamic operation energy on the FPGA (`freq × Σ fpga op-energy`).
    pub fpga_ops: Vec<u64>,
    /// Reconfiguration energy on the FPGA (`freq × partitions × reconfig`,
    /// the same accounting as eq. (4)'s time).
    pub reconfig: Vec<u64>,
    /// Dynamic operation energy on the CGC datapath.
    pub cgc_ops: Vec<u64>,
    /// Shared-memory traffic energy when moved
    /// (`freq × (live_in + live_out) × comm_word`).
    pub comm: Vec<u64>,
}

impl BlockEnergyCosts {
    /// Compute the vectors from an analysed application and its fine-grain
    /// mapping (needed for the temporal-partition counts). The mapping may
    /// come from a shared [`crate::MappingCache`], so sweeps price many
    /// assignments against one mapping.
    pub fn compute(
        cdfg: &Cdfg,
        analysis: &AnalysisReport,
        fine: &CdfgFineGrainMapping,
        model: &EnergyModel,
    ) -> Self {
        let n = cdfg.len();
        let mut costs = BlockEnergyCosts {
            fpga_ops: Vec::with_capacity(n),
            reconfig: Vec::with_capacity(n),
            cgc_ops: Vec::with_capacity(n),
            comm: Vec::with_capacity(n),
        };
        for (i, (id, bb)) in cdfg.iter().enumerate() {
            let freq = analysis.block(id).exec_freq;
            let hist = bb.dfg.class_histogram();
            let per_exec_fpga: u64 = hist
                .iter()
                .map(|(&c, &n)| model.fpga.class_energy(c) * n as u64)
                .sum();
            let per_exec_cgc: u64 = hist
                .iter()
                .map(|(&c, &n)| model.cgc.class_energy(c) * n as u64)
                .sum();
            costs.fpga_ops.push(freq.saturating_mul(per_exec_fpga));
            costs.reconfig.push(
                freq.saturating_mul(fine.blocks[i].partitioning.len() as u64)
                    .saturating_mul(model.reconfig),
            );
            costs.cgc_ops.push(freq.saturating_mul(per_exec_cgc));
            costs.comm.push(
                freq.saturating_mul(u64::from(bb.live_in + bb.live_out))
                    .saturating_mul(model.comm_word),
            );
        }
        costs
    }

    /// The energy of the all-FPGA mapping (step 2 of the flow).
    pub fn all_fpga(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            e_fpga_ops: self.fpga_ops.iter().sum(),
            e_reconfig: self.reconfig.iter().sum(),
            e_cgc_ops: 0,
            e_comm: 0,
        }
    }

    /// The energy of an arbitrary assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the block count.
    pub fn breakdown(&self, assignment: &[Assignment]) -> EnergyBreakdown {
        let mut e = EnergyBreakdown {
            e_fpga_ops: 0,
            e_reconfig: 0,
            e_cgc_ops: 0,
            e_comm: 0,
        };
        for (i, a) in assignment[..self.fpga_ops.len()].iter().enumerate() {
            match a {
                Assignment::FineGrain => {
                    e.e_fpga_ops += self.fpga_ops[i];
                    e.e_reconfig += self.reconfig[i];
                }
                Assignment::CoarseGrain => {
                    e.e_cgc_ops += self.cgc_ops[i];
                    e.e_comm += self.comm[i];
                }
            }
        }
        e
    }

    /// Apply the O(1) energy delta of moving block `i` (currently on the
    /// FPGA under `e`) to the coarse-grain hardware.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn move_to_coarse(&self, e: &mut EnergyBreakdown, i: usize) {
        e.e_fpga_ops -= self.fpga_ops[i];
        e.e_reconfig -= self.reconfig[i];
        e.e_cgc_ops += self.cgc_ops[i];
        e.e_comm += self.comm[i];
    }
}

/// Evaluate the energy of `assignment` over one application run.
///
/// Per block: `freq × Σ op-energy(fabric)`; FPGA blocks additionally pay
/// `freq × partitions × reconfig` (same accounting as eq. (4)'s time);
/// CGC blocks pay `freq × (live_in + live_out) × comm_word`. (The
/// per-block pricing lives in [`BlockEnergyCosts`]; this entry point maps
/// the CDFG and sums the vectors.)
///
/// # Errors
///
/// Fine-grain mapping failures (needed for partition counts).
pub fn energy_of_assignment(
    cdfg: &Cdfg,
    analysis: &AnalysisReport,
    platform: &Platform,
    model: &EnergyModel,
    assignment: &[Assignment],
) -> Result<EnergyBreakdown, CoreError> {
    let fine = CdfgFineGrainMapping::map(cdfg, &platform.fpga)?;
    Ok(BlockEnergyCosts::compute(cdfg, analysis, &fine, model).breakdown(assignment))
}

/// One step of the energy engine's trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyMove {
    /// The kernel moved.
    pub kernel: amdrel_cdfg::BlockId,
    /// Energy after the move.
    pub energy: EnergyBreakdown,
}

/// Outcome of energy-constrained partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyResult {
    /// The energy budget.
    pub budget: u64,
    /// All-FPGA energy.
    pub initial: EnergyBreakdown,
    /// Moves performed.
    pub moves: Vec<EnergyMove>,
    /// Final assignment.
    pub assignment: Vec<Assignment>,
    /// Final energy.
    pub energy: EnergyBreakdown,
    /// Whether the budget was met.
    pub met: bool,
}

impl EnergyResult {
    /// Percentage energy reduction relative to the all-FPGA mapping.
    pub fn reduction_percent(&self) -> f64 {
        let initial = self.initial.total();
        if initial == 0 {
            return 0.0;
        }
        (initial as f64 - self.energy.total() as f64) / initial as f64 * 100.0
    }
}

/// Partition for an energy budget: move kernels (heaviest first, the same
/// §3.1 ordering) while the total energy exceeds `budget`, skipping moves
/// that would increase energy (communication-dominated kernels).
///
/// # Errors
///
/// Mapping failures from the underlying models.
pub fn partition_for_energy(
    cdfg: &Cdfg,
    analysis: &AnalysisReport,
    platform: &Platform,
    model: &EnergyModel,
    budget: u64,
) -> Result<EnergyResult, CoreError> {
    let n = cdfg.len();
    let mut assignment = vec![Assignment::FineGrain; n];
    let initial = energy_of_assignment(cdfg, analysis, platform, model, &assignment)?;
    let mut energy = initial;
    let mut moves = Vec::new();
    for &kernel in analysis.kernels() {
        if energy.total() <= budget {
            break;
        }
        assignment[kernel.index()] = Assignment::CoarseGrain;
        let candidate = energy_of_assignment(cdfg, analysis, platform, model, &assignment)?;
        if candidate.total() >= energy.total() {
            assignment[kernel.index()] = Assignment::FineGrain; // revert
            continue;
        }
        energy = candidate;
        moves.push(EnergyMove { kernel, energy });
    }
    let met = energy.total() <= budget;
    Ok(EnergyResult {
        budget,
        initial,
        moves,
        assignment,
        energy,
        met,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::{Interpreter, WeightTable};

    const SRC: &str = r#"
        int data[256];
        int out[256];
        int main() {
            for (int i = 0; i < 256; i++) {
                int x = data[i];
                out[i] = x * x * 3 + x * 7 + 11;
            }
            return out[0];
        }
    "#;

    fn prepared() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
        let c = compile(SRC, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let a = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        (c, a)
    }

    #[test]
    fn accounting_identity() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        let model = EnergyModel::default();
        let all_fpga = vec![Assignment::FineGrain; c.cdfg.len()];
        let e = energy_of_assignment(&c.cdfg, &a, &platform, &model, &all_fpga).unwrap();
        assert_eq!(
            e.total(),
            e.e_fpga_ops + e.e_reconfig + e.e_cgc_ops + e.e_comm
        );
        assert_eq!(e.e_cgc_ops, 0);
        assert_eq!(e.e_comm, 0);
        assert!(e.e_fpga_ops > 0 && e.e_reconfig > 0);
    }

    #[test]
    fn moving_compute_kernels_saves_energy() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        let model = EnergyModel::default();
        let mut assignment = vec![Assignment::FineGrain; c.cdfg.len()];
        let before = energy_of_assignment(&c.cdfg, &a, &platform, &model, &assignment)
            .unwrap()
            .total();
        // Move the heaviest kernel.
        assignment[a.kernels()[0].index()] = Assignment::CoarseGrain;
        let after = energy_of_assignment(&c.cdfg, &a, &platform, &model, &assignment)
            .unwrap()
            .total();
        assert!(
            after < before,
            "ASIC execution of the hot kernel must save energy ({after} !< {before})"
        );
    }

    #[test]
    fn engine_meets_achievable_budget() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        let model = EnergyModel::default();
        // Find the asymptote, then ask for something between.
        let floor = partition_for_energy(&c.cdfg, &a, &platform, &model, 0).unwrap();
        let budget = (floor.energy.total() + floor.initial.total()) / 2;
        let r = partition_for_energy(&c.cdfg, &a, &platform, &model, budget).unwrap();
        assert!(
            r.met,
            "budget {budget} achievable (floor {})",
            floor.energy.total()
        );
        assert!(!r.moves.is_empty());
        assert!(r.reduction_percent() > 0.0);
    }

    #[test]
    fn engine_never_increases_energy() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        // Adversarial model: communication so expensive no move pays.
        let model = EnergyModel {
            comm_word: 1_000_000,
            ..EnergyModel::default()
        };
        let r = partition_for_energy(&c.cdfg, &a, &platform, &model, 0).unwrap();
        assert!(r.moves.is_empty(), "every move should be skipped");
        assert_eq!(r.energy, r.initial);
        assert!(!r.met);
    }

    #[test]
    fn impossible_budget_reports_unmet() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        let model = EnergyModel::default();
        let r = partition_for_energy(&c.cdfg, &a, &platform, &model, 1).unwrap();
        assert!(!r.met);
        // Trace is monotonically decreasing.
        let mut last = r.initial.total();
        for m in &r.moves {
            assert!(m.energy.total() < last);
            last = m.energy.total();
        }
    }

    #[test]
    fn incremental_deltas_match_full_accounting() {
        let (c, a) = prepared();
        let platform = Platform::paper(1500, 2);
        let model = EnergyModel::default();
        let fine = CdfgFineGrainMapping::map(&c.cdfg, &platform.fpga).unwrap();
        let costs = BlockEnergyCosts::compute(&c.cdfg, &a, &fine, &model);
        let mut assignment = vec![Assignment::FineGrain; c.cdfg.len()];
        let mut running = costs.all_fpga();
        assert_eq!(
            running,
            energy_of_assignment(&c.cdfg, &a, &platform, &model, &assignment).unwrap()
        );
        // Move every kernel in engine order; after each O(1) delta the
        // running breakdown must equal a from-scratch evaluation.
        for &kernel in a.kernels() {
            assignment[kernel.index()] = Assignment::CoarseGrain;
            costs.move_to_coarse(&mut running, kernel.index());
            assert_eq!(running, costs.breakdown(&assignment), "after {kernel:?}");
            assert_eq!(
                running,
                energy_of_assignment(&c.cdfg, &a, &platform, &model, &assignment).unwrap()
            );
        }
    }

    #[test]
    fn op_energy_table_boundary_free() {
        let t = EnergyModel::default().fpga;
        assert_eq!(t.class_energy(OpClass::Boundary), 0);
        assert!(t.class_energy(OpClass::Mul) > t.class_energy(OpClass::Alu));
    }
}
