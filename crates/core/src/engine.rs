//! The partitioning engine — the heart of the methodology (steps 2, 4 and
//! 5 of Figure 2).
//!
//! "The partitioning engine moves kernels one by one to the coarse-grain
//! hardware until the performance requirements are satisfied. After the
//! movement of each kernel to the coarse-grain hardware, the total
//! execution time of the application is calculated to check if the timing
//! constraints are met."
//!
//! Total time follows eq. (2): `t_total = t_FPGA + t_coarse + t_comm`,
//! with `t_FPGA` from eq. (4) (fine-grain temporal-partitioned blocks ×
//! iteration counts), `t_coarse` from eq. (3) (CGC schedule lengths ×
//! iteration counts, converted to FPGA cycles by the platform clock
//! ratio) and `t_comm` from the shared-memory model.
//!
//! The inner loop is incremental: at `run()` entry the engine computes,
//! once per block, its fine-grain cycle contribution, its raw CGC cycle
//! contribution and its communication cycles (each already
//! `exec_freq`-scaled), then maintains running sums so each kernel move —
//! and each `skip_unprofitable` revert — is an O(1) delta update rather
//! than an O(n) rescan of all blocks. The raw `t_coarse_cgc` sum is kept
//! exact and the `cgc_to_fpga_cycles` ceiling is applied only when a
//! [`Breakdown`] is read, so the results are bit-identical to a full
//! recomputation (the differential tests below and in
//! `tests/engine_properties.rs` assert exactly that).

use crate::cache::{CdfgFingerprint, MappingCache};
use crate::platform::Platform;
use crate::CoreError;
use amdrel_cdfg::{BlockId, Cdfg};
use amdrel_coarsegrain::CdfgCoarseGrainMapping;
use amdrel_finegrain::CdfgFineGrainMapping;
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which hardware a basic block executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assignment {
    /// Fine-grain (embedded FPGA) hardware.
    FineGrain,
    /// Coarse-grain CGC datapath.
    CoarseGrain,
}

/// The eq. (2) decomposition of total execution time, in FPGA cycles
/// except where noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// eq. (4): fine-grain time of the blocks still on the FPGA.
    pub t_fpga: u64,
    /// eq. (3) in raw CGC cycles (the paper's "Cycles in CGC" row).
    pub t_coarse_cgc: u64,
    /// eq. (3) converted to FPGA cycles (`ceil(t_coarse_cgc / ratio)`).
    pub t_coarse: u64,
    /// Shared-memory transfer time for the moved kernels.
    pub t_comm: u64,
}

impl Breakdown {
    /// eq. (2): `t_total = t_FPGA + t_coarse + t_comm`.
    pub fn t_total(&self) -> u64 {
        self.t_fpga + self.t_coarse + self.t_comm
    }
}

/// One step of the engine's kernel-movement loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// The kernel moved to the coarse-grain hardware.
    pub kernel: BlockId,
    /// Its label.
    pub label: String,
    /// The timing decomposition *after* this move.
    pub breakdown: Breakdown,
}

/// Engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Skip kernels whose movement would *increase* `t_total`
    /// (communication outweighs acceleration). The paper's engine moves
    /// unconditionally, so this defaults to `false`; the communication
    /// ablation enables it.
    pub skip_unprofitable: bool,
}

/// The complete outcome of a partitioning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionResult {
    /// The timing constraint, in FPGA cycles.
    pub constraint: u64,
    /// All-FPGA execution time (the paper's "Initial Cycles" row).
    pub initial_cycles: u64,
    /// `true` if the all-FPGA mapping already met the constraint and the
    /// flow exited at step 2.
    pub met_without_partitioning: bool,
    /// The kernel moves performed, in order.
    pub moves: Vec<MoveRecord>,
    /// Candidate moves undone because they would have *increased*
    /// `t_total` — nonzero only under
    /// [`EngineConfig::skip_unprofitable`].
    pub moves_reverted: u64,
    /// Final block→hardware assignment.
    pub assignment: Vec<Assignment>,
    /// Final timing decomposition.
    pub breakdown: Breakdown,
    /// Whether the constraint was met.
    pub met: bool,
}

impl PartitionResult {
    /// Final total cycles (the paper's "Final cycles" row).
    pub fn final_cycles(&self) -> u64 {
        self.breakdown.t_total()
    }

    /// The paper's "% cycles reduction" row:
    /// `(initial − final) / initial × 100`.
    pub fn reduction_percent(&self) -> f64 {
        if self.initial_cycles == 0 {
            return 0.0;
        }
        let initial = self.initial_cycles as f64;
        (initial - self.final_cycles() as f64) / initial * 100.0
    }

    /// Block ids moved to the coarse-grain hardware (the paper's "BB no."
    /// row), in move order.
    pub fn moved_blocks(&self) -> Vec<BlockId> {
        self.moves.iter().map(|m| m.kernel).collect()
    }
}

/// The per-block cost vectors precomputed at `run()` entry, plus the
/// running sums over them. Moving a kernel (or reverting a move) touches
/// three additions — no rescan of the block list.
struct RunningSums {
    /// `t_to_FPGA(BB_i) × Iter(BB_i)` per block.
    fine_costs: Vec<u64>,
    /// `t_to_coarse(BB_i) × Iter(BB_i)` per block, in raw CGC cycles.
    coarse_costs: Vec<u64>,
    /// Shared-memory cycles per block (`exec_freq`-scaled).
    comm_costs: Vec<u64>,
    /// Σ fine_costs over blocks currently on the FPGA.
    t_fpga: u64,
    /// Σ coarse_costs over moved blocks, kept in raw CGC cycles — the
    /// clock-ratio ceiling is applied only at read time so the sum stays
    /// exactly revertible.
    t_coarse_cgc: u64,
    /// Σ comm_costs over moved blocks.
    t_comm: u64,
}

impl RunningSums {
    fn new(fine_costs: Vec<u64>, coarse_costs: Vec<u64>, comm_costs: Vec<u64>) -> Self {
        let t_fpga = fine_costs.iter().sum();
        RunningSums {
            fine_costs,
            coarse_costs,
            comm_costs,
            t_fpga,
            t_coarse_cgc: 0,
            t_comm: 0,
        }
    }

    /// Move block `i` to the coarse-grain hardware.
    fn move_to_coarse(&mut self, i: usize) {
        self.t_fpga -= self.fine_costs[i];
        self.t_coarse_cgc += self.coarse_costs[i];
        self.t_comm += self.comm_costs[i];
    }

    /// Undo [`Self::move_to_coarse`] for block `i`.
    fn revert(&mut self, i: usize) {
        self.t_fpga += self.fine_costs[i];
        self.t_coarse_cgc -= self.coarse_costs[i];
        self.t_comm -= self.comm_costs[i];
    }

    /// The eq. (2) decomposition at the current assignment.
    fn breakdown(&self, platform: &Platform) -> Breakdown {
        Breakdown {
            t_fpga: self.t_fpga,
            t_coarse_cgc: self.t_coarse_cgc,
            t_coarse: platform.cgc_to_fpga_cycles(self.t_coarse_cgc),
            t_comm: self.t_comm,
        }
    }
}

/// The partitioning engine.
#[derive(Debug)]
pub struct PartitioningEngine<'a> {
    cdfg: &'a Cdfg,
    analysis: &'a AnalysisReport,
    platform: &'a Platform,
    config: EngineConfig,
    cache: Option<&'a MappingCache>,
}

impl<'a> PartitioningEngine<'a> {
    /// A new engine over an analysed application and a platform.
    pub fn new(cdfg: &'a Cdfg, analysis: &'a AnalysisReport, platform: &'a Platform) -> Self {
        PartitioningEngine {
            cdfg,
            analysis,
            platform,
            config: EngineConfig::default(),
            cache: None,
        }
    }

    /// Builder-style override of the engine policy.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Serve the fabric mappings from (and record them into) a shared
    /// [`MappingCache`] instead of computing them privately per run.
    pub fn with_mapping_cache(mut self, cache: &'a MappingCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The cache fingerprint of the application, computed at most once
    /// per run (both lookups of a run share it).
    fn cache_fingerprint(&self) -> Option<CdfgFingerprint> {
        self.cache.map(|_| MappingCache::fingerprint(self.cdfg))
    }

    fn fine_mapping(
        &self,
        fp: Option<CdfgFingerprint>,
    ) -> Result<Arc<CdfgFineGrainMapping>, CoreError> {
        match (self.cache, fp) {
            (Some(cache), Some(fp)) => cache.fine_keyed(fp, self.cdfg, &self.platform.fpga),
            _ => Ok(Arc::new(CdfgFineGrainMapping::map(
                self.cdfg,
                &self.platform.fpga,
            )?)),
        }
    }

    fn coarse_mapping(
        &self,
        fp: Option<CdfgFingerprint>,
    ) -> Result<Arc<CdfgCoarseGrainMapping>, CoreError> {
        match (self.cache, fp) {
            (Some(cache), Some(fp)) => cache.coarse_keyed(
                fp,
                self.cdfg,
                &self.platform.datapath,
                &self.platform.scheduler,
            ),
            _ => Ok(Arc::new(CdfgCoarseGrainMapping::map(
                self.cdfg,
                &self.platform.datapath,
                &self.platform.scheduler,
            )?)),
        }
    }

    /// Run the Figure 2 flow for a timing constraint in FPGA cycles.
    ///
    /// # Errors
    ///
    /// [`CoreError`] if a block cannot be mapped to either fabric.
    pub fn run(&self, constraint: u64) -> Result<PartitionResult, CoreError> {
        let n = self.cdfg.len();
        let exec_freq: Vec<u64> = self.analysis.blocks().iter().map(|b| b.exec_freq).collect();
        let fp = self.cache_fingerprint();

        // Step 2: map everything to the fine-grain hardware.
        let fine = self.fine_mapping(fp)?;
        let initial_cycles = fine.t_fpga(&exec_freq, |_| true);
        let mut assignment = vec![Assignment::FineGrain; n];
        if initial_cycles <= constraint {
            return Ok(PartitionResult {
                constraint,
                initial_cycles,
                met_without_partitioning: true,
                moves: Vec::new(),
                moves_reverted: 0,
                assignment,
                breakdown: Breakdown {
                    t_fpga: initial_cycles,
                    t_coarse_cgc: 0,
                    t_coarse: 0,
                    t_comm: 0,
                },
                met: true,
            });
        }

        // Step 5 support: coarse-grain mapping of every block (the engine
        // only reads the ones it moves; mapping is per-block independent).
        let coarse = self.coarse_mapping(fp)?;

        // Per-block cost vectors, computed once; the kernel loop below
        // only does O(1) delta updates against these.
        let comm_costs: Vec<u64> = self
            .cdfg
            .iter()
            .enumerate()
            .map(|(i, (_, bb))| {
                exec_freq[i]
                    .saturating_mul(self.platform.comm.cycles_per_exec(bb.live_in, bb.live_out))
            })
            .collect();
        let mut sums = RunningSums::new(
            fine.block_costs(&exec_freq),
            coarse.block_costs(&exec_freq),
            comm_costs,
        );

        // Steps 3+4: drain the ordered kernel queue.
        let mut moves = Vec::new();
        let mut moves_reverted = 0u64;
        let mut breakdown = sums.breakdown(self.platform);
        for &kernel in self.analysis.kernels() {
            if breakdown.t_total() <= constraint {
                break;
            }
            let prev_total = breakdown.t_total();
            sums.move_to_coarse(kernel.index());
            let candidate = sums.breakdown(self.platform);
            if self.config.skip_unprofitable && candidate.t_total() >= prev_total {
                sums.revert(kernel.index());
                moves_reverted += 1;
                continue;
            }
            assignment[kernel.index()] = Assignment::CoarseGrain;
            breakdown = candidate;
            moves.push(MoveRecord {
                kernel,
                label: self.cdfg.block(kernel).label.clone(),
                breakdown,
            });
        }

        let met = breakdown.t_total() <= constraint;
        Ok(PartitionResult {
            constraint,
            initial_cycles,
            met_without_partitioning: false,
            moves,
            moves_reverted,
            assignment,
            breakdown,
            met,
        })
    }

    /// The seed implementation of the kernel loop, retained verbatim as
    /// the differential-testing oracle: every breakdown is an O(n)
    /// recomputation from the assignment.
    #[cfg(test)]
    fn run_naive(&self, constraint: u64) -> Result<PartitionResult, CoreError> {
        let n = self.cdfg.len();
        let exec_freq: Vec<u64> = self.analysis.blocks().iter().map(|b| b.exec_freq).collect();

        let fp = self.cache_fingerprint();
        let fine = self.fine_mapping(fp)?;
        let initial_cycles = fine.t_fpga(&exec_freq, |_| true);
        let mut assignment = vec![Assignment::FineGrain; n];
        if initial_cycles <= constraint {
            return Ok(PartitionResult {
                constraint,
                initial_cycles,
                met_without_partitioning: true,
                moves: Vec::new(),
                moves_reverted: 0,
                assignment,
                breakdown: Breakdown {
                    t_fpga: initial_cycles,
                    t_coarse_cgc: 0,
                    t_coarse: 0,
                    t_comm: 0,
                },
                met: true,
            });
        }

        let coarse = self.coarse_mapping(fp)?;
        let mut moves = Vec::new();
        let mut moves_reverted = 0u64;
        let mut breakdown = self.breakdown_for(&assignment, &exec_freq, &fine, &coarse);
        for &kernel in self.analysis.kernels() {
            if breakdown.t_total() <= constraint {
                break;
            }
            let prev_total = breakdown.t_total();
            assignment[kernel.index()] = Assignment::CoarseGrain;
            let candidate = self.breakdown_for(&assignment, &exec_freq, &fine, &coarse);
            if self.config.skip_unprofitable && candidate.t_total() >= prev_total {
                assignment[kernel.index()] = Assignment::FineGrain; // revert
                moves_reverted += 1;
                continue;
            }
            breakdown = candidate;
            moves.push(MoveRecord {
                kernel,
                label: self.cdfg.block(kernel).label.clone(),
                breakdown,
            });
        }

        let met = breakdown.t_total() <= constraint;
        Ok(PartitionResult {
            constraint,
            initial_cycles,
            met_without_partitioning: false,
            moves,
            moves_reverted,
            assignment,
            breakdown,
            met,
        })
    }

    #[cfg(test)]
    fn breakdown_for(
        &self,
        assignment: &[Assignment],
        exec_freq: &[u64],
        fine: &CdfgFineGrainMapping,
        coarse: &CdfgCoarseGrainMapping,
    ) -> Breakdown {
        let t_fpga = fine.t_fpga(exec_freq, |i| assignment[i] == Assignment::FineGrain);
        let t_coarse_cgc = coarse.t_coarse(exec_freq, |i| assignment[i] == Assignment::CoarseGrain);
        let t_coarse = self.platform.cgc_to_fpga_cycles(t_coarse_cgc);
        let t_comm: u64 = self
            .cdfg
            .iter()
            .enumerate()
            .filter(|(i, _)| assignment[*i] == Assignment::CoarseGrain)
            .map(|(i, (_, bb))| {
                exec_freq[i]
                    .saturating_mul(self.platform.comm.cycles_per_exec(bb.live_in, bb.live_out))
            })
            .sum();
        Breakdown {
            t_fpga,
            t_coarse_cgc,
            t_coarse,
            t_comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::{Interpreter, WeightTable};

    /// A program with one hot multiply-heavy loop and a cold tail.
    const HOT_LOOP: &str = r#"
        int data[256];
        int out[256];
        int main() {
            for (int i = 0; i < 256; i++) {
                int x = data[i];
                out[i] = x * x * 3 + x * 7 + 11;
            }
            int checksum = 0;
            for (int j = 0; j < 4; j++) {
                checksum = checksum + out[j];
            }
            return checksum;
        }
    "#;

    fn analyzed(src: &str) -> (amdrel_minic::CompiledProgram, AnalysisReport) {
        let c = compile(src, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let report = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        (c, report)
    }

    #[test]
    fn trivial_constraint_exits_at_step2() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(5000, 2);
        let engine = PartitioningEngine::new(&c.cdfg, &report, &platform);
        let result = engine.run(u64::MAX).unwrap();
        assert!(result.met_without_partitioning);
        assert!(result.met);
        assert!(result.moves.is_empty());
        assert_eq!(result.final_cycles(), result.initial_cycles);
    }

    #[test]
    fn tight_constraint_moves_kernels() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let engine = PartitioningEngine::new(&c.cdfg, &report, &platform);
        // Demand a 2× speed-up over all-FPGA.
        let initial = engine.run(u64::MAX).unwrap().initial_cycles;
        let result = engine.run(initial / 2).unwrap();
        assert!(!result.met_without_partitioning);
        assert!(!result.moves.is_empty());
        assert!(result.final_cycles() < result.initial_cycles);
        // The first move must be the heaviest kernel.
        assert_eq!(result.moves[0].kernel, report.kernels()[0]);
    }

    #[test]
    fn eq2_accounting_identity() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 3);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(initial / 3)
            .unwrap();
        let b = result.breakdown;
        assert_eq!(b.t_total(), b.t_fpga + b.t_coarse + b.t_comm);
        assert_eq!(result.final_cycles(), b.t_total());
        // Every move's breakdown satisfies the same identity.
        for m in &result.moves {
            assert_eq!(
                m.breakdown.t_total(),
                m.breakdown.t_fpga + m.breakdown.t_coarse + m.breakdown.t_comm
            );
        }
    }

    #[test]
    fn impossible_constraint_reports_unmet() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        assert!(!result.met);
        // All kernels were tried.
        assert_eq!(result.moves.len(), report.kernels().len());
    }

    #[test]
    fn moves_follow_kernel_order() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        let moved = result.moved_blocks();
        assert_eq!(&moved[..], &report.kernels()[..moved.len()]);
    }

    #[test]
    fn assignment_matches_moves() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        for (i, a) in result.assignment.iter().enumerate() {
            let moved = result
                .moved_blocks()
                .contains(&amdrel_cdfg::BlockId(i as u32));
            assert_eq!(moved, *a == Assignment::CoarseGrain);
        }
    }

    #[test]
    fn reduction_percent_sane() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 3);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(initial / 2)
            .unwrap();
        let r = result.reduction_percent();
        assert!((0.0..100.0).contains(&r), "reduction {r}%");
    }

    #[test]
    fn skip_unprofitable_reverts_bad_moves() {
        let (c, report) = analyzed(HOT_LOOP);
        // Make communication brutally expensive so moves don't pay.
        let platform = Platform::paper(1500, 2).with_comm(crate::CommModel {
            cycles_per_word: 10_000,
            setup_cycles: 10_000,
        });
        let strict = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .with_config(EngineConfig {
                skip_unprofitable: true,
            })
            .run(1)
            .unwrap();
        // With skipping, final must never exceed initial.
        assert!(strict.final_cycles() <= strict.initial_cycles);
        // Paper-faithful engine would blow past initial on this platform.
        let faithful = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        assert!(faithful.final_cycles() > strict.final_cycles());
    }

    /// Differential property: across random applications, platforms and
    /// constraints, the incremental engine must produce a result equal in
    /// every field (every `MoveRecord.breakdown` included) to the retained
    /// naive O(n)-per-move oracle.
    #[test]
    fn incremental_engine_matches_naive_oracle() {
        use amdrel_cdfg::synth::{random_dfg, SplitMix64, SynthConfig};
        use amdrel_cdfg::BasicBlock;
        use amdrel_profiler::WeightTable;

        for seed in 0u64..64 {
            let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1FF);
            let blocks = 2 + rng.below(10) as usize;
            let mut cdfg = Cdfg::new(format!("diff{seed}"));
            let mut freqs = Vec::with_capacity(blocks);
            for i in 0..blocks {
                let dfg = random_dfg(
                    seed.wrapping_add(i as u64 * 131),
                    &SynthConfig {
                        nodes: 4 + rng.below(36) as usize,
                        mul_fraction: 0.3,
                        load_fraction: 0.15,
                        ..SynthConfig::default()
                    },
                );
                cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), dfg));
                freqs.push(1 + rng.below(3000));
            }
            for i in 0..blocks - 1 {
                cdfg.add_edge(BlockId(i as u32), BlockId(i as u32 + 1))
                    .unwrap();
            }
            cdfg.add_edge(BlockId(blocks as u32 - 1), BlockId(0))
                .unwrap();

            let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
            let area = [1200u64, 1500, 2000, 5000][rng.below(4) as usize];
            let cgcs = 1 + rng.below(3) as usize;
            let ratio = 1 + rng.below(4);
            let platform = Platform::paper(area, cgcs)
                .with_clock_ratio(ratio)
                .with_comm(crate::CommModel {
                    cycles_per_word: rng.below(50),
                    setup_cycles: rng.below(50),
                });
            let config = EngineConfig {
                skip_unprofitable: rng.below(2) == 1,
            };

            let engine = PartitioningEngine::new(&cdfg, &analysis, &platform).with_config(config);
            let initial = engine.run(u64::MAX).unwrap().initial_cycles;
            for constraint in [1, initial / 3, initial / 2, initial, u64::MAX] {
                let incremental = engine.run(constraint).unwrap();
                let naive = engine.run_naive(constraint).unwrap();
                assert_eq!(
                    incremental, naive,
                    "divergence at seed {seed}, constraint {constraint}"
                );
            }
        }
    }

    /// The same engine served by a [`MappingCache`] produces the same
    /// result as one mapping privately.
    #[test]
    fn cached_engine_matches_uncached() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let cache = MappingCache::new();
        let uncached = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        for _ in 0..3 {
            let cached = PartitioningEngine::new(&c.cdfg, &report, &platform)
                .with_mapping_cache(&cache)
                .run(1)
                .unwrap();
            assert_eq!(cached, uncached);
        }
        let stats = cache.stats();
        assert_eq!((stats.fine_misses, stats.coarse_misses), (1, 1));
        assert_eq!((stats.fine_hits, stats.coarse_hits), (2, 2));
    }
}
