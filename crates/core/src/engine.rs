//! The partitioning engine — the heart of the methodology (steps 2, 4 and
//! 5 of Figure 2).
//!
//! "The partitioning engine moves kernels one by one to the coarse-grain
//! hardware until the performance requirements are satisfied. After the
//! movement of each kernel to the coarse-grain hardware, the total
//! execution time of the application is calculated to check if the timing
//! constraints are met."
//!
//! Total time follows eq. (2): `t_total = t_FPGA + t_coarse + t_comm`,
//! with `t_FPGA` from eq. (4) (fine-grain temporal-partitioned blocks ×
//! iteration counts), `t_coarse` from eq. (3) (CGC schedule lengths ×
//! iteration counts, converted to FPGA cycles by the platform clock
//! ratio) and `t_comm` from the shared-memory model.

use crate::platform::Platform;
use crate::CoreError;
use amdrel_cdfg::{BlockId, Cdfg};
use amdrel_coarsegrain::CdfgCoarseGrainMapping;
use amdrel_finegrain::CdfgFineGrainMapping;
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};

/// Which hardware a basic block executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assignment {
    /// Fine-grain (embedded FPGA) hardware.
    FineGrain,
    /// Coarse-grain CGC datapath.
    CoarseGrain,
}

/// The eq. (2) decomposition of total execution time, in FPGA cycles
/// except where noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// eq. (4): fine-grain time of the blocks still on the FPGA.
    pub t_fpga: u64,
    /// eq. (3) in raw CGC cycles (the paper's "Cycles in CGC" row).
    pub t_coarse_cgc: u64,
    /// eq. (3) converted to FPGA cycles (`ceil(t_coarse_cgc / ratio)`).
    pub t_coarse: u64,
    /// Shared-memory transfer time for the moved kernels.
    pub t_comm: u64,
}

impl Breakdown {
    /// eq. (2): `t_total = t_FPGA + t_coarse + t_comm`.
    pub fn t_total(&self) -> u64 {
        self.t_fpga + self.t_coarse + self.t_comm
    }
}

/// One step of the engine's kernel-movement loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// The kernel moved to the coarse-grain hardware.
    pub kernel: BlockId,
    /// Its label.
    pub label: String,
    /// The timing decomposition *after* this move.
    pub breakdown: Breakdown,
}

/// Engine policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Skip kernels whose movement would *increase* `t_total`
    /// (communication outweighs acceleration). The paper's engine moves
    /// unconditionally, so this defaults to `false`; the communication
    /// ablation enables it.
    pub skip_unprofitable: bool,
}

/// The complete outcome of a partitioning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionResult {
    /// The timing constraint, in FPGA cycles.
    pub constraint: u64,
    /// All-FPGA execution time (the paper's "Initial Cycles" row).
    pub initial_cycles: u64,
    /// `true` if the all-FPGA mapping already met the constraint and the
    /// flow exited at step 2.
    pub met_without_partitioning: bool,
    /// The kernel moves performed, in order.
    pub moves: Vec<MoveRecord>,
    /// Final block→hardware assignment.
    pub assignment: Vec<Assignment>,
    /// Final timing decomposition.
    pub breakdown: Breakdown,
    /// Whether the constraint was met.
    pub met: bool,
}

impl PartitionResult {
    /// Final total cycles (the paper's "Final cycles" row).
    pub fn final_cycles(&self) -> u64 {
        self.breakdown.t_total()
    }

    /// The paper's "% cycles reduction" row:
    /// `(initial − final) / initial × 100`.
    pub fn reduction_percent(&self) -> f64 {
        if self.initial_cycles == 0 {
            return 0.0;
        }
        let initial = self.initial_cycles as f64;
        (initial - self.final_cycles() as f64) / initial * 100.0
    }

    /// Block ids moved to the coarse-grain hardware (the paper's "BB no."
    /// row), in move order.
    pub fn moved_blocks(&self) -> Vec<BlockId> {
        self.moves.iter().map(|m| m.kernel).collect()
    }
}

/// The partitioning engine.
#[derive(Debug)]
pub struct PartitioningEngine<'a> {
    cdfg: &'a Cdfg,
    analysis: &'a AnalysisReport,
    platform: &'a Platform,
    config: EngineConfig,
}

impl<'a> PartitioningEngine<'a> {
    /// A new engine over an analysed application and a platform.
    pub fn new(cdfg: &'a Cdfg, analysis: &'a AnalysisReport, platform: &'a Platform) -> Self {
        PartitioningEngine {
            cdfg,
            analysis,
            platform,
            config: EngineConfig::default(),
        }
    }

    /// Builder-style override of the engine policy.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Run the Figure 2 flow for a timing constraint in FPGA cycles.
    ///
    /// # Errors
    ///
    /// [`CoreError`] if a block cannot be mapped to either fabric.
    pub fn run(&self, constraint: u64) -> Result<PartitionResult, CoreError> {
        let n = self.cdfg.len();
        let exec_freq: Vec<u64> = self.analysis.blocks().iter().map(|b| b.exec_freq).collect();

        // Step 2: map everything to the fine-grain hardware.
        let fine = CdfgFineGrainMapping::map(self.cdfg, &self.platform.fpga)?;
        let initial_cycles = fine.t_fpga(&exec_freq, |_| true);
        let mut assignment = vec![Assignment::FineGrain; n];
        if initial_cycles <= constraint {
            return Ok(PartitionResult {
                constraint,
                initial_cycles,
                met_without_partitioning: true,
                moves: Vec::new(),
                assignment,
                breakdown: Breakdown {
                    t_fpga: initial_cycles,
                    t_coarse_cgc: 0,
                    t_coarse: 0,
                    t_comm: 0,
                },
                met: true,
            });
        }

        // Step 5 support: coarse-grain mapping of every block (the engine
        // only reads the ones it moves; mapping is per-block independent).
        let coarse = CdfgCoarseGrainMapping::map(
            self.cdfg,
            &self.platform.datapath,
            &self.platform.scheduler,
        )?;

        // Steps 3+4: drain the ordered kernel queue.
        let mut moves = Vec::new();
        let mut breakdown = self.breakdown_for(&assignment, &exec_freq, &fine, &coarse);
        for &kernel in self.analysis.kernels() {
            if breakdown.t_total() <= constraint {
                break;
            }
            let prev_total = breakdown.t_total();
            assignment[kernel.index()] = Assignment::CoarseGrain;
            let candidate = self.breakdown_for(&assignment, &exec_freq, &fine, &coarse);
            if self.config.skip_unprofitable && candidate.t_total() >= prev_total {
                assignment[kernel.index()] = Assignment::FineGrain; // revert
                continue;
            }
            breakdown = candidate;
            moves.push(MoveRecord {
                kernel,
                label: self.cdfg.block(kernel).label.clone(),
                breakdown,
            });
        }

        let met = breakdown.t_total() <= constraint;
        Ok(PartitionResult {
            constraint,
            initial_cycles,
            met_without_partitioning: false,
            moves,
            assignment,
            breakdown,
            met,
        })
    }

    fn breakdown_for(
        &self,
        assignment: &[Assignment],
        exec_freq: &[u64],
        fine: &CdfgFineGrainMapping,
        coarse: &CdfgCoarseGrainMapping,
    ) -> Breakdown {
        let t_fpga = fine.t_fpga(exec_freq, |i| assignment[i] == Assignment::FineGrain);
        let t_coarse_cgc = coarse.t_coarse(exec_freq, |i| assignment[i] == Assignment::CoarseGrain);
        let t_coarse = self.platform.cgc_to_fpga_cycles(t_coarse_cgc);
        let t_comm: u64 = self
            .cdfg
            .iter()
            .enumerate()
            .filter(|(i, _)| assignment[*i] == Assignment::CoarseGrain)
            .map(|(i, (_, bb))| {
                exec_freq[i]
                    .saturating_mul(self.platform.comm.cycles_per_exec(bb.live_in, bb.live_out))
            })
            .sum();
        Breakdown {
            t_fpga,
            t_coarse_cgc,
            t_coarse,
            t_comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::{Interpreter, WeightTable};

    /// A program with one hot multiply-heavy loop and a cold tail.
    const HOT_LOOP: &str = r#"
        int data[256];
        int out[256];
        int main() {
            for (int i = 0; i < 256; i++) {
                int x = data[i];
                out[i] = x * x * 3 + x * 7 + 11;
            }
            int checksum = 0;
            for (int j = 0; j < 4; j++) {
                checksum = checksum + out[j];
            }
            return checksum;
        }
    "#;

    fn analyzed(src: &str) -> (amdrel_minic::CompiledProgram, AnalysisReport) {
        let c = compile(src, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let report = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        (c, report)
    }

    #[test]
    fn trivial_constraint_exits_at_step2() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(5000, 2);
        let engine = PartitioningEngine::new(&c.cdfg, &report, &platform);
        let result = engine.run(u64::MAX).unwrap();
        assert!(result.met_without_partitioning);
        assert!(result.met);
        assert!(result.moves.is_empty());
        assert_eq!(result.final_cycles(), result.initial_cycles);
    }

    #[test]
    fn tight_constraint_moves_kernels() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let engine = PartitioningEngine::new(&c.cdfg, &report, &platform);
        // Demand a 2× speed-up over all-FPGA.
        let initial = engine.run(u64::MAX).unwrap().initial_cycles;
        let result = engine.run(initial / 2).unwrap();
        assert!(!result.met_without_partitioning);
        assert!(!result.moves.is_empty());
        assert!(result.final_cycles() < result.initial_cycles);
        // The first move must be the heaviest kernel.
        assert_eq!(result.moves[0].kernel, report.kernels()[0]);
    }

    #[test]
    fn eq2_accounting_identity() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 3);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(initial / 3)
            .unwrap();
        let b = result.breakdown;
        assert_eq!(b.t_total(), b.t_fpga + b.t_coarse + b.t_comm);
        assert_eq!(result.final_cycles(), b.t_total());
        // Every move's breakdown satisfies the same identity.
        for m in &result.moves {
            assert_eq!(
                m.breakdown.t_total(),
                m.breakdown.t_fpga + m.breakdown.t_coarse + m.breakdown.t_comm
            );
        }
    }

    #[test]
    fn impossible_constraint_reports_unmet() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        assert!(!result.met);
        // All kernels were tried.
        assert_eq!(result.moves.len(), report.kernels().len());
    }

    #[test]
    fn moves_follow_kernel_order() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        let moved = result.moved_blocks();
        assert_eq!(&moved[..], &report.kernels()[..moved.len()]);
    }

    #[test]
    fn assignment_matches_moves() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 2);
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        for (i, a) in result.assignment.iter().enumerate() {
            let moved = result
                .moved_blocks()
                .contains(&amdrel_cdfg::BlockId(i as u32));
            assert_eq!(moved, *a == Assignment::CoarseGrain);
        }
    }

    #[test]
    fn reduction_percent_sane() {
        let (c, report) = analyzed(HOT_LOOP);
        let platform = Platform::paper(1500, 3);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        let result = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(initial / 2)
            .unwrap();
        let r = result.reduction_percent();
        assert!((0.0..100.0).contains(&r), "reduction {r}%");
    }

    #[test]
    fn skip_unprofitable_reverts_bad_moves() {
        let (c, report) = analyzed(HOT_LOOP);
        // Make communication brutally expensive so moves don't pay.
        let platform = Platform::paper(1500, 2).with_comm(crate::CommModel {
            cycles_per_word: 10_000,
            setup_cycles: 10_000,
        });
        let strict = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .with_config(EngineConfig {
                skip_unprofitable: true,
            })
            .run(1)
            .unwrap();
        // With skipping, final must never exceed initial.
        assert!(strict.final_cycles() <= strict.initial_cycles);
        // Paper-faithful engine would blow past initial on this platform.
        let faithful = PartitioningEngine::new(&c.cdfg, &report, &platform)
            .run(1)
            .unwrap();
        assert!(faithful.final_cycles() > strict.final_cycles());
    }
}
