//! Deterministic seeded pseudo-randomness for reproducible exploration.
//!
//! Design-space search (`amdrel-explore`) must be **reproducible**: the
//! same seed has to produce the same sampling sequence, the same
//! annealing trajectory and therefore the same Pareto frontier on every
//! run, on every machine, at every `--jobs` setting. That rules out both
//! `rand` (unavailable in this offline environment, and versioned stream
//! behaviour) and anything keyed on wall clock or addresses.
//!
//! The workspace's single RNG implementation is the [`SplitMix64`]
//! stream that lives at the bottom of the crate DAG in
//! [`amdrel_cdfg::synth`] (where synthetic test graphs already use it);
//! this module re-exports it as the canonical engine-side entry point so
//! explorers and property tests can seed from `amdrel_core::rng` without
//! reaching into the IR crate. The reference-vector tests below pin the
//! exact output sequence (Vigna's published SplitMix64 test vectors), so
//! a change to the underlying stream cannot slip in silently and
//! invalidate committed exploration baselines.

pub use amdrel_cdfg::synth::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_rng_matches_published_splitmix64_vectors() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_and_unit_are_seed_deterministic() {
        let mut a = SplitMix64::new(2026);
        let mut b = SplitMix64::new(2026);
        for _ in 0..64 {
            assert_eq!(a.below(97), b.below(97));
            assert_eq!(a.unit_f64().to_bits(), b.unit_f64().to_bits());
        }
    }

    #[test]
    fn forked_streams_are_reproducible() {
        let c1: Vec<u64> = {
            let mut parent = SplitMix64::new(7);
            let mut child = parent.fork();
            (0..8).map(|_| child.next_u64()).collect()
        };
        let c2: Vec<u64> = {
            let mut parent = SplitMix64::new(7);
            let mut child = parent.fork();
            (0..8).map(|_| child.next_u64()).collect()
        };
        assert_eq!(c1, c2);
    }
}
