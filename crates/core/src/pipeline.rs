//! Frame-pipelined execution — the paper's "on-going work".
//!
//! §3 of the paper: although fine- and coarse-grain execution is mutually
//! exclusive *within* a frame, DSP/multimedia applications "process
//! certain amount of data (called frames) whose computation is repeated
//! over time. Through the pipelining among the stages of computations,
//! the reconfigurable processing units of the hybrid architecture are
//! always utilized." The conclusions call the generalisation — "multiple
//! threads of execution for parallel operation of the fine and the
//! coarse-grain reconfigurable blocks" — on-going work.
//!
//! This module models exactly that: with the partitioned application run
//! as a two-stage pipeline (FPGA stage; CGC stage including the shared-
//! memory hand-off), frame *k+1* occupies the fine-grain unit while frame
//! *k* occupies the coarse-grain datapath.

use crate::engine::Breakdown;
use serde::{Deserialize, Serialize};

/// Which pipeline stage limits throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// The fine-grain (FPGA) stage.
    FineGrain,
    /// The coarse-grain stage (CGC execution plus shared-memory traffic).
    CoarseGrain,
}

/// Throughput analysis of the partitioned application under two-stage
/// frame pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Frames analysed.
    pub frames: u64,
    /// Steady-state initiation interval (FPGA cycles between frame
    /// completions): `max(t_FPGA, t_coarse + t_comm)`.
    pub interval: u64,
    /// Total cycles executing the frames strictly sequentially
    /// (`frames × t_total`), the paper's default execution model.
    pub sequential_cycles: u64,
    /// Total cycles with two-stage pipelining
    /// (`t_total + (frames − 1) × interval`).
    pub pipelined_cycles: u64,
    /// The stage that bounds the initiation interval.
    pub bottleneck: Stage,
    /// Fraction of steady-state time the fine-grain unit is busy.
    pub fpga_utilization: f64,
    /// Fraction of steady-state time the coarse-grain path is busy.
    pub cgc_utilization: f64,
}

impl PipelineReport {
    /// Sequential-to-pipelined speed-up for the analysed frame count.
    pub fn speedup(&self) -> f64 {
        if self.pipelined_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.pipelined_cycles as f64
    }

    /// The asymptotic speed-up (`t_total / interval` as frames → ∞).
    pub fn asymptotic_speedup(&self) -> f64 {
        if self.interval == 0 {
            return 1.0;
        }
        (self.sequential_cycles as f64 / self.frames.max(1) as f64) / self.interval as f64
    }
}

/// Analyse a per-frame timing [`Breakdown`] under two-stage pipelining
/// over `frames` repetitions.
///
/// The coarse stage is `t_coarse + t_comm`: the shared-memory hand-off
/// rides with the kernel execution it feeds.
///
/// # Examples
///
/// ```
/// use amdrel_core::{pipeline_report, Breakdown, Stage};
///
/// let per_frame = Breakdown {
///     t_fpga: 600,
///     t_coarse_cgc: 900,
///     t_coarse: 300,
///     t_comm: 100,
/// };
/// let report = pipeline_report(&per_frame, 100);
/// assert_eq!(report.interval, 600); // FPGA-bound
/// assert_eq!(report.bottleneck, Stage::FineGrain);
/// assert!(report.speedup() > 1.5);
/// ```
pub fn pipeline_report(per_frame: &Breakdown, frames: u64) -> PipelineReport {
    let fpga_stage = per_frame.t_fpga;
    let coarse_stage = per_frame.t_coarse + per_frame.t_comm;
    let interval = fpga_stage.max(coarse_stage);
    let t_total = per_frame.t_total();
    let sequential_cycles = frames.saturating_mul(t_total);
    let pipelined_cycles = if frames == 0 {
        0
    } else {
        t_total + (frames - 1).saturating_mul(interval)
    };
    let bottleneck = if fpga_stage >= coarse_stage {
        Stage::FineGrain
    } else {
        Stage::CoarseGrain
    };
    let (fpga_utilization, cgc_utilization) = if interval == 0 {
        (0.0, 0.0)
    } else {
        (
            fpga_stage as f64 / interval as f64,
            coarse_stage as f64 / interval as f64,
        )
    };
    PipelineReport {
        frames,
        interval,
        sequential_cycles,
        pipelined_cycles,
        bottleneck,
        fpga_utilization,
        cgc_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(t_fpga: u64, t_coarse: u64, t_comm: u64) -> Breakdown {
        Breakdown {
            t_fpga,
            t_coarse_cgc: t_coarse * 3,
            t_coarse,
            t_comm,
        }
    }

    #[test]
    fn interval_is_the_slower_stage() {
        let r = pipeline_report(&breakdown(500, 300, 100), 10);
        assert_eq!(r.interval, 500);
        assert_eq!(r.bottleneck, Stage::FineGrain);
        let r = pipeline_report(&breakdown(200, 300, 150), 10);
        assert_eq!(r.interval, 450);
        assert_eq!(r.bottleneck, Stage::CoarseGrain);
    }

    #[test]
    fn balanced_stages_approach_2x() {
        let r = pipeline_report(&breakdown(400, 300, 100), 1000);
        assert!(r.speedup() > 1.95, "speedup {}", r.speedup());
        assert!((r.asymptotic_speedup() - 2.0).abs() < 1e-9);
        assert!((r.fpga_utilization - 1.0).abs() < 1e-9);
        assert!((r.cgc_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_frame_gains_nothing() {
        let b = breakdown(400, 300, 100);
        let r = pipeline_report(&b, 1);
        assert_eq!(r.pipelined_cycles, b.t_total());
        assert_eq!(r.sequential_cycles, b.t_total());
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_frames_are_zero_cycles() {
        let r = pipeline_report(&breakdown(400, 300, 100), 0);
        assert_eq!(r.pipelined_cycles, 0);
        assert_eq!(r.sequential_cycles, 0);
    }

    #[test]
    fn lopsided_pipeline_has_idle_unit() {
        let r = pipeline_report(&breakdown(1000, 50, 10), 100);
        assert_eq!(r.bottleneck, Stage::FineGrain);
        assert!(r.cgc_utilization < 0.1);
        assert!(r.speedup() < 1.1, "little to gain when one stage dominates");
    }

    #[test]
    fn pipelined_never_slower_than_sequential() {
        for (f, c, m, n) in [
            (10u64, 10u64, 0u64, 5u64),
            (0, 7, 3, 9),
            (123, 456, 78, 1000),
        ] {
            let r = pipeline_report(&breakdown(f, c, m), n);
            assert!(r.pipelined_cycles <= r.sequential_cycles);
        }
    }
}
