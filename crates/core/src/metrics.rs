//! A lightweight, dependency-free counter/gauge registry.
//!
//! Every subsystem that counts something (the [`MappingCache`], the
//! incremental engine, the runtime's calendar queue and fault layer,
//! explore's evaluators) snapshots its counters into a
//! [`MetricsRegistry`], and every `--json` report renders the registry
//! as a `metrics` object. The registry is deliberately dumb: an
//! insertion-ordered list of `(name, u64)` pairs with no global state,
//! no locks and no external dependencies, so publishing into it can
//! never perturb a deterministic run — the observer-effect guard the
//! tracing layer is held to as well.
//!
//! Names are dotted paths (`cache.fine_hits`, `queue.rehashes`,
//! `faults.injected`), grouping related counters without imposing any
//! hierarchy on the registry itself.
//!
//! [`MappingCache`]: crate::MappingCache
//!
//! # Examples
//!
//! ```
//! use amdrel_core::metrics::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.set("cache.fine_hits", 12);
//! m.add("engine.moves", 3);
//! m.add("engine.moves", 4);
//! assert_eq!(m.get("engine.moves"), Some(7));
//! assert_eq!(m.to_json(), r#"{"cache.fine_hits": 12, "engine.moves": 7}"#);
//! ```

use crate::json::escape;

/// An insertion-ordered collection of named `u64` metrics.
///
/// Insertion order is preserved in iteration and JSON output, so a
/// registry filled in a fixed program order renders byte-identically on
/// every run — the property the `--json` schemas rely on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, u64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Set `name` to `value`, overwriting a previous value but keeping
    /// the name's original insertion position.
    pub fn set(&mut self, name: &str, value: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.entries.push((name.to_owned(), value)),
        }
    }

    /// Add `delta` to `name` (registering it at 0 first if absent).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = v.saturating_add(delta),
            None => self.entries.push((name.to_owned(), delta)),
        }
    }

    /// The current value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Render the registry as a single-line JSON object, names in
    /// insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&escape(name));
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_in_place() {
        let mut m = MetricsRegistry::new();
        m.set("a", 1);
        m.set("b", 2);
        m.set("a", 9);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"], "overwrite keeps insertion order");
        assert_eq!(m.get("a"), Some(9));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn add_registers_and_accumulates() {
        let mut m = MetricsRegistry::new();
        m.add("hits", 3);
        m.add("hits", 4);
        assert_eq!(m.get("hits"), Some(7));
        assert_eq!(m.get("absent"), None);
    }

    #[test]
    fn json_is_insertion_ordered_and_escaped() {
        let mut m = MetricsRegistry::new();
        m.set("z.first", 1);
        m.set("a.second", 2);
        assert_eq!(m.to_json(), r#"{"z.first": 1, "a.second": 2}"#);
        assert_eq!(MetricsRegistry::new().to_json(), "{}");
    }
}
