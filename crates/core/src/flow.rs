//! The end-to-end flow of Figure 2 as a single entry point: compile,
//! profile, analyse, partition.
//!
//! The lower-level pieces (frontend, profiler, engine) stay independently
//! usable; this module is the "prototype framework" convenience wrapper
//! the paper describes building in C++.

use crate::cache::MappingCache;
use crate::engine::{EngineConfig, PartitionResult, PartitioningEngine};
use crate::platform::Platform;
use crate::CoreError;
use amdrel_minic::CompiledProgram;
use amdrel_profiler::{AnalysisReport, Execution, Interpreter, WeightTable};

/// Everything produced by one pass of the Figure 2 flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The compiled program (IR + CDFG).
    pub program: CompiledProgram,
    /// The profiling run (dynamic analysis).
    pub execution: Execution,
    /// The combined static+dynamic analysis.
    pub analysis: AnalysisReport,
    /// The partitioning outcome.
    pub result: PartitionResult,
}

/// Run the complete methodology on mini-C source.
///
/// Steps (Figure 2): CDFG creation → fine-grain mapping & constraint
/// check → analysis (profile on `inputs`) → partitioning engine with
/// coarse-grain mapping.
///
/// # Errors
///
/// Compilation, profiling, or mapping failures as [`CoreError`].
///
/// # Examples
///
/// ```
/// use amdrel_core::{run_flow, Platform};
///
/// # fn main() -> Result<(), amdrel_core::CoreError> {
/// let src = r#"
///     int x[64];
///     int main() {
///         int acc = 0;
///         for (int i = 0; i < 64; i++) { acc += x[i] * x[i]; }
///         return acc;
///     }
/// "#;
/// let outcome = run_flow(src, &[], &Platform::paper(1500, 2), 1_000)?;
/// assert!(outcome.result.initial_cycles > 0);
/// # Ok(())
/// # }
/// ```
pub fn run_flow(
    source: &str,
    inputs: &[(&str, &[i64])],
    platform: &Platform,
    constraint: u64,
) -> Result<FlowOutcome, CoreError> {
    run_flow_with(
        source,
        inputs,
        platform,
        constraint,
        EngineConfig::default(),
    )
}

/// [`run_flow`] with an explicit engine policy.
///
/// # Errors
///
/// Same as [`run_flow`].
pub fn run_flow_with(
    source: &str,
    inputs: &[(&str, &[i64])],
    platform: &Platform,
    constraint: u64,
    config: EngineConfig,
) -> Result<FlowOutcome, CoreError> {
    run_flow_cached(
        source,
        inputs,
        platform,
        constraint,
        config,
        &MappingCache::new(),
    )
}

/// [`run_flow_with`] serving the fabric mappings from a shared
/// [`MappingCache`]. Re-running the flow on the same source and platform
/// (e.g. when exploring constraints) then reuses the mappings instead of
/// recomputing them — the cache keys include a structural fingerprint of
/// the compiled CDFG, so one cache can serve many different sources.
///
/// # Errors
///
/// Same as [`run_flow`].
pub fn run_flow_cached(
    source: &str,
    inputs: &[(&str, &[i64])],
    platform: &Platform,
    constraint: u64,
    config: EngineConfig,
    cache: &MappingCache,
) -> Result<FlowOutcome, CoreError> {
    let program = amdrel_minic::compile(source, "main")?;
    let execution = Interpreter::new(&program.ir).run(inputs)?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let result = PartitioningEngine::new(&program.cdfg, &analysis, platform)
        .with_config(config)
        .with_mapping_cache(cache)
        .run(constraint)?;
    Ok(FlowOutcome {
        program,
        execution,
        analysis,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        int samples[64];
        int taps[8];
        int out[64];
        int main() {
            for (int i = 0; i < 56; i++) {
                int acc = 0;
                for (int t = 0; t < 8; t++) {
                    acc += samples[i + t] * taps[t];
                }
                out[i] = acc >> 4;
            }
            return out[0];
        }
    "#;

    #[test]
    fn flow_end_to_end() {
        let platform = Platform::paper(1500, 2);
        let outcome = run_flow(SRC, &[("taps", &[1, 2, 3, 4, 4, 3, 2, 1])], &platform, 1).unwrap();
        assert!(!outcome.result.met, "1-cycle constraint is impossible");
        assert!(!outcome.analysis.kernels().is_empty());
        assert!(outcome.result.final_cycles() < outcome.result.initial_cycles);
    }

    #[test]
    fn flow_rejects_bad_source() {
        let platform = Platform::paper(1500, 2);
        assert!(matches!(
            run_flow("int main() { return q; }", &[], &platform, 100),
            Err(CoreError::Compile(_))
        ));
    }

    #[test]
    fn flow_surfaces_runtime_errors() {
        let platform = Platform::paper(1500, 2);
        let r = run_flow(
            "int a[2]; int main() { int i = 5; return a[i]; }",
            &[],
            &platform,
            100,
        );
        assert!(matches!(r, Err(CoreError::Profile(_))));
    }
}
