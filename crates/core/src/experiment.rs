//! Paper-style experiment grids and their table rendering.
//!
//! Tables 2 and 3 of the paper evaluate four configurations per
//! application (`A_FPGA ∈ {1500, 5000}` × {two, three} 2×2 CGCs) against
//! one timing constraint. [`run_grid`] reproduces that sweep for any
//! analysed application; [`format_paper_table`] renders the result in the
//! paper's row layout.

use crate::engine::{PartitionResult, PartitioningEngine};
use crate::platform::Platform;
use crate::CoreError;
use amdrel_cdfg::Cdfg;
use amdrel_coarsegrain::CgcDatapath;
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One cell of the experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// `A_FPGA` of this configuration.
    pub area: u64,
    /// Datapath description (e.g. "two 2x2 CGCs").
    pub datapath: String,
    /// The partitioning outcome.
    pub result: PartitionResult,
}

/// A full experiment grid (one application, one constraint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentGrid {
    /// Application name.
    pub app: String,
    /// The timing constraint in FPGA cycles.
    pub constraint: u64,
    /// All evaluated cells, area-major.
    pub cells: Vec<GridCell>,
}

/// Run the engine over every `(area, datapath)` combination.
///
/// `base` supplies everything except the FPGA area and the CGC datapath
/// (clock ratio, communication model, scheduler config, FPGA
/// characterisation other than total area).
///
/// # Errors
///
/// The first configuration whose mapping fails.
pub fn run_grid(
    app: &str,
    cdfg: &Cdfg,
    analysis: &AnalysisReport,
    base: &Platform,
    areas: &[u64],
    datapaths: &[CgcDatapath],
    constraint: u64,
) -> Result<ExperimentGrid, CoreError> {
    let mut cells = Vec::with_capacity(areas.len() * datapaths.len());
    for &area in areas {
        for dp in datapaths {
            let mut platform = base.clone();
            platform.fpga.total_area = area;
            platform.datapath = dp.clone();
            let result = PartitioningEngine::new(cdfg, analysis, &platform).run(constraint)?;
            cells.push(GridCell {
                area,
                datapath: dp.describe(),
                result,
            });
        }
    }
    Ok(ExperimentGrid {
        app: app.to_owned(),
        constraint,
        cells,
    })
}

/// Render the grid in the layout of the paper's Tables 2/3:
///
/// ```text
///                    A_FPGA=1500            A_FPGA=5000
/// Initial cycles     <initial>              <initial>
/// CGCs no.           two 2x2   three 2x2    two 2x2   three 2x2
/// Cycles in CGC      …         …            …         …
/// BB no.             …         …            …         …
/// Final cycles       …         …            …         …
/// % cycles reduction …         …            …         …
/// ```
pub fn format_paper_table(grid: &ExperimentGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} partitioning results for timing constraint of {} cycles",
        grid.app, grid.constraint
    );
    let areas: Vec<u64> = {
        let mut a: Vec<u64> = grid.cells.iter().map(|c| c.area).collect();
        a.dedup();
        a
    };
    let col = 14usize;

    // Header: areas span their datapath columns.
    let mut header = format!("{:<20}", "");
    for &area in &areas {
        let span = grid.cells.iter().filter(|c| c.area == area).count();
        header.push_str(&format!(
            "{:<width$}",
            format!("A_FPGA={area}"),
            width = col * span
        ));
    }
    let _ = writeln!(out, "{header}");

    let cells_for = |area: u64| grid.cells.iter().filter(move |c| c.area == area);

    let mut line = format!("{:<20}", "Initial cycles");
    for &area in &areas {
        let span = cells_for(area).count();
        let initial = cells_for(area)
            .next()
            .map(|c| c.result.initial_cycles)
            .unwrap_or(0);
        line.push_str(&format!("{:<width$}", initial, width = col * span));
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "CGCs no.");
    for &area in &areas {
        for c in cells_for(area) {
            let dp = c.datapath.trim_end_matches(" CGCs");
            line.push_str(&format!("{:<col$}", dp));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "Cycles in CGC");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$}", c.result.breakdown.t_coarse_cgc));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "BB no.");
    for &area in &areas {
        for c in cells_for(area) {
            let moved = c.result.moved_blocks();
            let shown: Vec<String> = moved
                .iter()
                .take(3)
                .map(|b| b.index().to_string())
                .collect();
            let text = if moved.len() > 3 {
                format!("{}+{}", shown.join(","), moved.len() - 3)
            } else {
                shown.join(",")
            };
            line.push_str(&format!("{:<col$}", text));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "Final cycles");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$}", c.result.final_cycles()));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "% cycles reduction");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$.1}", c.result.reduction_percent()));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "constraint met");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!(
                "{:<col$}",
                if c.result.met { "yes" } else { "NO" }
            ));
        }
    }
    let _ = writeln!(out, "{line}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::{Interpreter, WeightTable};

    fn grid() -> ExperimentGrid {
        let src = r#"
            int data[128];
            int main() {
                int acc = 0;
                for (int i = 0; i < 128; i++) {
                    acc += data[i] * data[i] * 5 + data[i];
                }
                return acc;
            }
        "#;
        let c = compile(src, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let report = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        let base = Platform::paper(1500, 2);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &base)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        run_grid(
            "toy",
            &c.cdfg,
            &report,
            &base,
            &[1500, 5000],
            &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
            initial / 2,
        )
        .unwrap()
    }

    #[test]
    fn grid_has_four_cells() {
        let g = grid();
        assert_eq!(g.cells.len(), 4);
        assert_eq!(g.cells[0].area, 1500);
        assert_eq!(g.cells[3].area, 5000);
    }

    #[test]
    fn larger_area_smaller_initial() {
        let g = grid();
        let initial_1500 = g.cells[0].result.initial_cycles;
        let initial_5000 = g.cells[2].result.initial_cycles;
        assert!(initial_5000 <= initial_1500);
    }

    #[test]
    fn table_contains_all_rows() {
        let g = grid();
        let t = format_paper_table(&g);
        for row in [
            "Initial cycles",
            "CGCs no.",
            "Cycles in CGC",
            "BB no.",
            "Final cycles",
            "% cycles reduction",
        ] {
            assert!(t.contains(row), "missing row {row} in:\n{t}");
        }
        assert!(t.contains("A_FPGA=1500") && t.contains("A_FPGA=5000"));
    }
}
