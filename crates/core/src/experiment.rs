//! Paper-style experiment grids and their table rendering.
//!
//! Tables 2 and 3 of the paper evaluate four configurations per
//! application (`A_FPGA ∈ {1500, 5000}` × {two, three} 2×2 CGCs) against
//! one timing constraint. [`run_grid`] reproduces that sweep for any
//! analysed application; [`format_paper_table`] renders the result in the
//! paper's row layout.
//!
//! Two performance paths sit underneath:
//!
//! * every grid run goes through a [`MappingCache`], so a sweep over `A`
//!   areas × `D` datapaths computes exactly `A` fine-grain and `D`
//!   coarse-grain mappings instead of `A·D` of each (the fine-grain
//!   mapping depends only on the FPGA, the coarse-grain one only on the
//!   datapath);
//! * [`run_grid_parallel`] evaluates the cells on scoped threads (cells
//!   are independent), preserving the exact area-major output order of
//!   the sequential path.

use crate::cache::MappingCache;
use crate::engine::{PartitionResult, PartitioningEngine};
use crate::platform::Platform;
use crate::CoreError;
use amdrel_cdfg::Cdfg;
use amdrel_coarsegrain::CgcDatapath;
use amdrel_profiler::AnalysisReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One cell of the experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// `A_FPGA` of this configuration.
    pub area: u64,
    /// Datapath description (e.g. "two 2x2 CGCs").
    pub datapath: String,
    /// The partitioning outcome.
    pub result: PartitionResult,
}

/// A full experiment grid (one application, one constraint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentGrid {
    /// Application name.
    pub app: String,
    /// The timing constraint in FPGA cycles.
    pub constraint: u64,
    /// All evaluated cells, area-major.
    pub cells: Vec<GridCell>,
}

/// Everything a grid sweep needs besides the cache: the analysed
/// application, the base platform, and the swept dimensions.
///
/// `base` supplies everything except the FPGA area and the CGC datapath
/// (clock ratio, communication model, scheduler config, FPGA
/// characterisation other than total area).
#[derive(Debug, Clone, Copy)]
pub struct GridSpec<'a> {
    /// Application name (labels the grid).
    pub app: &'a str,
    /// The application CDFG.
    pub cdfg: &'a Cdfg,
    /// Its static+dynamic analysis.
    pub analysis: &'a AnalysisReport,
    /// The base platform (see type-level docs).
    pub base: &'a Platform,
    /// `A_FPGA` values to sweep.
    pub areas: &'a [u64],
    /// CGC datapaths to sweep.
    pub datapaths: &'a [CgcDatapath],
    /// The timing constraint, in FPGA cycles.
    pub constraint: u64,
}

impl GridSpec<'_> {
    /// The `(area, datapath)` cells in area-major order.
    fn configs(&self) -> Vec<(u64, &CgcDatapath)> {
        let mut configs = Vec::with_capacity(self.areas.len() * self.datapaths.len());
        for &area in self.areas {
            for dp in self.datapaths {
                configs.push((area, dp));
            }
        }
        configs
    }

    fn cell(
        &self,
        area: u64,
        dp: &CgcDatapath,
        cache: &MappingCache,
    ) -> Result<GridCell, CoreError> {
        let mut platform = self.base.clone();
        platform.fpga.total_area = area;
        platform.datapath = dp.clone();
        let result = PartitioningEngine::new(self.cdfg, self.analysis, &platform)
            .with_mapping_cache(cache)
            .run(self.constraint)?;
        Ok(GridCell {
            area,
            datapath: dp.describe(),
            result,
        })
    }

    fn grid(&self, cells: Vec<GridCell>) -> ExperimentGrid {
        ExperimentGrid {
            app: self.app.to_owned(),
            constraint: self.constraint,
            cells,
        }
    }
}

/// Run the engine over every `(area, datapath)` combination.
///
/// A private [`MappingCache`] deduplicates the fabric mappings, so a grid
/// over `A` areas and `D` datapaths performs exactly `A` fine-grain and
/// `D` coarse-grain mappings. To share mappings across several grids (or
/// read the hit counters), use [`run_grid_cached`].
///
/// # Errors
///
/// The first configuration whose mapping fails.
pub fn run_grid(
    app: &str,
    cdfg: &Cdfg,
    analysis: &AnalysisReport,
    base: &Platform,
    areas: &[u64],
    datapaths: &[CgcDatapath],
    constraint: u64,
) -> Result<ExperimentGrid, CoreError> {
    run_grid_cached(
        &GridSpec {
            app,
            cdfg,
            analysis,
            base,
            areas,
            datapaths,
            constraint,
        },
        &MappingCache::new(),
    )
}

/// [`run_grid`] against a caller-supplied [`MappingCache`], enabling
/// mapping reuse across grids (e.g. sweeping several constraints) and
/// inspection of the cache counters.
///
/// # Errors
///
/// The first configuration whose mapping fails.
pub fn run_grid_cached(
    spec: &GridSpec<'_>,
    cache: &MappingCache,
) -> Result<ExperimentGrid, CoreError> {
    let mut cells = Vec::with_capacity(spec.areas.len() * spec.datapaths.len());
    for (area, dp) in spec.configs() {
        cells.push(spec.cell(area, dp, cache)?);
    }
    Ok(spec.grid(cells))
}

/// [`run_grid`] with the cells evaluated on scoped threads (at most
/// [`std::thread::available_parallelism`] workers, each owning a
/// contiguous run of cells — cells are independent). Output is identical
/// to the sequential path, cell for cell: results land in preallocated
/// area-major slots, and on error the first failing cell *in grid order*
/// is reported, regardless of thread timing.
///
/// # Errors
///
/// The first configuration (in area-major grid order) whose mapping
/// fails.
pub fn run_grid_parallel(spec: &GridSpec<'_>) -> Result<ExperimentGrid, CoreError> {
    run_grid_parallel_cached(spec, &MappingCache::new())
}

/// [`run_grid_parallel`] against a caller-supplied [`MappingCache`].
///
/// # Errors
///
/// The first configuration (in area-major grid order) whose mapping
/// fails.
pub fn run_grid_parallel_cached(
    spec: &GridSpec<'_>,
    cache: &MappingCache,
) -> Result<ExperimentGrid, CoreError> {
    run_grid_parallel_jobs(spec, cache, 0)
}

/// [`run_grid_parallel_cached`] with an explicit worker count.
///
/// `jobs == 0` keeps the automatic heuristic (one worker per available
/// core, capped at the cell count); any other value requests exactly
/// `min(jobs, cells)` workers — the knob behind the CLI's `--jobs N` and
/// the explorer's `ExploreConfig::jobs` setting. The output is identical
/// cell for cell at every worker count (results land in preallocated
/// area-major slots), so callers may tune throughput without affecting
/// results.
///
/// # Errors
///
/// The first configuration (in area-major grid order) whose mapping
/// fails.
pub fn run_grid_parallel_jobs(
    spec: &GridSpec<'_>,
    cache: &MappingCache,
    jobs: usize,
) -> Result<ExperimentGrid, CoreError> {
    let configs = spec.configs();
    if configs.is_empty() {
        return Ok(spec.grid(Vec::new()));
    }
    let workers = match jobs {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
        n => n,
    }
    .min(configs.len());
    let chunk = configs.len().div_ceil(workers);
    let mut slots: Vec<Option<Result<GridCell, CoreError>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    std::thread::scope(|s| {
        for (slot_chunk, config_chunk) in slots.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            s.spawn(move || {
                for (slot, (area, dp)) in slot_chunk.iter_mut().zip(config_chunk) {
                    *slot = Some(spec.cell(*area, dp, cache));
                }
            });
        }
    });
    let mut cells = Vec::with_capacity(slots.len());
    for slot in slots {
        cells.push(slot.expect("scoped worker fills its slots")?);
    }
    Ok(spec.grid(cells))
}

/// Render the grid in the layout of the paper's Tables 2/3:
///
/// ```text
///                    A_FPGA=1500            A_FPGA=5000
/// Initial cycles     <initial>              <initial>
/// CGCs no.           two 2x2   three 2x2    two 2x2   three 2x2
/// Cycles in CGC      …         …            …         …
/// BB no.             …         …            …         …
/// Final cycles       …         …            …         …
/// % cycles reduction …         …            …         …
/// ```
pub fn format_paper_table(grid: &ExperimentGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} partitioning results for timing constraint of {} cycles",
        grid.app, grid.constraint
    );
    let areas: Vec<u64> = {
        let mut a: Vec<u64> = grid.cells.iter().map(|c| c.area).collect();
        a.dedup();
        a
    };
    let col = 14usize;

    // Header: areas span their datapath columns.
    let mut header = format!("{:<20}", "");
    for &area in &areas {
        let span = grid.cells.iter().filter(|c| c.area == area).count();
        header.push_str(&format!(
            "{:<width$}",
            format!("A_FPGA={area}"),
            width = col * span
        ));
    }
    let _ = writeln!(out, "{header}");

    let cells_for = |area: u64| grid.cells.iter().filter(move |c| c.area == area);

    let mut line = format!("{:<20}", "Initial cycles");
    for &area in &areas {
        let span = cells_for(area).count();
        let initial = cells_for(area)
            .next()
            .map(|c| c.result.initial_cycles)
            .unwrap_or(0);
        line.push_str(&format!("{:<width$}", initial, width = col * span));
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "CGCs no.");
    for &area in &areas {
        for c in cells_for(area) {
            let dp = c.datapath.trim_end_matches(" CGCs");
            line.push_str(&format!("{:<col$}", dp));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "Cycles in CGC");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$}", c.result.breakdown.t_coarse_cgc));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "BB no.");
    for &area in &areas {
        for c in cells_for(area) {
            let moved = c.result.moved_blocks();
            let shown: Vec<String> = moved
                .iter()
                .take(3)
                .map(|b| b.index().to_string())
                .collect();
            let text = if moved.len() > 3 {
                format!("{}+{}", shown.join(","), moved.len() - 3)
            } else {
                shown.join(",")
            };
            line.push_str(&format!("{:<col$}", text));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "Final cycles");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$}", c.result.final_cycles()));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "% cycles reduction");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!("{:<col$.1}", c.result.reduction_percent()));
        }
    }
    let _ = writeln!(out, "{line}");

    let mut line = format!("{:<20}", "constraint met");
    for &area in &areas {
        for c in cells_for(area) {
            line.push_str(&format!(
                "{:<col$}",
                if c.result.met { "yes" } else { "NO" }
            ));
        }
    }
    let _ = writeln!(out, "{line}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_minic::compile;
    use amdrel_profiler::{Interpreter, WeightTable};

    fn toy_app() -> (amdrel_minic::CompiledProgram, AnalysisReport, u64) {
        let src = r#"
            int data[128];
            int main() {
                int acc = 0;
                for (int i = 0; i < 128; i++) {
                    acc += data[i] * data[i] * 5 + data[i];
                }
                return acc;
            }
        "#;
        let c = compile(src, "main").unwrap();
        let exec = Interpreter::new(&c.ir).run(&[]).unwrap();
        let report = AnalysisReport::analyze(&c.cdfg, &exec.block_counts, &WeightTable::paper());
        let base = Platform::paper(1500, 2);
        let initial = PartitioningEngine::new(&c.cdfg, &report, &base)
            .run(u64::MAX)
            .unwrap()
            .initial_cycles;
        (c, report, initial)
    }

    fn grid() -> ExperimentGrid {
        let (c, report, initial) = toy_app();
        run_grid(
            "toy",
            &c.cdfg,
            &report,
            &Platform::paper(1500, 2),
            &[1500, 5000],
            &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
            initial / 2,
        )
        .unwrap()
    }

    #[test]
    fn grid_has_four_cells() {
        let g = grid();
        assert_eq!(g.cells.len(), 4);
        assert_eq!(g.cells[0].area, 1500);
        assert_eq!(g.cells[3].area, 5000);
    }

    #[test]
    fn larger_area_smaller_initial() {
        let g = grid();
        let initial_1500 = g.cells[0].result.initial_cycles;
        let initial_5000 = g.cells[2].result.initial_cycles;
        assert!(initial_5000 <= initial_1500);
    }

    #[test]
    fn parallel_grid_equals_sequential() {
        let (c, report, initial) = toy_app();
        let base = Platform::paper(1500, 2);
        let datapaths = [
            CgcDatapath::two_2x2(),
            CgcDatapath::three_2x2(),
            CgcDatapath::uniform(1, amdrel_coarsegrain::CgcGeometry::TWO_BY_TWO),
        ];
        let spec = GridSpec {
            app: "toy",
            cdfg: &c.cdfg,
            analysis: &report,
            base: &base,
            areas: &[1200, 1500, 5000],
            datapaths: &datapaths,
            constraint: initial / 2,
        };
        let sequential = run_grid_cached(&spec, &MappingCache::new()).unwrap();
        let parallel = run_grid_parallel(&spec).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (c, report, initial) = toy_app();
        let base = Platform::paper(1500, 2);
        let datapaths = [
            CgcDatapath::two_2x2(),
            CgcDatapath::three_2x2(),
            CgcDatapath::uniform(4, amdrel_coarsegrain::CgcGeometry::TWO_BY_TWO),
        ];
        let spec = GridSpec {
            app: "toy",
            cdfg: &c.cdfg,
            analysis: &report,
            base: &base,
            areas: &[1200, 1500, 5000],
            datapaths: &datapaths,
            constraint: initial / 2,
        };
        let sequential = run_grid_cached(&spec, &MappingCache::new()).unwrap();
        for jobs in [1usize, 2, 7, 64] {
            let grid = run_grid_parallel_jobs(&spec, &MappingCache::new(), jobs).unwrap();
            assert_eq!(grid, sequential, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn grid_computes_a_plus_d_mappings() {
        let (c, report, initial) = toy_app();
        let base = Platform::paper(1500, 2);
        let datapaths = [CgcDatapath::two_2x2(), CgcDatapath::three_2x2()];
        let areas = [1200u64, 1500, 5000];
        let spec = GridSpec {
            app: "toy",
            cdfg: &c.cdfg,
            analysis: &report,
            base: &base,
            areas: &areas,
            datapaths: &datapaths,
            // Tight enough that no cell exits at step 2, so every cell
            // demands both mappings.
            constraint: 1,
        };
        let cache = MappingCache::new();
        // Sweep several constraints through one cache: an A×D×C sweep
        // still computes only A fine-grain and D coarse-grain mappings.
        for divisor in [1u64, 2, 4] {
            let spec = GridSpec {
                constraint: (initial / divisor).max(1),
                ..spec
            };
            run_grid_cached(&spec, &cache).unwrap();
        }
        run_grid_parallel_cached(&spec, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.fine_misses, areas.len() as u64);
        assert_eq!(stats.coarse_misses, datapaths.len() as u64);
        // 4 sweeps × (3 areas × 2 datapaths) cells, minus one lookup per miss.
        assert_eq!(stats.fine_hits, 4 * 6 - 3);
        // Step-2 exits skip the coarse lookup, so only a lower bound holds.
        assert!(stats.coarse_hits >= 6 - 2);
    }

    #[test]
    fn table_contains_all_rows() {
        let g = grid();
        let t = format_paper_table(&g);
        for row in [
            "Initial cycles",
            "CGCs no.",
            "Cycles in CGC",
            "BB no.",
            "Final cycles",
            "% cycles reduction",
        ] {
            assert!(t.contains(row), "missing row {row} in:\n{t}");
        }
        assert!(t.contains("A_FPGA=1500") && t.contains("A_FPGA=5000"));
    }
}
