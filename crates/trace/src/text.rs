//! Compact line-oriented timeline export.
//!
//! One event per line in canonical `(time, seq)` order — the grep-able
//! counterpart of the Chrome export, sharing its determinism contract.

use crate::{canonical_order, EventKind, TraceEvent};
use std::fmt::Write as _;

/// Render `events` as a text timeline, one line per event:
///
/// ```text
/// cycle        track      event
///         1260 fabric     span    fine         +5000 job=3 arg=1
/// ```
///
/// `+N` is the span length; `arg` is the event's detail value (see
/// `docs/OBSERVABILITY.md` for the per-event meaning).
pub fn text_timeline(events: &[TraceEvent]) -> String {
    let mut out = String::from("cycle        track      event\n");
    for e in canonical_order(events) {
        let kind = match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::JobBegin => "begin",
            EventKind::JobEnd => "end",
        };
        let _ = write!(
            out,
            "{:>12} {:<10} {:<7} {:<12}",
            e.time,
            e.track.label(),
            kind,
            e.name
        );
        if e.dur > 0 {
            let _ = write!(out, " +{}", e.dur);
        }
        if let Some(job) = e.job {
            let _ = write!(out, " job={job}");
        }
        if let Some(arg) = e.arg {
            let _ = write!(out, " arg={arg}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackId;

    #[test]
    fn lines_are_time_ordered_and_annotated() {
        let events = vec![
            TraceEvent {
                seq: 1,
                ..TraceEvent::span(TrackId::Fabric, 500, 40, "fine").with_job(2)
            },
            TraceEvent {
                seq: 0,
                ..TraceEvent::instant(TrackId::Scheduler, 700, "retry").with_arg(1)
            },
        ];
        let text = text_timeline(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[1].contains("fine") && lines[1].contains("+40") && lines[1].contains("job=2")
        );
        assert!(lines[2].contains("retry") && lines[2].contains("arg=1"));
        assert_eq!(text_timeline(&events), text, "export is deterministic");
    }
}
