//! Opt-in wall-clock self-profiling.
//!
//! A [`Profiler`] accumulates real (host) time per named phase. Wall
//! time is inherently nondeterministic, so this output is quarantined:
//! the CLI prints the `amdrel-profile/v1` block to **stderr**, it never
//! enters a `--json` report, and every byte-identity check excludes it.
//! The cycle-domain trace (`crate::TraceEvent`) is the deterministic
//! twin; this is the "where does simulator wall time go" instrument the
//! sharded-timelines work needs a baseline from.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated wall-clock cost of one named phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (`explore.strategy`, `sweep.cell`, `sim.run`, …).
    pub name: &'static str,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time spent in the phase, nanoseconds.
    pub wall_ns: u128,
}

/// A thread-safe wall-clock phase accumulator.
///
/// # Examples
///
/// ```
/// use amdrel_trace::Profiler;
///
/// let profiler = Profiler::new();
/// let answer = profiler.time("phase.work", || 6 * 7);
/// assert_eq!(answer, 42);
/// let phases = profiler.phases();
/// assert_eq!((phases[0].name, phases[0].calls), ("phase.work", 1));
/// assert!(profiler.to_json().contains("\"amdrel-profile/v1\""));
/// ```
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<Vec<PhaseStat>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Run `f`, charging its wall time to `name`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Charge an externally measured duration to `name`.
    pub fn record(&self, name: &'static str, elapsed: Duration) {
        let mut phases = self.phases.lock().expect("profiler poisoned");
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.calls += 1;
                p.wall_ns += elapsed.as_nanos();
            }
            None => phases.push(PhaseStat {
                name,
                calls: 1,
                wall_ns: elapsed.as_nanos(),
            }),
        }
    }

    /// Snapshot the per-phase totals, in first-use order.
    pub fn phases(&self) -> Vec<PhaseStat> {
        self.phases.lock().expect("profiler poisoned").clone()
    }

    /// Render the totals as an `amdrel-profile/v1` JSON block. The
    /// values are wall-clock and therefore differ run to run; only the
    /// *shape* is stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"amdrel-profile/v1\",\"phases\":[");
        for (i, p) in self.phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"calls\":{},\"wall_ns\":{}}}",
                p.name, p.calls, p.wall_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_first_use_order() {
        let profiler = Profiler::new();
        profiler.record("b", Duration::from_nanos(5));
        profiler.record("a", Duration::from_nanos(3));
        profiler.record("b", Duration::from_nanos(2));
        let phases = profiler.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            (phases[0].name, phases[0].calls, phases[0].wall_ns),
            ("b", 2, 7)
        );
        assert_eq!((phases[1].name, phases[1].calls), ("a", 1));
    }

    #[test]
    fn json_shape_is_stable() {
        let profiler = Profiler::new();
        profiler.record("x", Duration::from_nanos(1));
        let json = profiler.to_json();
        assert!(json.starts_with("{\"schema\":\"amdrel-profile/v1\",\"phases\":["));
        assert!(json.contains("\"name\":\"x\",\"calls\":1,\"wall_ns\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn time_returns_the_closure_value() {
        let profiler = Profiler::new();
        assert_eq!(profiler.time("t", || "ok"), "ok");
        assert_eq!(profiler.phases()[0].calls, 1);
    }
}
