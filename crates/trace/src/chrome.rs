//! Chrome trace-event / Perfetto JSON export (`amdrel-trace/v1`).
//!
//! The output is the JSON-object form of the trace-event format: a
//! `traceEvents` array plus top-level metadata, loadable directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>. One simulated FPGA
//! cycle is rendered as one microsecond (the format's `ts` unit), so
//! cycle arithmetic survives the viewer unchanged.
//!
//! Rendering choices that keep the export trivially well-formed:
//!
//! * [`EventKind::Span`] becomes a *complete* event (`ph: "X"` with
//!   `dur`) — the simulator knows every span's length when it schedules
//!   the work, so there are no begin/end pairs to unbalance;
//! * [`EventKind::Instant`] becomes `ph: "i"` with thread scope;
//! * job lifecycles ([`EventKind::JobBegin`]/[`EventKind::JobEnd`])
//!   become async `ph: "b"`/`"e"` pairs keyed by the job id — every
//!   admitted job is eventually disposed (completed, aborted or reaped),
//!   so the pairs always balance;
//! * events are written in canonical `(time, seq)` order, so `ts` is
//!   monotone within every track.

use crate::{canonical_order, EventKind, TraceEvent, TrackId};
use std::fmt::Write as _;

/// Render `events` as Chrome trace-event JSON (`amdrel-trace/v1`).
///
/// Tracks are mapped to thread ids in [`TrackId`] order (scheduler,
/// fabric, CGC slots, regions) and named via `thread_name` metadata
/// records, so the same scenario always yields the same bytes.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let sorted = canonical_order(events);
    let mut tracks: Vec<TrackId> = sorted.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    let tid = |track: TrackId| -> usize {
        tracks
            .binary_search(&track)
            .expect("every event's track is registered")
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"amdrel-trace/v1\",\n");
    out.push_str("  \"displayTimeUnit\": \"ms\",\n");
    out.push_str("  \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&line);
    };
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"amdrel-sim\"}}"
            .to_owned(),
        &mut out,
    );
    for (i, track) in tracks.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.label()
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\
                 \"args\":{{\"sort_index\":{i}}}}}"
            ),
            &mut out,
        );
    }
    for e in &sorted {
        push(render_event(e, tid(e.track)), &mut out);
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn render_event(e: &TraceEvent, tid: usize) -> String {
    let mut args = format!("\"seq\":{}", e.seq);
    if let Some(job) = e.job {
        let _ = write!(args, ",\"job\":{job}");
    }
    if let Some(arg) = e.arg {
        let _ = write!(args, ",\"detail\":{arg}");
    }
    match e.kind {
        EventKind::Span => format!(
            "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            e.name, e.time, e.dur
        ),
        EventKind::Instant => format!(
            "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
             \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
            e.name, e.time
        ),
        EventKind::JobBegin | EventKind::JobEnd => {
            let ph = if e.kind == EventKind::JobBegin {
                "b"
            } else {
                "e"
            };
            format!(
                "{{\"name\":\"job\",\"cat\":\"job\",\"ph\":\"{ph}\",\
                 \"id\":{},\"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
                e.job.expect("job markers carry the job id"),
                e.time
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceBuffer, TraceSink};

    fn sample() -> Vec<TraceEvent> {
        let buffer = TraceBuffer::new();
        buffer.record(TraceEvent::job_begin(0, 7));
        buffer.record(TraceEvent::span(TrackId::Fabric, 0, 40, "load").with_job(7));
        buffer.record(
            TraceEvent::span(TrackId::Fabric, 40, 100, "fine")
                .with_job(7)
                .with_arg(0),
        );
        buffer.record(TraceEvent::instant(TrackId::Region(1), 0, "reprogram").with_job(7));
        buffer.record(TraceEvent::span(TrackId::CgcSlot(0), 140, 60, "coarse").with_job(7));
        buffer.record(TraceEvent::job_end(200, 7));
        buffer.events()
    }

    #[test]
    fn export_is_deterministic_and_tagged() {
        let events = sample();
        let a = chrome_trace(&events);
        let b = chrome_trace(&events);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"amdrel-trace/v1\""));
        assert!(a.contains("\"traceEvents\""));
    }

    #[test]
    fn tracks_are_named_in_order() {
        let json = chrome_trace(&sample());
        let fabric = json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"fabric\"}}");
        let cgc = json.find("\"args\":{\"name\":\"cgc0\"}");
        let region = json.find("\"args\":{\"name\":\"region1\"}");
        assert!(fabric.is_some() && cgc.is_some() && region.is_some());
        // scheduler < fabric < cgc < region in the metadata order.
        assert!(fabric < cgc && cgc < region);
    }

    #[test]
    fn ts_is_monotone_per_track_in_file_order() {
        let json = chrome_trace(&sample());
        let mut last_ts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for line in json.lines().filter(|l| l.contains("\"ts\":")) {
            let field = |key: &str| -> Option<u64> {
                let at = line.find(key)?;
                let rest = &line[at + key.len()..];
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            };
            let (tid, ts) = (field("\"tid\":").unwrap(), field("\"ts\":").unwrap());
            if let Some(&prev) = last_ts.get(&tid) {
                assert!(ts >= prev, "ts regressed on tid {tid}");
            }
            last_ts.insert(tid, ts);
        }
        assert!(!last_ts.is_empty());
    }

    #[test]
    fn async_job_pairs_balance() {
        let json = chrome_trace(&sample());
        let begins = json.matches("\"ph\":\"b\"").count();
        let ends = json.matches("\"ph\":\"e\"").count();
        assert_eq!(begins, 1);
        assert_eq!(begins, ends);
    }
}
