//! # amdrel-trace — deterministic observability for the hybrid stack
//!
//! Three pillars, strictly separated by their determinism contract:
//!
//! * **Event tracing** ([`TraceSink`], [`TraceEvent`], [`TraceBuffer`]) —
//!   the runtime simulator emits per-job lifecycle events in *simulated
//!   cycles*, totally ordered by `(time, seq)` where `seq` is the
//!   emission order. The simulator is single-threaded and consumes no
//!   randomness beyond its seeded streams, so a trace is bit-identical
//!   on every run of the same scenario — and attaching a sink never
//!   changes the simulated outcome (the observer-effect guard in
//!   `crates/bench/benches/trace_overhead.rs` enforces this).
//! * **Exporters** ([`chrome_trace`], [`text_timeline`],
//!   [`resource_gantt`]) — pure functions from an event list to a
//!   string: Chrome trace-event / Perfetto JSON (`amdrel-trace/v1`),
//!   a compact text timeline, and a per-resource gantt view in the
//!   `coarsegrain::gantt` idiom.
//! * **Self-profiling** ([`Profiler`]) — opt-in *wall-clock* phase
//!   timers. Wall time is inherently nondeterministic, so profile
//!   output lives in its own `amdrel-profile/v1` JSON block, printed to
//!   stderr by the CLI and excluded from every byte-identity check.
//!
//! # Examples
//!
//! ```
//! use amdrel_trace::{EventKind, TraceBuffer, TraceEvent, TraceSink, TrackId};
//!
//! let buffer = TraceBuffer::new();
//! buffer.record(TraceEvent::span(TrackId::Fabric, 100, 50, "fine").with_job(7));
//! buffer.record(TraceEvent::instant(TrackId::Scheduler, 100, "arrive").with_job(8));
//! let events = buffer.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].seq, 0); // emission order is preserved
//! let json = amdrel_trace::chrome_trace(&events);
//! assert!(json.contains("\"amdrel-trace/v1\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod gantt;
mod profile;
mod text;

pub use chrome::chrome_trace;
pub use gantt::resource_gantt;
pub use profile::{PhaseStat, Profiler};
pub use text::text_timeline;

use std::sync::Mutex;

/// The resource a trace event happened on — one row ("track") in every
/// exported view.
///
/// The ordering (scheduler, fabric, CGC slots, regions) is the exported
/// track order, so derived `Ord` is load-bearing for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackId {
    /// Admission, queueing and job-disposition decisions.
    Scheduler,
    /// The fine-grain FPGA fabric (loads, backoffs, fine phases).
    Fabric,
    /// One coarse-grain datapath slot (0-based).
    CgcSlot(u32),
    /// One reconfigurable region of a partial-reconfiguration plan.
    Region(u32),
}

impl TrackId {
    /// The track's display label (`scheduler`, `fabric`, `cgc3`,
    /// `region1`).
    pub fn label(&self) -> String {
        match self {
            TrackId::Scheduler => "scheduler".to_owned(),
            TrackId::Fabric => "fabric".to_owned(),
            TrackId::CgcSlot(s) => format!("cgc{s}"),
            TrackId::Region(r) => format!("region{r}"),
        }
    }
}

/// How a [`TraceEvent`] renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A closed interval of work on a resource (`time .. time + dur`).
    /// The engine knows every span's length when it schedules the work,
    /// so spans are emitted complete — nesting can never be unbalanced.
    Span,
    /// A point event (fault, retry, arrival, …) with `dur == 0`.
    Instant,
    /// Start of a job's lifecycle (admission). Exported as an async
    /// begin keyed by the job id.
    JobBegin,
    /// End of a job's lifecycle (completion, abort or deadline reap).
    JobEnd,
}

/// One event of a simulation trace, timestamped in simulated FPGA
/// cycles.
///
/// Events are totally ordered by `(time, seq)`: `time` is the
/// simulated instant the event starts at, `seq` the deterministic
/// emission order a [`TraceBuffer`] assigns at record time (the
/// tie-breaker that makes traces replay-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time, simulated cycles.
    pub time: u64,
    /// Span length in cycles (0 for instants and job markers).
    pub dur: u64,
    /// Emission order, assigned by the sink; 0 until recorded.
    pub seq: u64,
    /// The resource the event belongs to.
    pub track: TrackId,
    /// What happened (`fine`, `load`, `fault_load`, `retry`, …).
    pub name: &'static str,
    /// The job involved, if any.
    pub job: Option<u64>,
    /// A per-name detail value (attempt number, regions reprogrammed,
    /// wasted cycles, …) documented in `docs/OBSERVABILITY.md`.
    pub arg: Option<u64>,
    /// Rendering kind.
    pub kind: EventKind,
}

impl TraceEvent {
    /// A complete span of `dur` cycles starting at `time`.
    pub fn span(track: TrackId, time: u64, dur: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            time,
            dur,
            seq: 0,
            track,
            name,
            job: None,
            arg: None,
            kind: EventKind::Span,
        }
    }

    /// A point event at `time`.
    pub fn instant(track: TrackId, time: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            dur: 0,
            kind: EventKind::Instant,
            ..TraceEvent::span(track, time, 0, name)
        }
    }

    /// The admission marker opening job `job`'s lifecycle span.
    pub fn job_begin(time: u64, job: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::JobBegin,
            job: Some(job),
            ..TraceEvent::span(TrackId::Scheduler, time, 0, "job")
        }
    }

    /// The disposition marker closing job `job`'s lifecycle span.
    pub fn job_end(time: u64, job: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::JobEnd,
            job: Some(job),
            ..TraceEvent::span(TrackId::Scheduler, time, 0, "job")
        }
    }

    /// Attach the job id.
    pub fn with_job(mut self, job: u64) -> TraceEvent {
        self.job = Some(job);
        self
    }

    /// Attach the detail value.
    pub fn with_arg(mut self, arg: u64) -> TraceEvent {
        self.arg = Some(arg);
        self
    }

    /// The `(time, seq)` ordering key.
    pub fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// A consumer of simulation trace events.
///
/// `record` takes `&self` (the simulator holds the sink behind a shared
/// reference) and implementations must be `Sync`, so one sink can serve
/// the scoped-thread sweeps elsewhere in the workspace. The simulator
/// itself emits single-threaded, in deterministic order.
pub trait TraceSink: Sync {
    /// Record one event. The sink assigns [`TraceEvent::seq`]; the value
    /// passed in by the emitter is ignored.
    fn record(&self, event: TraceEvent);
}

/// The standard in-memory sink: appends events under a mutex, stamping
/// each with its emission index.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// A copy of the recorded events in emission (`seq`) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Drain the buffer, returning the events in emission order.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace buffer poisoned"))
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for TraceBuffer {
    fn record(&self, mut event: TraceEvent) {
        let mut events = self.events.lock().expect("trace buffer poisoned");
        event.seq = events.len() as u64;
        events.push(event);
    }
}

/// Sort `events` into the canonical `(time, seq)` order every exporter
/// renders in. The sort is stable and total (no two events share a
/// `seq`), so the result is unique.
pub fn canonical_order(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut sorted = events.to_vec();
    sorted.sort_by_key(TraceEvent::key);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_assigns_emission_order() {
        let buffer = TraceBuffer::new();
        assert!(buffer.is_empty());
        buffer.record(TraceEvent::span(TrackId::Fabric, 500, 10, "fine"));
        buffer.record(TraceEvent::instant(TrackId::Scheduler, 100, "arrive"));
        let events = buffer.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].seq, events[1].seq), (0, 1));
        // Canonical order is by (time, seq), not emission order.
        let sorted = canonical_order(&events);
        assert_eq!(sorted[0].name, "arrive");
        assert_eq!(buffer.take().len(), 2);
        assert!(buffer.is_empty());
    }

    #[test]
    fn track_ordering_and_labels() {
        let mut tracks = vec![
            TrackId::Region(0),
            TrackId::CgcSlot(1),
            TrackId::Fabric,
            TrackId::CgcSlot(0),
            TrackId::Scheduler,
        ];
        tracks.sort();
        assert_eq!(
            tracks,
            vec![
                TrackId::Scheduler,
                TrackId::Fabric,
                TrackId::CgcSlot(0),
                TrackId::CgcSlot(1),
                TrackId::Region(0),
            ]
        );
        assert_eq!(TrackId::CgcSlot(3).label(), "cgc3");
        assert_eq!(TrackId::Region(1).label(), "region1");
    }

    #[test]
    fn builders_fill_the_expected_fields() {
        let e = TraceEvent::span(TrackId::Fabric, 10, 5, "fine")
            .with_job(3)
            .with_arg(1);
        assert_eq!((e.time, e.dur, e.job, e.arg), (10, 5, Some(3), Some(1)));
        assert_eq!(e.kind, EventKind::Span);
        let b = TraceEvent::job_begin(4, 9);
        assert_eq!((b.kind, b.job), (EventKind::JobBegin, Some(9)));
        let end = TraceEvent::job_end(8, 9);
        assert_eq!((end.kind, end.dur), (EventKind::JobEnd, 0));
    }

    #[test]
    fn sinks_are_shareable() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<TraceBuffer>();
        let buffer = TraceBuffer::new();
        let sink: &dyn TraceSink = &buffer;
        sink.record(TraceEvent::instant(TrackId::Scheduler, 0, "arrive"));
        assert_eq!(buffer.len(), 1);
    }
}
