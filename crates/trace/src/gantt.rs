//! Per-resource gantt view of a trace, in the `coarsegrain::gantt`
//! idiom: one fixed-width ASCII row per resource, time bucketed into
//! equal columns, `.` for idle.
//!
//! Span cells show the uppercased initial of the span name (`L`oad,
//! `F`ine, `C`oarse, `B`ackoff, `D`own, `F`allback); fault instants
//! overlay a `!`. Scheduler-track bookkeeping (arrivals, dispositions)
//! is omitted — this is the *resource* view.

use crate::{canonical_order, EventKind, TraceEvent, TrackId};
use std::fmt::Write as _;

/// Render the resource rows of `events` bucketed into at most `width`
/// columns. Returns a fully deterministic multi-line string ending in a
/// newline; an empty or scheduler-only trace renders a one-line notice.
pub fn resource_gantt(events: &[TraceEvent], width: usize) -> String {
    let width = width.max(1);
    let sorted = canonical_order(events);
    let mut tracks: Vec<TrackId> = sorted
        .iter()
        .map(|e| e.track)
        .filter(|t| *t != TrackId::Scheduler)
        .collect();
    tracks.sort();
    tracks.dedup();
    if tracks.is_empty() {
        return "resource gantt: no resource events\n".to_owned();
    }
    let end = sorted
        .iter()
        .map(|e| e.time + e.dur)
        .max()
        .unwrap_or(0)
        .max(1);
    let per_col = end.div_ceil(width as u64).max(1);
    let cols = end.div_ceil(per_col) as usize;

    let mut rows: Vec<Vec<char>> = vec![vec!['.'; cols]; tracks.len()];
    let row_of = |track: TrackId| -> Option<usize> { tracks.binary_search(&track).ok() };
    for e in &sorted {
        let Some(row) = row_of(e.track) else { continue };
        match e.kind {
            EventKind::Span => {
                let mark = e
                    .name
                    .chars()
                    .next()
                    .map_or('#', |c| c.to_ascii_uppercase());
                let first = (e.time / per_col) as usize;
                let last = ((e.time + e.dur.max(1) - 1) / per_col) as usize;
                for cell in &mut rows[row][first..=last.min(cols - 1)] {
                    *cell = mark;
                }
            }
            EventKind::Instant if e.name.starts_with("fault") => {
                let col = ((e.time / per_col) as usize).min(cols - 1);
                rows[row][col] = '!';
            }
            _ => {}
        }
    }

    let label_width = tracks
        .iter()
        .map(|t| t.label().len())
        .max()
        .unwrap_or(0)
        .max("site\\cycle".len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "resource gantt: 1 column = {per_col} cycles, end = {end}"
    );
    let _ = writeln!(out, "{:<label_width$} |", "site\\cycle");
    for (track, row) in tracks.iter().zip(&rows) {
        let cells: String = row.iter().collect();
        let _ = writeln!(out, "{:<label_width$} |{cells}|", track.label());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_resources_and_mark_faults() {
        let events = vec![
            TraceEvent::span(TrackId::Fabric, 0, 50, "load"),
            TraceEvent::span(TrackId::Fabric, 50, 50, "fine"),
            TraceEvent::span(TrackId::CgcSlot(0), 100, 100, "coarse"),
            TraceEvent::instant(TrackId::Fabric, 80, "fault_fabric"),
            TraceEvent::instant(TrackId::Scheduler, 0, "arrive"),
        ];
        let gantt = resource_gantt(&events, 20);
        assert_eq!(resource_gantt(&events, 20), gantt, "deterministic");
        let lines: Vec<&str> = gantt.lines().collect();
        assert!(lines[0].contains("1 column = 10 cycles"));
        let fabric = lines.iter().find(|l| l.starts_with("fabric")).unwrap();
        assert!(fabric.contains('L') && fabric.contains('F') && fabric.contains('!'));
        let cgc = lines.iter().find(|l| l.starts_with("cgc0")).unwrap();
        assert!(cgc.contains('C') && cgc.contains('.'));
        assert!(!gantt.contains("scheduler"), "scheduler track is omitted");
    }

    #[test]
    fn empty_trace_renders_a_notice() {
        assert_eq!(
            resource_gantt(&[], 40),
            "resource gantt: no resource events\n"
        );
    }
}
