//! Regenerates **Table 2** of the paper ("OFDM partitioning results for
//! timing constraint of 60000 clock cycles") and benchmarks one full
//! partitioning-engine run per platform configuration.

use amdrel_apps::paper;
use amdrel_bench::ofdm_prepared;
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{format_paper_table, run_grid, PartitioningEngine, Platform};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let app = ofdm_prepared();
    let base = Platform::paper(1500, 2);

    let grid = run_grid(
        "OFDM transmitter",
        &app.program.cdfg,
        &app.analysis,
        &base,
        &[1500, 5000],
        &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        paper::OFDM_CONSTRAINT,
    )
    .expect("grid runs");

    println!("\n================ Table 2 reproduction ================");
    println!("{}", format_paper_table(&grid));
    println!("paper Table 2:");
    for r in &paper::OFDM_TABLE2 {
        println!(
            "  A={:<5} {} 2x2 CGCs: initial {:>7}  CGC {:>6}  BBs {:?}  final {:>6}  {:>4.1}%",
            r.area,
            r.cgcs,
            r.initial_cycles,
            r.cycles_in_cgc,
            r.moved_bbs,
            r.final_cycles,
            r.reduction_percent
        );
    }
    println!("======================================================\n");

    let mut group = c.benchmark_group("table2_engine");
    for (area, cgcs) in [(1500u64, 2usize), (1500, 3), (5000, 2), (5000, 3)] {
        let platform = Platform::paper(area, cgcs);
        group.bench_function(format!("a{area}_cgc{cgcs}"), |b| {
            b.iter(|| {
                PartitioningEngine::new(
                    black_box(&app.program.cdfg),
                    black_box(&app.analysis),
                    &platform,
                )
                .run(paper::OFDM_CONSTRAINT)
                .expect("engine runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
