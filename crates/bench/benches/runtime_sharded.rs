//! Sharded parallel timelines: the 32-tenant scaling population split
//! across independent platform replicas via `Simulation::shards`.
//! Prints a shard-count sweep once — the threaded wall-clock rate plus
//! the scheduler-independent aggregate rate (each shard's subsequence
//! timed serially through the plain engine, rates summed), which is
//! what the committed BENCH row gates — then times the threaded runs.
//!
//! Also asserts, every run, that the merge is deterministic: the k=8
//! report replays bit-for-bit and its work-conservation counters match
//! the single-shard oracle.

use amdrel_bench::synthetic_tenants;
use amdrel_core::Platform;
use amdrel_runtime::{shard_of, Fcfs, Simulation, SketchMode, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const JOBS: usize = 100_000;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_runtime_sharded(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let tenants = synthetic_tenants(32);
    let sim = Simulation::new(&platform)
        .profiles(&tenants)
        .policy(&Fcfs)
        .sketch_mode(SketchMode::Sketched);
    let spec = WorkloadSpec::uniform(42, JOBS, &tenants, 90);
    let jobs = spec.generate(&tenants);

    let oracle = sim.run(&jobs);
    let replay = sim.shards(8).run(&jobs);
    assert_eq!(
        replay,
        sim.shards(8).run(&jobs),
        "sharded replay must be bit-identical"
    );
    assert_eq!(replay.arrived(), oracle.arrived());
    assert_eq!(replay.completed(), oracle.completed());
    assert_eq!(replay.rejected(), oracle.rejected());
    assert_eq!(
        replay.fpga_busy_cycles + replay.cgc_busy_cycles,
        oracle.fpga_busy_cycles + oracle.cgc_busy_cycles,
        "work conservation across replicas"
    );

    println!(
        "\n========== Runtime sharding (32 synthetic tenants, 90% load, {JOBS} jobs) =========="
    );
    for k in SHARD_COUNTS {
        let start = Instant::now();
        let report = sim.shards(k).run(&jobs);
        let threaded = report.completed() as f64 / start.elapsed().as_secs_f64();
        // The scheduler-independent figure: time each shard's
        // subsequence serially through the plain engine and sum the
        // rates. On an unloaded k-core box the threaded rate approaches
        // this; on a saturated one it cannot exceed it.
        let mut aggregate = 0.0;
        for shard in 0..k {
            let subset: Vec<_> = jobs
                .iter()
                .copied()
                .filter(|job| shard_of(job.app, k) == shard)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let start = Instant::now();
            let part = sim.run(&subset);
            aggregate += part.completed() as f64 / start.elapsed().as_secs_f64();
        }
        println!(
            "{k:>2} shards  {threaded:>10.0} jobs/sec threaded  {aggregate:>10.0} jobs/sec aggregate  completed {}",
            report.completed(),
        );
    }
    println!(
        "====================================================================================\n"
    );

    for k in SHARD_COUNTS {
        c.bench_function(format!("runtime/sharded_{k}_shards").as_str(), |b| {
            b.iter(|| black_box(sim.shards(k).run(&jobs)))
        });
    }
}

criterion_group!(benches, bench_runtime_sharded);
criterion_main!(benches);
