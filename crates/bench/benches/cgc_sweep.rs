//! Figure-style sweep: **CGC count and geometry vs. coarse-grain cycles**.
//! Extends the paper's {two, three} × 2×2 configurations with more
//! instances and larger arrays, showing where kernels stop scaling
//! (dependency-limited vs. resource-limited).

use amdrel_bench::{jpeg_small_prepared, ofdm_prepared, Prepared};
use amdrel_coarsegrain::{CdfgCoarseGrainMapping, CgcDatapath, CgcGeometry, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn kernel_cgc_cycles(app: &Prepared, dp: &CgcDatapath) -> u64 {
    let exec_freq: Vec<u64> = app.analysis.blocks().iter().map(|b| b.exec_freq).collect();
    let map = CdfgCoarseGrainMapping::map(&app.program.cdfg, dp, &SchedulerConfig::default())
        .expect("maps");
    let kernels = app.analysis.kernels();
    map.t_coarse(&exec_freq, |i| {
        kernels.contains(&amdrel_cdfg::BlockId(i as u32))
    })
}

fn bench_cgc_sweep(c: &mut Criterion) {
    let apps = [ofdm_prepared(), jpeg_small_prepared()];
    let configs: Vec<(String, CgcDatapath)> = [1usize, 2, 3, 4, 6]
        .iter()
        .map(|&k| {
            (
                format!("{k}x 2x2"),
                CgcDatapath::uniform(k, CgcGeometry::TWO_BY_TWO),
            )
        })
        .chain([
            (
                "1x 3x3".to_owned(),
                CgcDatapath::uniform(1, CgcGeometry::new(3, 3)),
            ),
            (
                "2x 3x3".to_owned(),
                CgcDatapath::uniform(2, CgcGeometry::new(3, 3)),
            ),
            (
                "1x 4x4".to_owned(),
                CgcDatapath::uniform(1, CgcGeometry::new(4, 4)),
            ),
        ])
        .collect();

    println!("\n========== CGC sweep: kernel cycles in CGC ==========");
    print!("{:<12}", "datapath");
    for app in &apps {
        print!(" {:>26}", app.name);
    }
    println!();
    for (label, dp) in &configs {
        print!("{label:<12}");
        for app in &apps {
            print!(" {:>26}", kernel_cgc_cycles(app, dp));
        }
        println!();
    }
    println!("======================================================\n");

    let mut group = c.benchmark_group("cgc_sweep_mapping");
    for (label, dp) in configs
        .iter()
        .filter(|(l, _)| l == "2x 2x2" || l == "1x 4x4")
    {
        group.bench_function(label.replace(' ', "_"), |b| {
            b.iter(|| {
                CdfgCoarseGrainMapping::map(
                    black_box(&apps[0].program.cdfg),
                    dp,
                    &SchedulerConfig::default(),
                )
                .expect("maps")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cgc_sweep);
criterion_main!(benches);
