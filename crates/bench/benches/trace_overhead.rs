//! Observer-effect guard and tracing overhead: the seeded 3-app
//! standard mix played under `affinity` with no sink, with a live
//! [`TraceBuffer`](amdrel_trace::TraceBuffer), and with faults injected
//! while traced. The run-once preamble is the hard check — the traced
//! report (and its JSON rendering) must equal the untraced one
//! byte-for-byte, and the trace itself must replay bit-identically —
//! then Criterion prices the sink on the hot loop. Emitting events is
//! a few pushes into a `Vec` per job, so traced throughput staying
//! within 2× of untraced is the budget CI holds this to.

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_runtime::{policy_by_name, report_to_json, FaultSpec, Simulation, WorkloadSpec};
use amdrel_trace::{chrome_trace, TraceBuffer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).expect("standard mix builds");
    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    let jobs = spec.generate(&profiles);
    let policy = policy_by_name("affinity").expect("built-in policy");
    let sim = Simulation::new(&platform)
        .profiles(&profiles)
        .policy(policy.as_ref());

    // Observer-effect guard: the sink must not change a single byte of
    // the deterministic report, and the trace must replay bit-for-bit.
    let untraced = sim.run(&jobs);
    let buffer = TraceBuffer::new();
    let traced = sim.trace(&buffer).run(&jobs);
    assert_eq!(untraced, traced, "attaching a sink changed the outcome");
    assert_eq!(report_to_json(&untraced), report_to_json(&traced));
    let replay = TraceBuffer::new();
    let _ = sim.trace(&replay).run(&jobs);
    assert_eq!(buffer.events(), replay.events(), "trace replay diverged");

    let events = buffer.events();
    println!(
        "\n========== Trace overhead (affinity, {} jobs) ==========",
        jobs.len()
    );
    println!(
        "{} events recorded, {} bytes of Chrome JSON, report unchanged",
        events.len(),
        chrome_trace(&events).len()
    );
    println!("========================================================\n");

    c.bench_function("trace/untraced_400_jobs", |b| {
        b.iter(|| black_box(sim.run(&jobs)))
    });
    c.bench_function("trace/traced_400_jobs", |b| {
        b.iter(|| {
            let sink = TraceBuffer::new();
            let report = sim.trace(&sink).run(&jobs);
            black_box((report, sink.events().len()))
        })
    });
    let faulted = sim.faults(FaultSpec::uniform(7, 30));
    c.bench_function("trace/traced_faulted_400_jobs", |b| {
        b.iter(|| {
            let sink = TraceBuffer::new();
            let report = faulted.trace(&sink).run(&jobs);
            black_box((report, sink.events().len()))
        })
    });
    c.bench_function("trace/chrome_export", |b| {
        b.iter(|| black_box(chrome_trace(black_box(&events)).len()))
    });
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
