//! Ablation: **CGC operation chaining**. The defining feature of the CGC
//! datapath ([6]) is that dependent word-level operations chain through
//! the steering logic within one `T_CGC` cycle (multiply-add in one
//! cycle). Disabling chaining makes every operation take a full cycle —
//! how much of the coarse-grain speed comes from chaining?

use amdrel_bench::{jpeg_small_prepared, ofdm_prepared, Prepared};
use amdrel_coarsegrain::{CdfgCoarseGrainMapping, CgcDatapath, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn coarse_cycles(app: &Prepared, dp: &CgcDatapath, cfg: &SchedulerConfig) -> u64 {
    let exec_freq: Vec<u64> = app.analysis.blocks().iter().map(|b| b.exec_freq).collect();
    let map = CdfgCoarseGrainMapping::map(&app.program.cdfg, dp, cfg).expect("maps");
    let kernels = app.analysis.kernels();
    map.t_coarse(&exec_freq, |i| {
        kernels.contains(&amdrel_cdfg::BlockId(i as u32))
    })
}

fn bench_chaining(c: &mut Criterion) {
    let apps = [ofdm_prepared(), jpeg_small_prepared()];
    let on = SchedulerConfig {
        chaining: true,
        ..SchedulerConfig::default()
    };
    let off = SchedulerConfig {
        chaining: false,
        ..SchedulerConfig::default()
    };

    println!("\n========== Ablation: CGC chaining ==========");
    println!(
        "{:<28} {:>12} {:>14} {:>14} {:>8}",
        "app", "datapath", "CGC cyc (on)", "CGC cyc (off)", "speedup"
    );
    for app in &apps {
        for dp in [CgcDatapath::two_2x2(), CgcDatapath::three_2x2()] {
            let with = coarse_cycles(app, &dp, &on);
            let without = coarse_cycles(app, &dp, &off);
            println!(
                "{:<28} {:>12} {:>14} {:>14} {:>7.2}x",
                app.name,
                dp.describe().replace(" CGCs", ""),
                with,
                without,
                without as f64 / with.max(1) as f64
            );
        }
    }
    println!("=============================================\n");

    let mut group = c.benchmark_group("ablation_chaining");
    let dp = CgcDatapath::two_2x2();
    for (label, cfg) in [("chaining_on", on), ("chaining_off", off)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                CdfgCoarseGrainMapping::map(black_box(&apps[0].program.cdfg), &dp, &cfg)
                    .expect("maps")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaining);
criterion_main!(benches);
