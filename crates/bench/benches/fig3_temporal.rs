//! Scaling study of the **Figure 3** temporal partitioning algorithm on
//! synthetic DFGs of growing size, at both of the paper's device areas.
//! Also prints the partition counts, the quantity the paper's Figure 3
//! algorithm exists to control.

use amdrel_cdfg::synth::{random_dfg, SynthConfig};
use amdrel_finegrain::{temporal_partition, FpgaDevice};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_temporal(c: &mut Criterion) {
    println!("\n========== Figure 3 algorithm: partition counts ==========");
    println!("{:>8} {:>12} {:>12}", "nodes", "parts@1500", "parts@5000");
    for &nodes in &[32usize, 128, 512, 2048] {
        let dfg = random_dfg(
            7,
            &SynthConfig {
                nodes,
                ..SynthConfig::default()
            },
        );
        let p1500 = temporal_partition(&dfg, &FpgaDevice::new(1500)).expect("maps");
        let p5000 = temporal_partition(&dfg, &FpgaDevice::new(5000)).expect("maps");
        println!("{:>8} {:>12} {:>12}", nodes, p1500.len(), p5000.len());
    }
    println!("===========================================================\n");

    let mut group = c.benchmark_group("fig3_temporal_partitioning");
    for &nodes in &[32usize, 128, 512, 2048] {
        let dfg = random_dfg(
            7,
            &SynthConfig {
                nodes,
                ..SynthConfig::default()
            },
        );
        for &area in &[1500u64, 5000] {
            let device = FpgaDevice::new(area);
            group.bench_with_input(
                BenchmarkId::new(format!("a{area}"), nodes),
                &nodes,
                |b, _| b.iter(|| temporal_partition(black_box(&dfg), &device).expect("maps")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_temporal);
criterion_main!(benches);
