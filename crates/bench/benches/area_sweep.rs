//! Figure-style sweep: **FPGA area vs. cycles**. Extends the paper's two
//! area points (1500/5000) into a curve and locates the crossover where
//! the all-FPGA mapping meets the timing constraint on its own (the flow
//! exits at step 2 and no partitioning is needed).

use amdrel_apps::paper;
use amdrel_bench::ofdm_prepared;
use amdrel_core::{PartitioningEngine, Platform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const AREAS: [u64; 8] = [1200, 1500, 2500, 5000, 10_000, 20_000, 40_000, 80_000];

fn bench_area_sweep(c: &mut Criterion) {
    let app = ofdm_prepared();

    println!("\n========== Area sweep (OFDM, three 2x2 CGCs, constraint 60000) ==========");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>18}",
        "A_FPGA", "initial", "final", "moves", "met w/o partition?"
    );
    for area in AREAS {
        let platform = Platform::paper(area, 3);
        let r = PartitioningEngine::new(&app.program.cdfg, &app.analysis, &platform)
            .run(paper::OFDM_CONSTRAINT)
            .expect("engine runs");
        println!(
            "{:>8} {:>12} {:>12} {:>8} {:>18}",
            area,
            r.initial_cycles,
            r.final_cycles(),
            r.moves.len(),
            if r.met_without_partitioning {
                "yes (step-2 exit)"
            } else {
                "no"
            },
        );
    }
    println!("==========================================================================\n");

    let mut group = c.benchmark_group("area_sweep_engine");
    for area in [1500u64, 5000, 20_000] {
        let platform = Platform::paper(area, 3);
        group.bench_with_input(BenchmarkId::from_parameter(area), &area, |b, _| {
            b.iter(|| {
                PartitioningEngine::new(
                    black_box(&app.program.cdfg),
                    black_box(&app.analysis),
                    &platform,
                )
                .run(paper::OFDM_CONSTRAINT)
                .expect("engine runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_area_sweep);
criterion_main!(benches);
