//! Engine-loop scaling: cost of the kernel-movement loop as the
//! application grows. The engine precomputes per-block cost vectors and
//! updates running sums, so the per-move cost must stay flat (O(1))
//! instead of growing with the block count — this bench prints the
//! measured ns/move across app sizes so regressions to an O(n)-per-move
//! loop are visible as superlinear growth.
//!
//! Mappings are served from a pre-warmed [`MappingCache`] so the timed
//! region is the engine loop itself, not the fabric mappers.

use amdrel_bench::synthetic_app;
use amdrel_core::{MappingCache, PartitioningEngine, Platform};
use amdrel_profiler::{AnalysisReport, WeightTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [8, 32, 128, 512];

fn bench_engine_scaling(c: &mut Criterion) {
    println!("\n========== Engine move-loop scaling (impossible constraint: all kernels move) ==========");
    println!(
        "{:>8} {:>8} {:>14} {:>12}",
        "blocks", "moves", "ns/run", "ns/move"
    );

    let mut group = c.benchmark_group("engine_scaling");
    for blocks in SIZES {
        let (cdfg, freqs) = synthetic_app(blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let platform = Platform::paper(2000, 2);
        let cache = MappingCache::new();

        // Warm the cache so the timed region is the engine loop, not the
        // fabric mappers.
        let warm = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .with_mapping_cache(&cache)
            .run(1)
            .expect("engine runs");
        let moves = warm.moves.len().max(1) as u128;

        // Hand-rolled per-move report (the criterion stand-in reports
        // whole-run means only).
        let iters: u128 = 64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(
                PartitioningEngine::new(&cdfg, &analysis, &platform)
                    .with_mapping_cache(&cache)
                    .run(1)
                    .expect("engine runs"),
            );
        }
        let per_run = start.elapsed().as_nanos() / iters;
        println!(
            "{:>8} {:>8} {:>14} {:>12}",
            blocks,
            warm.moves.len(),
            per_run,
            per_run / moves
        );

        group.bench_function(BenchmarkId::from_parameter(blocks), |b| {
            b.iter(|| {
                PartitioningEngine::new(black_box(&cdfg), black_box(&analysis), &platform)
                    .with_mapping_cache(&cache)
                    .run(1)
                    .expect("engine runs")
            })
        });
    }
    group.finish();
    println!("=========================================================================================\n");
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
