//! The second reproduction path: drive the partitioning engine with the
//! paper's **own Table 1 profiles** (synthesised CDFGs whose blocks carry
//! exactly the published `exec_freq`/`bb_weight` pairs), removing our
//! frontend and applications from the loop. Regenerates Tables 2/3 rows
//! from the authors' measurements.

use amdrel_apps::paper::{
    synthesize_profile, JPEG_CONSTRAINT, JPEG_TABLE1, OFDM_CONSTRAINT, OFDM_TABLE1,
};
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{format_paper_table, run_grid, PartitioningEngine, Platform};
use amdrel_profiler::{AnalysisReport, WeightTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_paper_profile(c: &mut Criterion) {
    // 18 BBs for OFDM (paper §4) — but Table 1 names BBs up to 42, so the
    // synthetic CDFG is sized to the largest listed id; extra blocks are
    // light glue. Same for JPEG (22 BBs, ids up to 22).
    let ofdm = synthesize_profile(&OFDM_TABLE1, 44);
    let jpeg = synthesize_profile(&JPEG_TABLE1, 24);
    let table = WeightTable::paper();

    println!("\n====== Paper-profile reproduction (engine driven by the authors' Table 1) ======");
    for (name, profile, constraint) in [
        ("OFDM (paper profile)", &ofdm, OFDM_CONSTRAINT),
        ("JPEG (paper profile)", &jpeg, JPEG_CONSTRAINT),
    ] {
        let analysis = AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &table);
        let grid = run_grid(
            name,
            &profile.cdfg,
            &analysis,
            &Platform::paper(1500, 2),
            &[1500, 5000],
            &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
            constraint,
        )
        .expect("grid runs");
        println!("{}", format_paper_table(&grid));
    }
    println!("=================================================================================\n");

    let analysis = AnalysisReport::analyze(&ofdm.cdfg, &ofdm.exec_freq, &table);
    let platform = Platform::paper(1500, 3);
    c.bench_function("paper_profile_ofdm_engine", |b| {
        b.iter(|| {
            PartitioningEngine::new(black_box(&ofdm.cdfg), black_box(&analysis), &platform)
                .run(OFDM_CONSTRAINT)
                .expect("engine runs")
        })
    });
}

criterion_group!(benches, bench_paper_profile);
criterion_main!(benches);
