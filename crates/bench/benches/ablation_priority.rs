//! Ablation: **list-scheduler priority function**. The paper only says "a
//! proper list-based scheduler has been developed"; this bench compares
//! longest-path, least-mobility and FIFO priorities on the applications'
//! kernel DFGs and on synthetic graphs.

use amdrel_bench::{jpeg_small_prepared, ofdm_prepared, Prepared};
use amdrel_cdfg::synth::{random_dfg, SynthConfig};
use amdrel_coarsegrain::{schedule_dfg, CgcDatapath, Priority, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn kernel_cycles(app: &Prepared, priority: Priority) -> u64 {
    let cfg = SchedulerConfig {
        chaining: true,
        priority,
    };
    let dp = CgcDatapath::two_2x2();
    app.analysis
        .kernels()
        .iter()
        .map(|&k| {
            let dfg = &app.program.cdfg.block(k).dfg;
            let freq = app.analysis.block(k).exec_freq;
            schedule_dfg(dfg, &dp, &cfg).expect("schedules").length() * freq
        })
        .sum()
}

fn bench_priority(c: &mut Criterion) {
    let apps = [ofdm_prepared(), jpeg_small_prepared()];

    println!("\n========== Ablation: scheduler priority (kernel CGC cycles, two 2x2) ==========");
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "app", "LongestPath", "Mobility", "Fifo"
    );
    for app in &apps {
        println!(
            "{:<28} {:>14} {:>14} {:>14}",
            app.name,
            kernel_cycles(app, Priority::LongestPath),
            kernel_cycles(app, Priority::Mobility),
            kernel_cycles(app, Priority::Fifo),
        );
    }
    println!("===============================================================================\n");

    let mut group = c.benchmark_group("ablation_priority");
    let dfg = random_dfg(
        11,
        &SynthConfig {
            nodes: 200,
            ..SynthConfig::default()
        },
    );
    let dp = CgcDatapath::two_2x2();
    for priority in [Priority::LongestPath, Priority::Mobility, Priority::Fifo] {
        let cfg = SchedulerConfig {
            chaining: true,
            priority,
        };
        group.bench_function(format!("{priority:?}"), |b| {
            b.iter(|| schedule_dfg(black_box(&dfg), &dp, &cfg).expect("schedules"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_priority);
criterion_main!(benches);
