//! Design-space exploration strategies head to head on the OFDM
//! transmitter: exhaustive grid vs seeded random sampling vs simulated
//! annealing, over the standard case-study space (6 areas × 4 datapaths ×
//! 9 kernel budgets = 216 points, 24 cells). Prints each strategy's
//! effort counters and frontier once, then times one exploration per
//! strategy (cold evaluator, shared warm mapping cache — the steady state
//! of a sweep service).

use amdrel_apps::ofdm;
use amdrel_bench::ofdm_prepared;
use amdrel_core::{EnergyModel, MappingCache, Platform};
use amdrel_explore::{
    explore, Evaluator, Exhaustive, ExploreConfig, RandomSampling, SearchStrategy,
    SimulatedAnnealing,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_explore_strategies(c: &mut Criterion) {
    let app = ofdm_prepared();
    let base = Platform::paper(1500, 2);
    let space = ofdm::design_space();
    let config = ExploreConfig {
        seed: 42,
        eval_budget: 64,
        jobs: 0,
    };
    let strategies: [&dyn SearchStrategy; 3] =
        [&Exhaustive, &RandomSampling, &SimulatedAnnealing::default()];

    println!(
        "\n========== Explore strategies (OFDM profile, {} points / {} cells) ==========",
        space.len(),
        space.cells()
    );
    for strategy in strategies {
        let cache = MappingCache::new();
        let eval = Evaluator::new(
            &app.name,
            &app.program.cdfg,
            &app.analysis,
            &base,
            EnergyModel::default(),
            &cache,
        );
        let report = explore(&eval, &space, strategy, &config).expect("exploration runs");
        println!(
            "{:<11} {:>4} points evaluated, {:>3} engine runs -> frontier of {}",
            report.strategy,
            report.stats.points_evaluated,
            report.stats.engine_runs,
            report.frontier.len()
        );
    }
    println!("==============================================================================\n");

    // Timed runs share one warm mapping cache per strategy (fabric
    // mappings are application-level and reused across explorations);
    // each iteration still pays its own engine runs on a cold evaluator.
    for strategy in strategies {
        let cache = MappingCache::new();
        c.bench_function(format!("explore/{}", strategy.name()).as_str(), |b| {
            b.iter(|| {
                let eval = Evaluator::new(
                    &app.name,
                    &app.program.cdfg,
                    &app.analysis,
                    &base,
                    EnergyModel::default(),
                    &cache,
                );
                black_box(explore(&eval, &space, strategy, &config).expect("exploration runs"))
            })
        });
    }
}

criterion_group!(benches, bench_explore_strategies);
criterion_main!(benches);
