//! Contention-aware co-exploration on the OFDM transmitter: the static
//! `(cycles, area, energy)` exhaustive frontier next to the 4-objective
//! `(cycles, area, energy, p95)` frontier scored by simulating the
//! seeded standard mix on every candidate platform. Prints both
//! frontiers and the platform points only the contention-aware search
//! surfaces (the committed `BENCH_explore_contention.json` baseline),
//! then times one static and one contention-aware exhaustive
//! exploration (cold evaluator, shared warm mapping cache).

use amdrel_apps::{ofdm, runtime as apps_runtime};
use amdrel_bench::ofdm_prepared;
use amdrel_core::{EnergyModel, MappingCache, Platform};
use amdrel_explore::{explore, Evaluator, Exhaustive, ExploreConfig, ObjectiveSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_explore_contention(c: &mut Criterion) {
    let app = ofdm_prepared();
    let base = Platform::paper(1500, 2);
    let space = ofdm::design_space();
    let config = ExploreConfig::default();
    let contention =
        apps_runtime::contention_evaluator("ofdm", &base).expect("background tenants profile");
    let objectives = ObjectiveSet::parse("cycles,area,energy,p95").expect("valid objectives");

    let cache = MappingCache::new();
    let static_eval = Evaluator::new(
        &app.name,
        &app.program.cdfg,
        &app.analysis,
        &base,
        EnergyModel::default(),
        &cache,
    );
    let static_report =
        explore(&static_eval, &space, &Exhaustive, &config).expect("static exploration");
    let contention_eval = Evaluator::new(
        &app.name,
        &app.program.cdfg,
        &app.analysis,
        &base,
        EnergyModel::default(),
        &cache,
    )
    .with_objectives(objectives.clone())
    .with_runtime(&contention);
    let contention_report =
        explore(&contention_eval, &space, &Exhaustive, &config).expect("contention exploration");

    let static_points: BTreeSet<_> = static_report.frontier.iter().map(|p| p.point).collect();
    let added: Vec<_> = contention_report
        .frontier
        .iter()
        .filter(|p| !static_points.contains(&p.point))
        .collect();
    println!(
        "\n========== Contention-aware co-exploration (OFDM, {} points / {} cells) ==========",
        space.len(),
        space.cells()
    );
    println!("--- static (cycles,area,energy):");
    print!("{}", static_report.format_table());
    println!("--- contention-aware (cycles,area,energy,p95), policy sjf:");
    print!("{}", contention_report.format_table());
    println!(
        "platform points only the contention-aware frontier surfaces: {}",
        added.len()
    );
    for p in &added {
        println!(
            "  A_FPGA {} / {} / {} kernels (p95 {})",
            p.area,
            p.datapath,
            p.kernels_moved,
            p.contention.expect("scored").p95_latency
        );
    }
    println!(
        "==================================================================================\n"
    );

    // Timed: one exhaustive exploration per objective set on a cold
    // evaluator; the mapping cache stays warm (application-level state).
    c.bench_function("explore_contention/static_exhaustive", |b| {
        b.iter(|| {
            let eval = Evaluator::new(
                &app.name,
                &app.program.cdfg,
                &app.analysis,
                &base,
                EnergyModel::default(),
                &cache,
            );
            black_box(explore(&eval, &space, &Exhaustive, &config).expect("exploration runs"))
        })
    });
    c.bench_function("explore_contention/p95_exhaustive", |b| {
        b.iter(|| {
            let eval = Evaluator::new(
                &app.name,
                &app.program.cdfg,
                &app.analysis,
                &base,
                EnergyModel::default(),
                &cache,
            )
            .with_objectives(objectives.clone())
            .with_runtime(&contention);
            black_box(explore(&eval, &space, &Exhaustive, &config).expect("exploration runs"))
        })
    });
}

criterion_group!(benches, bench_explore_contention);
criterion_main!(benches);
