//! Fault-injection overhead and recovery head to head: the seeded
//! 3-app standard mix played under `affinity` with the fault layer off,
//! inert (zero-rate spec threaded through the engine), injecting at
//! 30‰ with abort-on-exhaustion, and injecting at 30‰ with graceful
//! degradation. Prints the reliability summary once, then times one
//! full simulation per configuration — the off/inert pair is the
//! zero-cost-abstraction check (the inert spec must not slow the
//! fault-free hot loop), the abort/degrade pair prices recovery.

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_runtime::{policy_by_name, FaultSpec, RecoveryPolicy, Simulation, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const FAULT_RATE: u16 = 30;

fn bench_runtime_faults(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).expect("standard mix builds");
    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    let jobs = spec.generate(&profiles);
    let policy = policy_by_name("affinity").expect("built-in policy");
    let sim = Simulation::new(&platform)
        .profiles(&profiles)
        .policy(policy.as_ref());

    let abort = RecoveryPolicy::default();
    let degrade = RecoveryPolicy {
        degrade: true,
        ..RecoveryPolicy::default()
    };
    let configs: [(&str, FaultSpec, RecoveryPolicy); 4] = [
        ("off", FaultSpec::none(), abort),
        ("inert", FaultSpec::uniform(7, 0), abort),
        ("abort", FaultSpec::uniform(7, FAULT_RATE), abort),
        ("degrade", FaultSpec::uniform(7, FAULT_RATE), degrade),
    ];

    println!(
        "\n========== Runtime faults (affinity, {} jobs, {FAULT_RATE} permille) ==========",
        jobs.len()
    );
    for (name, faults, recovery) in &configs {
        let report = sim.faults(*faults).recovery(*recovery).run(&jobs);
        let r = &report.reliability;
        println!(
            "{:<8} {:>3} injected  {:>3} retries  {:>3} degraded  {:>3} aborted  \
             avail {:.4}  goodput {:>5.2}/{:>5.2} jobs/Mcycle",
            name,
            r.injected,
            r.retries,
            r.degraded,
            r.aborted,
            report.availability(),
            report.goodput_jobs_per_mcycle(),
            report.throughput_jobs_per_mcycle(),
        );
    }
    println!("===============================================================================\n");

    for (name, faults, recovery) in &configs {
        let run = sim.faults(*faults).recovery(*recovery);
        c.bench_function(format!("runtime/faults_{name}_400_jobs").as_str(), |b| {
            b.iter(|| black_box(run.run(&jobs)))
        });
    }
}

criterion_group!(benches, bench_runtime_faults);
criterion_main!(benches);
