//! Multi-tenant runtime simulation, policy head to head: the seeded
//! 3-app standard mix (OFDM symbols, JPEG encodes, Sobel frames) played
//! against the paper's small platform under each scheduling policy.
//! Prints the latency/throughput/reconfiguration summary once, then
//! times one full simulation per policy (the discrete-event hot loop:
//! ~3 events per job plus queue scans).

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_runtime::{policy_by_name, Simulation, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const POLICIES: [&str; 4] = ["fcfs", "sjf", "priority", "affinity"];

fn bench_runtime_policies(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).expect("standard mix builds");
    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    let jobs = spec.generate(&profiles);
    let sim = Simulation::new(&platform).profiles(&profiles);

    println!(
        "\n========== Runtime policies (3-app mix, {} jobs at 130% fine-grain load) ==========",
        jobs.len()
    );
    for name in POLICIES {
        let policy = policy_by_name(name).expect("built-in policy");
        let report = sim.policy(policy.as_ref()).run(&jobs);
        println!(
            "{:<9} p50 {:>9} p95 {:>9}  {:>6.2} jobs/Mcycle  stall {:>8} ({:>4.1}%)",
            report.policy,
            report.p50_latency,
            report.p95_latency,
            report.jobs_per_mcycle(),
            report.reconfig_stall_cycles,
            report.stall_share() * 100.0,
        );
    }
    println!(
        "====================================================================================\n"
    );

    for name in POLICIES {
        let policy = policy_by_name(name).expect("built-in policy");
        let run = sim.policy(policy.as_ref());
        c.bench_function(format!("runtime/{name}_400_jobs").as_str(), |b| {
            b.iter(|| black_box(run.run(&jobs)))
        });
    }
}

criterion_group!(benches, bench_runtime_policies);
criterion_main!(benches);
