//! Regenerates **Table 1** of the paper ("Ordered total weights of basic
//! blocks") for both applications and benchmarks the analysis step
//! (static weighting + kernel extraction) that produces it.

use amdrel_apps::paper;
use amdrel_bench::{jpeg_prepared, ofdm_prepared};
use amdrel_profiler::{AnalysisReport, WeightTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let ofdm = ofdm_prepared();
    let jpeg = jpeg_prepared();

    println!("\n================ Table 1 reproduction ================");
    println!(
        "{}",
        ofdm.analysis
            .format_table1("OFDM transmitter (ours, 6 payload symbols)", 8)
    );
    println!("paper (OFDM): bb/freq/weight/total");
    for r in &paper::OFDM_TABLE1 {
        println!(
            "{:<10} {:>12} {:>12} {:>14}",
            r.bb, r.exec_freq, r.ops_weight, r.total_weight
        );
    }
    println!();
    println!(
        "{}",
        jpeg.analysis
            .format_table1("JPEG encoder (ours, 256x256 image)", 8)
    );
    println!("paper (JPEG): bb/freq/weight/total");
    for r in &paper::JPEG_TABLE1 {
        println!(
            "{:<10} {:>12} {:>12} {:>14}",
            r.bb, r.exec_freq, r.ops_weight, r.total_weight
        );
    }
    println!("======================================================\n");

    let mut group = c.benchmark_group("table1_analysis");
    group.bench_function("ofdm_analyze", |b| {
        b.iter(|| {
            AnalysisReport::analyze(
                black_box(&ofdm.program.cdfg),
                black_box(&ofdm.execution.block_counts),
                &WeightTable::paper(),
            )
        })
    });
    group.bench_function("jpeg_analyze", |b| {
        b.iter(|| {
            AnalysisReport::analyze(
                black_box(&jpeg.program.cdfg),
                black_box(&jpeg.execution.block_counts),
                &WeightTable::paper(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
