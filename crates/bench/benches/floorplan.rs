//! Floorplanner throughput plus the region-vs-streamed reconfiguration
//! comparison: place the standard mix's real configuration footprints
//! onto 1/2/4/8-band grids (printing the fragmentation summary once),
//! then time the deterministic placement itself and one full runtime
//! simulation under each reconfiguration model. The 1-region plan is
//! the degenerate scalar path, so the `region_1` / `streamed` pair
//! doubles as a zero-cost-abstraction check.

use amdrel_apps::runtime::standard_mix;
use amdrel_core::Platform;
use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint};
use amdrel_runtime::{policy_by_name, RegionPlan, Simulation, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_floorplan(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let profiles = standard_mix(&platform).expect("standard mix builds");
    let usable = platform.fpga.usable_area();
    let footprints: Vec<Footprint> = profiles
        .iter()
        .enumerate()
        .flat_map(|(app, p)| {
            p.config
                .partition_areas
                .iter()
                .map(move |&area| Footprint::new(app, area))
        })
        .collect();

    println!("\n========== Floorplan (standard mix, usable area {usable}) ==========");
    for regions in [1usize, 2, 4, 8] {
        let grid = FabricGrid::uniform(usable, regions);
        let placement = Floorplanner.place(&grid, &footprints);
        let s = placement.stats();
        println!(
            "{regions} region(s): {:>2} rects placed, {:>2} failures, \
             internal {:>4}‰  external {:>4}‰  worst region {:>4}‰",
            placement.rects().len(),
            s.placement_failures(),
            s.internal_permille(),
            s.external_permille(),
            s.worst_region_permille(),
        );
    }

    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    let jobs = spec.generate(&profiles);
    let policy = policy_by_name("affinity").expect("built-in policy");
    let sim = Simulation::new(&platform)
        .profiles(&profiles)
        .policy(policy.as_ref());
    let streamed = sim.run(&jobs);
    println!(
        "streamed: {:>5} loads, {:>8} stall cycles",
        streamed.reconfig_loads, streamed.reconfig_stall_cycles
    );
    for regions in [1usize, 4] {
        let plan = RegionPlan::new(&profiles, &FabricGrid::uniform(usable, regions));
        let report = sim.regions(&plan).run(&jobs);
        println!(
            "region_{regions}: {:>4} loads, {:>8} stall cycles",
            report.reconfig_loads, report.reconfig_stall_cycles
        );
    }
    println!("====================================================================\n");

    let grid = FabricGrid::uniform(usable, 4);
    c.bench_function("floorplan/place_standard_mix_4_regions", |b| {
        b.iter(|| black_box(Floorplanner.place(&grid, &footprints)))
    });
    c.bench_function("floorplan/region_plan_standard_mix", |b| {
        b.iter(|| black_box(RegionPlan::new(&profiles, &grid)))
    });
    let plan = RegionPlan::new(&profiles, &grid);
    let regioned = sim.regions(&plan);
    c.bench_function("floorplan/simulate_region_400_jobs", |b| {
        b.iter(|| black_box(regioned.run(&jobs)))
    });
    c.bench_function("floorplan/simulate_streamed_400_jobs", |b| {
        b.iter(|| black_box(sim.run(&jobs)))
    });
}

criterion_group!(benches, bench_floorplan);
criterion_main!(benches);
