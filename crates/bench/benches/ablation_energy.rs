//! Ablation: **energy-constrained partitioning** (the paper's future
//! work). Sweeps the energy budget between the all-FPGA ceiling and the
//! all-moved floor and reports the moves needed, plus how the ASIC/LUT
//! per-op energy ratio changes the picture.

use amdrel_bench::ofdm_prepared;
use amdrel_core::{partition_for_energy, EnergyModel, OpEnergyTable, Platform};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_energy(c: &mut Criterion) {
    let app = ofdm_prepared();
    let platform = Platform::paper(1500, 3);
    let model = EnergyModel::default();

    let floor = partition_for_energy(&app.program.cdfg, &app.analysis, &platform, &model, 0)
        .expect("energy engine runs");
    let ceiling = floor.initial.total();
    let floor_e = floor.energy.total();

    println!("\n========== Ablation: energy budgets (OFDM, A=1500, three 2x2) ==========");
    println!(
        "all-FPGA {ceiling} units, floor {floor_e} units ({:.1}% max reduction)",
        floor.reduction_percent()
    );
    println!(
        "{:>12} {:>8} {:>12} {:>6}",
        "budget", "moves", "final", "met"
    );
    for pct in [95u64, 80, 60, 40, 20, 5] {
        let budget = floor_e + (ceiling - floor_e) * pct / 100;
        let r = partition_for_energy(&app.program.cdfg, &app.analysis, &platform, &model, budget)
            .expect("energy engine runs");
        println!(
            "{:>12} {:>8} {:>12} {:>6}",
            budget,
            r.moves.len(),
            r.energy.total(),
            if r.met { "yes" } else { "NO" }
        );
    }

    println!(
        "\nASIC/LUT per-op energy ratio sweep (budget = floor, i.e. move-everything-that-pays):"
    );
    println!(
        "{:>8} {:>12} {:>8} {:>10}",
        "ratio", "final", "moves", "red%"
    );
    for ratio in [1u64, 2, 4, 8, 16] {
        let model = EnergyModel {
            cgc: OpEnergyTable {
                alu: 8 / ratio.min(8),
                mul: 40 / ratio.min(40),
                div: 160 / ratio.min(160),
                mem: 12,
            },
            ..EnergyModel::default()
        };
        let r = partition_for_energy(&app.program.cdfg, &app.analysis, &platform, &model, 0)
            .expect("energy engine runs");
        println!(
            "{:>7}x {:>12} {:>8} {:>9.1}%",
            ratio,
            r.energy.total(),
            r.moves.len(),
            r.reduction_percent()
        );
    }
    println!("==========================================================================\n");

    c.bench_function("energy_engine_ofdm", |b| {
        b.iter(|| {
            partition_for_energy(
                black_box(&app.program.cdfg),
                black_box(&app.analysis),
                &platform,
                &model,
                0,
            )
            .expect("energy engine runs")
        })
    });
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
