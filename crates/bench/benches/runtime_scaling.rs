//! Calendar-queue engine at scale: a 32-tenant synthetic population
//! streamed through the simulator with sketched percentiles, at job
//! counts spanning two orders of magnitude. Prints the throughput
//! summary once (jobs/sec should stay roughly flat as the count grows —
//! the O(1)-per-event scheduler and O(1)-memory latency sketch are what
//! this bench guards), then times the streaming runs.

use amdrel_bench::synthetic_tenants;
use amdrel_core::Platform;
use amdrel_runtime::{Fcfs, Simulation, SketchMode, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

const JOB_COUNTS: [usize; 3] = [4_000, 40_000, 400_000];

fn bench_runtime_scaling(c: &mut Criterion) {
    let platform = Platform::paper(1500, 2);
    let tenants = synthetic_tenants(32);
    let sim = Simulation::new(&platform)
        .profiles(&tenants)
        .policy(&Fcfs)
        .sketch_mode(SketchMode::Sketched);

    println!("\n========== Runtime scaling (32 synthetic tenants, 90% load, sketched) ==========");
    for jobs in JOB_COUNTS {
        let spec = WorkloadSpec::uniform(42, jobs, &tenants, 90);
        let start = Instant::now();
        let report = sim.run_mix(&spec);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>7} jobs  {:>10.0} jobs/sec  p50 {:>9} p95 {:>9}  completed {}",
            jobs,
            report.completed() as f64 / secs,
            report.p50_latency,
            report.p95_latency,
            report.completed(),
        );
    }
    println!("================================================================================\n");

    for jobs in JOB_COUNTS {
        let spec = WorkloadSpec::uniform(42, jobs, &tenants, 90);
        c.bench_function(format!("runtime/scaling_{jobs}_jobs").as_str(), |b| {
            b.iter(|| black_box(sim.run_mix(&spec)))
        });
    }
}

criterion_group!(benches, bench_runtime_scaling);
criterion_main!(benches);
