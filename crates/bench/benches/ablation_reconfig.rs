//! Ablation: **reconfiguration accounting policy**. The paper's eq. (4)
//! charges full reconfiguration on every basic-block execution
//! (`PerExecution`); the `Resident` policy lets single-partition blocks
//! keep their bitstream loaded. How much of the all-FPGA cost — and of
//! the partitioning gain — is reconfiguration traffic?

use amdrel_apps::paper;
use amdrel_bench::{jpeg_small_prepared, ofdm_prepared};
use amdrel_core::{PartitioningEngine, Platform};
use amdrel_finegrain::ReconfigPolicy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_reconfig(c: &mut Criterion) {
    let apps = [
        (ofdm_prepared(), paper::OFDM_CONSTRAINT),
        (jpeg_small_prepared(), paper::JPEG_CONSTRAINT / 16),
    ];

    println!("\n========== Ablation: reconfiguration policy ==========");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "app/policy", "A_FPGA", "initial", "final", "red%"
    );
    for (app, constraint) in &apps {
        for policy in [ReconfigPolicy::PerExecution, ReconfigPolicy::Resident] {
            for area in [1500u64, 5000] {
                let mut platform = Platform::paper(area, 3);
                platform.fpga.reconfig_policy = policy;
                let r = PartitioningEngine::new(&app.program.cdfg, &app.analysis, &platform)
                    .run(*constraint)
                    .expect("engine runs");
                println!(
                    "{:<28} {:>10} {:>12} {:>12} {:>7.1}%",
                    format!("{} {:?}", app.name, policy),
                    area,
                    r.initial_cycles,
                    r.final_cycles(),
                    r.reduction_percent()
                );
            }
        }
    }
    println!("=======================================================\n");

    let mut group = c.benchmark_group("ablation_reconfig");
    let (ofdm, constraint) = &apps[0];
    for policy in [ReconfigPolicy::PerExecution, ReconfigPolicy::Resident] {
        let mut platform = Platform::paper(1500, 3);
        platform.fpga.reconfig_policy = policy;
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                PartitioningEngine::new(
                    black_box(&ofdm.program.cdfg),
                    black_box(&ofdm.analysis),
                    &platform,
                )
                .run(*constraint)
                .expect("engine runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfig);
criterion_main!(benches);
