//! Ablation: **shared-memory communication cost**. Sweeps the
//! cycles-per-word cost of moving kernel live-ins/outs through the shared
//! data memory, with the paper-faithful engine (moves unconditionally)
//! and with the `skip_unprofitable` extension. Shows where moving kernels
//! to the CGC datapath stops paying.

use amdrel_apps::paper;
use amdrel_bench::ofdm_prepared;
use amdrel_core::{CommModel, EngineConfig, PartitioningEngine, Platform};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_comm(c: &mut Criterion) {
    let app = ofdm_prepared();

    println!("\n========== Ablation: communication cost (OFDM, A=1500, three 2x2) ==========");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "cyc/word", "final", "t_comm", "met", "final(skip)", "moves(skip)"
    );
    for cycles_per_word in [0u64, 1, 2, 4, 8, 16, 32] {
        let platform = Platform::paper(1500, 3).with_comm(CommModel {
            cycles_per_word,
            setup_cycles: 2,
        });
        let faithful = PartitioningEngine::new(&app.program.cdfg, &app.analysis, &platform)
            .run(paper::OFDM_CONSTRAINT)
            .expect("engine runs");
        let skipping = PartitioningEngine::new(&app.program.cdfg, &app.analysis, &platform)
            .with_config(EngineConfig {
                skip_unprofitable: true,
            })
            .run(paper::OFDM_CONSTRAINT)
            .expect("engine runs");
        println!(
            "{:>10} {:>12} {:>12} {:>10} {:>12} {:>10}",
            cycles_per_word,
            faithful.final_cycles(),
            faithful.breakdown.t_comm,
            if faithful.met { "yes" } else { "NO" },
            skipping.final_cycles(),
            skipping.moves.len(),
        );
    }
    println!("==============================================================================\n");

    let mut group = c.benchmark_group("ablation_comm");
    for cycles_per_word in [1u64, 8, 32] {
        let platform = Platform::paper(1500, 3).with_comm(CommModel {
            cycles_per_word,
            setup_cycles: 2,
        });
        group.bench_function(format!("cpw{cycles_per_word}"), |b| {
            b.iter(|| {
                PartitioningEngine::new(
                    black_box(&app.program.cdfg),
                    black_box(&app.analysis),
                    &platform,
                )
                .run(paper::OFDM_CONSTRAINT)
                .expect("engine runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comm);
criterion_main!(benches);
