//! Design-space sweep with and without the mapping cache, sequential and
//! parallel. An `A × D` grid needs only `A` fine-grain and `D`
//! coarse-grain mappings; the uncached baseline recomputes both per cell
//! (`A·D` of each), which is what `run_grid` did before the cache landed.

use amdrel_apps::paper;
use amdrel_bench::ofdm_prepared;
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{
    run_grid_cached, run_grid_parallel_cached, GridSpec, MappingCache, PartitioningEngine, Platform,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const AREAS: [u64; 4] = [1200, 1500, 5000, 20_000];

fn datapaths() -> Vec<CgcDatapath> {
    vec![CgcDatapath::two_2x2(), CgcDatapath::three_2x2()]
}

/// The pre-cache behaviour: every cell maps both fabrics privately.
fn sweep_uncached(spec: &GridSpec<'_>) -> usize {
    let mut cells = 0;
    for &area in spec.areas {
        for dp in spec.datapaths {
            let mut platform = spec.base.clone();
            platform.fpga.total_area = area;
            platform.datapath = dp.clone();
            black_box(
                PartitioningEngine::new(spec.cdfg, spec.analysis, &platform)
                    .run(spec.constraint)
                    .expect("engine runs"),
            );
            cells += 1;
        }
    }
    cells
}

fn bench_sweep_cached(c: &mut Criterion) {
    let app = ofdm_prepared();
    let base = Platform::paper(AREAS[0], 2);
    let dps = datapaths();
    let spec = GridSpec {
        app: &app.name,
        cdfg: &app.program.cdfg,
        analysis: &app.analysis,
        base: &base,
        areas: &AREAS,
        datapaths: &dps,
        constraint: paper::OFDM_CONSTRAINT,
    };

    let cache = MappingCache::new();
    let sequential = run_grid_cached(&spec, &cache).expect("grid runs");
    let parallel = run_grid_parallel_cached(&spec, &cache).expect("grid runs");
    assert_eq!(sequential, parallel, "parallel grid must match sequential");
    let stats = cache.stats();
    println!(
        "\n========== Cached sweep (OFDM, {} areas × {} datapaths) ==========",
        AREAS.len(),
        dps.len()
    );
    println!(
        "cells evaluated twice (sequential + parallel): {}; mappings computed: {} fine-grain, {} coarse-grain; cache hits: {}",
        2 * sequential.cells.len(),
        stats.fine_misses,
        stats.coarse_misses,
        stats.hits(),
    );
    println!(
        "uncached baseline would have computed {} fine-grain and {} coarse-grain mappings",
        2 * sequential.cells.len(),
        2 * sequential.cells.len(),
    );
    println!("===================================================================\n");

    c.bench_function("sweep/uncached_per_cell", |b| {
        b.iter(|| sweep_uncached(black_box(&spec)))
    });
    c.bench_function("sweep/run_grid_cached", |b| {
        // A fresh cache per iteration: measures one cold A+D sweep.
        b.iter(|| run_grid_cached(black_box(&spec), &MappingCache::new()).expect("grid runs"))
    });
    c.bench_function("sweep/run_grid_parallel", |b| {
        b.iter(|| {
            run_grid_parallel_cached(black_box(&spec), &MappingCache::new()).expect("grid runs")
        })
    });
    c.bench_function("sweep/run_grid_warm_cache", |b| {
        // Shared warm cache: the steady state of constraint exploration.
        b.iter(|| run_grid_cached(black_box(&spec), &cache).expect("grid runs"))
    });
}

criterion_group!(benches, bench_sweep_cached);
criterion_main!(benches);
