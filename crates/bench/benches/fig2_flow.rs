//! Times every stage of the **Figure 2** methodology flow individually:
//! CDFG creation (frontend), dynamic analysis (interpretation), the
//! combined analysis step, fine-grain mapping, coarse-grain mapping, and
//! the partitioning engine. This is the per-step runtime breakdown of the
//! prototype framework.

use amdrel_apps::{ofdm, paper};
use amdrel_bench::ofdm_prepared;
use amdrel_core::{PartitioningEngine, Platform};
use amdrel_profiler::{AnalysisReport, Interpreter, WeightTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_flow_stages(c: &mut Criterion) {
    let workload = ofdm::workload(2004);
    let app = ofdm_prepared();
    let platform = Platform::paper(1500, 3);

    let mut group = c.benchmark_group("fig2_flow_stages");

    group.bench_function("step1_cdfg_creation", |b| {
        b.iter(|| amdrel_minic::compile(black_box(&workload.source), "main").expect("compiles"))
    });

    let inputs = workload.input_refs();
    group.bench_function("step3_dynamic_analysis", |b| {
        b.iter(|| {
            Interpreter::new(black_box(&app.program.ir))
                .run(&inputs)
                .expect("runs")
        })
    });

    group.bench_function("step3_static_analysis", |b| {
        b.iter(|| {
            AnalysisReport::analyze(
                black_box(&app.program.cdfg),
                black_box(&app.execution.block_counts),
                &WeightTable::paper(),
            )
        })
    });

    group.bench_function("step2_fine_grain_mapping", |b| {
        b.iter(|| {
            amdrel_finegrain::CdfgFineGrainMapping::map(
                black_box(&app.program.cdfg),
                &platform.fpga,
            )
            .expect("maps")
        })
    });

    group.bench_function("step5_coarse_grain_mapping", |b| {
        b.iter(|| {
            amdrel_coarsegrain::CdfgCoarseGrainMapping::map(
                black_box(&app.program.cdfg),
                &platform.datapath,
                &platform.scheduler,
            )
            .expect("maps")
        })
    });

    group.bench_function("step4_partitioning_engine", |b| {
        b.iter(|| {
            PartitioningEngine::new(
                black_box(&app.program.cdfg),
                black_box(&app.analysis),
                &platform,
            )
            .run(paper::OFDM_CONSTRAINT)
            .expect("partitions")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_flow_stages);
criterion_main!(benches);
