//! # amdrel-bench — shared setup for the benchmark harness
//!
//! Each Criterion bench under `benches/` regenerates one table or figure
//! of the paper (printing the rows once) and times the underlying
//! algorithms. This crate hosts the workload setup they share.

#![warn(missing_docs)]

use amdrel_apps::{jpeg, ofdm};
use amdrel_minic::CompiledProgram;
use amdrel_profiler::{AnalysisReport, Execution, Interpreter, WeightTable};

/// A fully analysed application, ready for the partitioning engine.
#[derive(Debug)]
pub struct Prepared {
    /// Application name.
    pub name: String,
    /// Compiled program (IR + CDFG).
    pub program: CompiledProgram,
    /// The profiling run.
    pub execution: Execution,
    /// The combined analysis.
    pub analysis: AnalysisReport,
}

fn prepare(workload: &amdrel_apps::Workload) -> Prepared {
    let program =
        amdrel_minic::compile(&workload.source, "main").expect("workload source compiles");
    let execution = Interpreter::new(&program.ir)
        .run(&workload.input_refs())
        .expect("workload runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    Prepared {
        name: workload.name.clone(),
        program,
        execution,
        analysis,
    }
}

/// The OFDM transmitter at the paper's workload size (6 payload symbols).
pub fn ofdm_prepared() -> Prepared {
    prepare(&ofdm::workload(2004))
}

/// The JPEG encoder at the paper's workload size (256×256).
pub fn jpeg_prepared() -> Prepared {
    prepare(&jpeg::workload(jpeg::PAPER_DIM, 2004))
}

/// The JPEG encoder at a reduced 64×64 size (same structure, ~16× less
/// interpretation work) for ablations that re-profile repeatedly.
pub fn jpeg_small_prepared() -> Prepared {
    prepare(&jpeg::workload(64, 2004))
}

/// A synthetic application for scaling studies: `blocks` random DFG
/// bodies strung into one loop (so every block is a kernel candidate)
/// with random execution frequencies. Deterministic in `blocks`, and
/// shared between the `engine_scaling` bench and the `bench_report`
/// example so the committed `BENCH_engine.json` baseline and the bench
/// measure the same workload.
pub fn synthetic_app(blocks: usize) -> (amdrel_cdfg::Cdfg, Vec<u64>) {
    use amdrel_cdfg::synth::{random_dfg, SplitMix64, SynthConfig};
    use amdrel_cdfg::{BasicBlock, BlockId, Cdfg};

    assert!(blocks >= 2, "a synthetic app needs at least 2 blocks");
    let mut rng = SplitMix64::new(0x5CA1_AB1E ^ blocks as u64);
    let mut cdfg = Cdfg::new(format!("synth{blocks}"));
    let mut freqs = Vec::with_capacity(blocks);
    for i in 0..blocks {
        let dfg = random_dfg(
            blocks as u64 * 1000 + i as u64,
            &SynthConfig {
                nodes: 6 + (rng.below(24) as usize),
                mul_fraction: 0.3,
                load_fraction: 0.15,
                ..SynthConfig::default()
            },
        );
        cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), dfg));
        freqs.push(1 + rng.below(2000));
    }
    for i in 0..blocks - 1 {
        cdfg.add_edge(BlockId(i as u32), BlockId(i as u32 + 1))
            .expect("edge");
    }
    cdfg.add_edge(BlockId(blocks as u32 - 1), BlockId(0))
        .expect("back edge");
    (cdfg, freqs)
}

/// `n` synthetic tenant profiles for runtime scaling studies: varied
/// service demands (2k–40k fine-grain cycles), priorities, partition
/// footprints and communication costs, deterministic in `n`. Shared
/// between the `runtime_scaling` bench and the `bench_report` example so
/// the committed `BENCH_runtime.json` scaling row and the bench measure
/// the same tenant population.
pub fn synthetic_tenants(n: usize) -> Vec<amdrel_runtime::AppProfile> {
    use amdrel_core::rng::SplitMix64;

    assert!(n >= 1, "a tenant population needs at least one tenant");
    let mut rng = SplitMix64::new(0x7E4A_4174 ^ n as u64);
    (0..n)
        .map(|i| {
            let parts = 1 + rng.below(3) as usize;
            let areas: Vec<u64> = (0..parts).map(|_| 50 + rng.below(400)).collect();
            let mut p = amdrel_runtime::AppProfile::synthetic(
                &format!("tenant{i:02}"),
                (i % 4) as u8,
                2_000 + rng.below(38_000),
                rng.below(8_000),
                areas,
            );
            p.comm_cycles = rng.below(1_000);
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofdm_setup_works() {
        let p = ofdm_prepared();
        assert!(!p.analysis.kernels().is_empty());
        assert!(p.execution.instrs_retired > 0);
    }

    #[test]
    fn synthetic_tenants_are_deterministic_and_well_formed() {
        let a = synthetic_tenants(32);
        assert_eq!(a.len(), 32);
        assert_eq!(a, synthetic_tenants(32));
        for t in &a {
            assert!(t.fine_cycles >= 2_000);
            assert!(!t.config.partition_areas.is_empty());
        }
    }
}
