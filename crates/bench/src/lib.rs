//! # amdrel-bench — shared setup for the benchmark harness
//!
//! Each Criterion bench under `benches/` regenerates one table or figure
//! of the paper (printing the rows once) and times the underlying
//! algorithms. This crate hosts the workload setup they share.

#![warn(missing_docs)]

use amdrel_apps::{jpeg, ofdm};
use amdrel_minic::CompiledProgram;
use amdrel_profiler::{AnalysisReport, Execution, Interpreter, WeightTable};

/// A fully analysed application, ready for the partitioning engine.
#[derive(Debug)]
pub struct Prepared {
    /// Application name.
    pub name: String,
    /// Compiled program (IR + CDFG).
    pub program: CompiledProgram,
    /// The profiling run.
    pub execution: Execution,
    /// The combined analysis.
    pub analysis: AnalysisReport,
}

fn prepare(workload: &amdrel_apps::Workload) -> Prepared {
    let program =
        amdrel_minic::compile(&workload.source, "main").expect("workload source compiles");
    let execution = Interpreter::new(&program.ir)
        .run(&workload.input_refs())
        .expect("workload runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    Prepared {
        name: workload.name.clone(),
        program,
        execution,
        analysis,
    }
}

/// The OFDM transmitter at the paper's workload size (6 payload symbols).
pub fn ofdm_prepared() -> Prepared {
    prepare(&ofdm::workload(2004))
}

/// The JPEG encoder at the paper's workload size (256×256).
pub fn jpeg_prepared() -> Prepared {
    prepare(&jpeg::workload(jpeg::PAPER_DIM, 2004))
}

/// The JPEG encoder at a reduced 64×64 size (same structure, ~16× less
/// interpretation work) for ablations that re-profile repeatedly.
pub fn jpeg_small_prepared() -> Prepared {
    prepare(&jpeg::workload(64, 2004))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofdm_setup_works() {
        let p = ofdm_prepared();
        assert!(!p.analysis.kernels().is_empty());
        assert!(p.execution.instrs_retired > 0);
    }
}
