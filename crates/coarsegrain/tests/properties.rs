//! Property-based tests for the CGC list scheduler and binding over
//! random DFGs and random datapath geometries.

use amdrel_cdfg::synth::{random_dfg, SynthConfig};
use amdrel_coarsegrain::{
    bind, length_lower_bound, schedule_dfg, CgcDatapath, CgcGeometry, Priority, Schedule,
    SchedulerConfig, Site,
};
use proptest::prelude::*;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        2usize..120,
        0.05f64..0.6,
        1usize..4,
        0.0f64..0.5,
        0.0f64..0.3,
    )
        .prop_map(
            |(nodes, edge_prob, max_fanin, mul_fraction, load_fraction)| SynthConfig {
                nodes,
                edge_prob,
                max_fanin,
                mul_fraction,
                load_fraction,
                bitwidth: 16,
            },
        )
}

fn datapath() -> impl Strategy<Value = CgcDatapath> {
    (1usize..5, 1u32..5, 1u32..5, 1u32..8).prop_map(|(k, rows, cols, ports)| {
        CgcDatapath::uniform(k, CgcGeometry::new(rows, cols)).with_mem_ports(ports)
    })
}

fn scheduler_config() -> impl Strategy<Value = SchedulerConfig> {
    (
        any::<bool>(),
        prop_oneof![
            Just(Priority::LongestPath),
            Just(Priority::Mobility),
            Just(Priority::Fifo),
        ],
    )
        .prop_map(|(chaining, priority)| SchedulerConfig { chaining, priority })
}

fn placements_ok(dfg: &amdrel_cdfg::Dfg, s: &Schedule) -> bool {
    dfg.node_ids().all(|n| {
        let schedulable = dfg.node(n).kind.is_schedulable();
        s.placement(n).is_some() == schedulable
    })
}

proptest! {
    /// Every schedulable op is placed exactly once, boundary ops never,
    /// and binding validation accepts the schedule.
    #[test]
    fn schedule_is_complete_and_binds(
        seed in any::<u64>(),
        cfg in synth_config(),
        dp in datapath(),
        sc in scheduler_config(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let s = schedule_dfg(&dfg, &dp, &sc).expect("schedules");
        prop_assert!(placements_ok(&dfg, &s));
        let report = bind(&dfg, &s, &dp).expect("binds");
        prop_assert_eq!(report.length, s.length());
        prop_assert_eq!(report.cgc_ops + report.mem_ops, dfg.op_count() as u64);
    }

    /// Precedence: every producer finishes strictly before its consumer
    /// unless chained directly above it in the same column.
    #[test]
    fn precedence_respected(
        seed in any::<u64>(),
        cfg in synth_config(),
        dp in datapath(),
        sc in scheduler_config(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let s = schedule_dfg(&dfg, &dp, &sc).expect("schedules");
        for n in dfg.node_ids() {
            let Some(pn) = s.placement(n) else { continue };
            for &p in dfg.preds(n) {
                let Some(pp) = s.placement(p) else { continue };
                let chained_below = match (pp.site, pn.site) {
                    (
                        Site::CgcNode { cgc: c1, col: k1, row: r1 },
                        Site::CgcNode { cgc: c2, col: k2, row: r2 },
                    ) => c1 == c2 && k1 == k2 && r1 + 1 == r2,
                    _ => false,
                };
                prop_assert!(
                    pp.cycle < pn.cycle || (pp.cycle == pn.cycle && chained_below),
                    "{p}@{pp:?} !< {n}@{pn:?}"
                );
            }
        }
    }

    /// Per-cycle resource caps hold: compute slots and memory ports.
    #[test]
    fn capacity_respected(
        seed in any::<u64>(),
        cfg in synth_config(),
        dp in datapath(),
        sc in scheduler_config(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let s = schedule_dfg(&dfg, &dp, &sc).expect("schedules");
        let mut compute: std::collections::HashMap<u64, u32> = Default::default();
        let mut ports: std::collections::HashMap<u64, u32> = Default::default();
        let mut sites: std::collections::HashSet<(u64, u32, u32, u32)> = Default::default();
        for n in dfg.node_ids() {
            if let Some(p) = s.placement(n) {
                match p.site {
                    Site::CgcNode { cgc, col, row } => {
                        *compute.entry(p.cycle).or_default() += 1;
                        prop_assert!(
                            sites.insert((p.cycle, cgc, col, row)),
                            "CGC node double-booked"
                        );
                        let g = dp.cgcs[cgc as usize];
                        prop_assert!(col < g.cols && row < g.rows);
                    }
                    Site::MemPort { port } => {
                        *ports.entry(p.cycle).or_default() += 1;
                        prop_assert!(port < dp.mem_ports);
                    }
                }
            }
        }
        for (&cy, &c) in &compute {
            prop_assert!(c <= dp.compute_slots(), "cycle {cy}: {c} compute ops");
        }
        for (&cy, &c) in &ports {
            prop_assert!(c <= dp.mem_ports, "cycle {cy}: {c} mem ops");
        }
    }

    /// The schedule length respects the resource lower bound, and
    /// chaining never lengthens a schedule relative to no chaining.
    #[test]
    fn length_bounds(
        seed in any::<u64>(),
        cfg in synth_config(),
        dp in datapath(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        // Skip datapaths with no ports when mem ops exist.
        prop_assume!(dp.mem_ports > 0 || dfg.node_ids().all(|n| !dfg.node(n).kind.is_mem()));
        let on = schedule_dfg(&dfg, &dp, &SchedulerConfig { chaining: true, priority: Priority::LongestPath }).expect("schedules");
        let off = schedule_dfg(&dfg, &dp, &SchedulerConfig { chaining: false, priority: Priority::LongestPath }).expect("schedules");
        prop_assert!(on.length() >= length_lower_bound(&dfg, &dp));
        prop_assert!(on.length() <= off.length(), "chaining hurt: {} > {}", on.length(), off.length());
        prop_assert_eq!(off.chained_ops(), 0);
    }

    /// Chained-op accounting is consistent with placements: a chained op
    /// is exactly one placed at row > 0 whose same-column row-1
    /// predecessor is its DFG producer in the same cycle.
    #[test]
    fn chained_count_matches_geometry(
        seed in any::<u64>(),
        cfg in synth_config(),
        dp in datapath(),
    ) {
        let dfg = random_dfg(seed, &cfg);
        let sc = SchedulerConfig { chaining: true, priority: Priority::LongestPath };
        let s = schedule_dfg(&dfg, &dp, &sc).expect("schedules");
        let mut chained = 0u64;
        for n in dfg.node_ids() {
            let Some(pn) = s.placement(n) else { continue };
            let Site::CgcNode { cgc, col, row } = pn.site else { continue };
            if row == 0 {
                continue;
            }
            // Find the node at (cycle, cgc, col, row-1).
            let above = dfg.node_ids().find(|&m| {
                s.placement(m).is_some_and(|pm| {
                    pm.cycle == pn.cycle
                        && pm.site
                            == Site::CgcNode {
                                cgc,
                                col,
                                row: row - 1,
                            }
                })
            });
            if let Some(above) = above {
                if dfg.preds(n).contains(&above) {
                    chained += 1;
                }
            }
        }
        prop_assert_eq!(s.chained_ops(), chained);
    }

    /// Schedule length obeys the Graham-style list-scheduling bound:
    /// `len ≤ compute_work/slots + mem_work/ports + critical_path`.
    ///
    /// Note that strict monotonicity in CGC count does NOT hold: greedy
    /// list scheduling exhibits Graham's anomalies, where extra resources
    /// occasionally reseat seeds and lengthen the schedule by a cycle
    /// (property testing found a 53-node counter-example at k=2 → k=4).
    /// The bound below is the guarantee the scheduler actually provides;
    /// monotonicity on the paper's configurations is asserted separately
    /// on the real applications in `tests/pipeline_ofdm.rs`.
    #[test]
    fn graham_bound_holds(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let sc = SchedulerConfig::default();
        let cp = amdrel_cdfg::critical_path(&dfg, |_| 1).expect("acyclic");
        for k in [1usize, 2, 4] {
            let dp = CgcDatapath::uniform(k, CgcGeometry::TWO_BY_TWO).with_mem_ports(4);
            let s = schedule_dfg(&dfg, &dp, &sc).expect("schedules");
            let compute = dfg
                .node_ids()
                .filter(|&n| {
                    let kind = dfg.node(n).kind;
                    kind.is_schedulable() && !kind.is_mem()
                })
                .count() as u64;
            let mem = dfg.node_ids().filter(|&n| dfg.node(n).kind.is_mem()).count() as u64;
            let bound = compute.div_ceil(u64::from(dp.compute_slots()))
                + mem.div_ceil(u64::from(dp.mem_ports))
                + cp;
            prop_assert!(
                s.length() <= bound,
                "k={k}: len {} > bound {bound} (work {compute}/{mem}, cp {cp})",
                s.length()
            );
        }
    }

    /// Doubling the CGC count never more than marginally lengthens the
    /// schedule (the anomaly is bounded: with the same ready list, an
    /// extra column can displace at most one chain extension per cycle).
    #[test]
    fn anomaly_is_bounded(seed in any::<u64>(), cfg in synth_config()) {
        let dfg = random_dfg(seed, &cfg);
        let sc = SchedulerConfig::default();
        let two = schedule_dfg(
            &dfg,
            &CgcDatapath::uniform(2, CgcGeometry::TWO_BY_TWO).with_mem_ports(4),
            &sc,
        )
        .expect("schedules");
        let four = schedule_dfg(
            &dfg,
            &CgcDatapath::uniform(4, CgcGeometry::TWO_BY_TWO).with_mem_ports(4),
            &sc,
        )
        .expect("schedules");
        // Allow the Graham anomaly a 25% + 1 cycle envelope; real
        // regressions (e.g. resources being ignored) blow well past it.
        prop_assert!(
            four.length() <= two.length() + two.length() / 4 + 1,
            "4 CGCs {} vs 2 CGCs {}",
            four.length(),
            two.length()
        );
    }
}
