//! Chaining-aware list scheduling onto the CGC datapath.
//!
//! "A proper list-based scheduler has been developed" (§3.3). The
//! scheduler fills one `T_CGC` cycle at a time:
//!
//! 1. **seed** — ready operations (all predecessors finished in earlier
//!    cycles) claim any free CGC node (the steering logic routes their
//!    inputs from the register bank) or a shared-memory port, highest
//!    priority first;
//! 2. **chain** — an operation whose only same-cycle predecessor sits at
//!    row `r` of a column with row `r+1` free is placed directly below
//!    it, completing in the same cycle through the steering logic (the
//!    multiply-add case of [6]). Disabled by
//!    [`SchedulerConfig::chaining`] for the ablation study.
//!
//! Loads/stores use memory ports and never chain. Boundary pseudo-ops are
//! free. Every cycle costs exactly one `T_CGC` ("unit execution delay").

use crate::datapath::CgcDatapath;
use crate::CoarseGrainError;
use amdrel_cdfg::{mobility, path_to_sink, Dfg, NodeId};
use serde::{Deserialize, Serialize};

/// Where a scheduled operation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Site {
    /// A CGC node: `(cgc instance, column, row within the chain)`.
    CgcNode {
        /// CGC instance index.
        cgc: u32,
        /// Column (chain) index.
        col: u32,
        /// Row (chain depth) index.
        row: u32,
    },
    /// A shared-memory port.
    MemPort {
        /// Port index.
        port: u32,
    },
}

/// A node's placement: which cycle, which site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Clock cycle (0-based, period `T_CGC`).
    pub cycle: u64,
    /// Execution site.
    pub site: Site,
}

/// List-scheduler priority function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Longest path to a sink, descending — the classic critical-path
    /// list scheduler. The default.
    #[default]
    LongestPath,
    /// Least mobility (ALAP − ASAP) first.
    Mobility,
    /// Node-id order (no intelligence) — ablation baseline.
    Fifo,
}

/// Scheduler knobs. Implements [`Hash`] so that, together with
/// [`crate::CgcDatapath`], it can key memoised coarse-grain mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Allow same-cycle chaining through the CGC steering logic.
    pub chaining: bool,
    /// Ready-list priority.
    pub priority: Priority,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            chaining: true,
            priority: Priority::default(),
        }
    }
}

/// A complete schedule of one DFG on the datapath.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Option<Placement>>,
    length: u64,
    chained_ops: u64,
}

impl Schedule {
    /// The placement of `node`; `None` for boundary pseudo-ops.
    pub fn placement(&self, node: NodeId) -> Option<Placement> {
        self.placements.get(node.index()).copied().flatten()
    }

    /// Schedule length in `T_CGC` cycles (`t_to_coarse(BB)` before
    /// iteration weighting).
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Number of operations that completed by chaining onto a same-cycle
    /// predecessor (the complex-operation wins of the CGC structure).
    pub fn chained_ops(&self) -> u64 {
        self.chained_ops
    }

    /// All placements, indexed by node.
    pub fn placements(&self) -> &[Option<Placement>] {
        &self.placements
    }
}

/// Schedule `dfg` onto `datapath`.
///
/// # Errors
///
/// * [`CoarseGrainError::NoMemPorts`] if the DFG has memory operations but
///   the datapath has zero ports;
/// * [`CoarseGrainError::Graph`] for malformed DFGs.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
/// use amdrel_coarsegrain::{schedule_dfg, CgcDatapath, SchedulerConfig};
///
/// # fn main() -> Result<(), amdrel_coarsegrain::CoarseGrainError> {
/// let mut dfg = Dfg::new("mac");
/// let m = dfg.add_op(OpKind::Mul, 16);
/// let a = dfg.add_op(OpKind::Add, 32);
/// dfg.add_edge(m, a)?;
/// let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default())?;
/// assert_eq!(s.length(), 1); // multiply-add chains into one T_CGC cycle
/// # Ok(())
/// # }
/// ```
pub fn schedule_dfg(
    dfg: &Dfg,
    datapath: &CgcDatapath,
    config: &SchedulerConfig,
) -> Result<Schedule, CoarseGrainError> {
    let priorities: Vec<u64> = match config.priority {
        Priority::LongestPath => path_to_sink(dfg, |_| 1)?,
        Priority::Mobility => {
            let mob = mobility(dfg)?;
            // Least mobility = highest priority; invert.
            let max = mob.iter().copied().max().unwrap_or(0) as u64;
            mob.into_iter().map(|m| max - u64::from(m)).collect()
        }
        Priority::Fifo => {
            let n = dfg.len() as u64;
            (0..dfg.len() as u64).map(|i| n - i).collect()
        }
    };

    let is_compute = |n: NodeId| {
        let k = dfg.node(n).kind;
        k.is_schedulable() && !k.is_mem()
    };
    let is_mem = |n: NodeId| dfg.node(n).kind.is_mem();

    if datapath.mem_ports == 0 && dfg.node_ids().any(is_mem) {
        return Err(CoarseGrainError::NoMemPorts);
    }

    let mut placements: Vec<Option<Placement>> = vec![None; dfg.len()];
    // done[n]: finished in a cycle strictly before the current one.
    let mut done = vec![false; dfg.len()];
    // Boundary ops are immediately done.
    let mut remaining = 0usize;
    for n in dfg.node_ids() {
        if dfg.node(n).kind.is_schedulable() {
            remaining += 1;
        } else {
            done[n.index()] = true;
        }
    }

    let mut cycle: u64 = 0;
    let mut chained_ops: u64 = 0;
    let mut length: u64 = 0;
    while remaining > 0 {
        // Per-cycle resource state: nodes[cgc][col][row] = occupant.
        let mut nodes: Vec<Vec<Vec<Option<NodeId>>>> = datapath
            .cgcs
            .iter()
            .map(|g| vec![vec![None; g.rows as usize]; g.cols as usize])
            .collect();
        let mut mem_used: u32 = 0;
        // Scheduled in *this* cycle (not yet "done" for readiness checks).
        let mut this_cycle: Vec<NodeId> = Vec::new();
        let mut placed_any = false;

        // Phase 1: ready ops fill free CGC nodes / memory ports.
        let mut ready: Vec<NodeId> = dfg
            .node_ids()
            .filter(|&n| {
                placements[n.index()].is_none()
                    && dfg.node(n).kind.is_schedulable()
                    && dfg.preds(n).iter().all(|p| done[p.index()])
            })
            .collect();
        ready.sort_by_key(|&n| (std::cmp::Reverse(priorities[n.index()]), n));
        for n in ready {
            if is_mem(n) {
                if mem_used < datapath.mem_ports {
                    placements[n.index()] = Some(Placement {
                        cycle,
                        site: Site::MemPort { port: mem_used },
                    });
                    mem_used += 1;
                    this_cycle.push(n);
                    placed_any = true;
                }
            } else {
                // First free node in row-major order (all row-0 slots
                // before any row-1 slot) so seeded ops leave the rows
                // below them open for chain extension.
                let max_rows = datapath.cgcs.iter().map(|g| g.rows).max().unwrap_or(0);
                'rows: for ri in 0..max_rows as usize {
                    for (ci, cols) in nodes.iter_mut().enumerate() {
                        if ri >= datapath.cgcs[ci].rows as usize {
                            continue;
                        }
                        for (coli, rows) in cols.iter_mut().enumerate() {
                            let slot = &mut rows[ri];
                            if slot.is_none() {
                                *slot = Some(n);
                                placements[n.index()] = Some(Placement {
                                    cycle,
                                    site: Site::CgcNode {
                                        cgc: ci as u32,
                                        col: coli as u32,
                                        row: ri as u32,
                                    },
                                });
                                this_cycle.push(n);
                                placed_any = true;
                                break 'rows;
                            }
                        }
                    }
                }
            }
        }

        // Phase 2: chain extension through the steering logic — place an
        // op directly below its (unique) same-cycle predecessor.
        if config.chaining {
            loop {
                // Candidates: unplaced compute ops whose preds are done
                // except exactly one, placed this cycle at (c, col, r)
                // with row r+1 free.
                let mut candidates: Vec<(NodeId, usize, usize, usize)> = Vec::new();
                for n in dfg.node_ids() {
                    if placements[n.index()].is_some() || !is_compute(n) {
                        continue;
                    }
                    let mut same_cycle_pred: Option<NodeId> = None;
                    let mut ok = true;
                    for &p in dfg.preds(n) {
                        if done[p.index()] {
                            continue;
                        }
                        if this_cycle.contains(&p) && same_cycle_pred.is_none() {
                            same_cycle_pred = Some(p);
                        } else {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let Some(p) = same_cycle_pred else { continue };
                    let Some(Placement {
                        site: Site::CgcNode { cgc, col, row },
                        ..
                    }) = placements[p.index()]
                    else {
                        continue; // pred on a memory port: no chaining
                    };
                    let (ci, coli, ri) = (cgc as usize, col as usize, row as usize);
                    if ri + 1 < datapath.cgcs[ci].rows as usize && nodes[ci][coli][ri + 1].is_none()
                    {
                        candidates.push((n, ci, coli, ri + 1));
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                candidates.sort_by_key(|&(n, ..)| (std::cmp::Reverse(priorities[n.index()]), n));
                let mut extended = false;
                for (n, ci, coli, ri) in candidates {
                    // Re-check (an earlier extension may have taken the
                    // slot or placed the node).
                    if placements[n.index()].is_some() || nodes[ci][coli][ri].is_some() {
                        continue;
                    }
                    nodes[ci][coli][ri] = Some(n);
                    placements[n.index()] = Some(Placement {
                        cycle,
                        site: Site::CgcNode {
                            cgc: ci as u32,
                            col: coli as u32,
                            row: ri as u32,
                        },
                    });
                    this_cycle.push(n);
                    chained_ops += 1;
                    placed_any = true;
                    extended = true;
                }
                if !extended {
                    break;
                }
            }
        }

        if !placed_any {
            // No ready op fit: with ≥1 compute slot and ≥1 port this can
            // only happen on a malformed graph (cycle) — path_to_sink
            // would already have failed — or an all-slots-busy cycle,
            // which cannot occur when nothing was placed. Guard anyway.
            return Err(CoarseGrainError::SchedulerStalled { cycle });
        }

        for n in &this_cycle {
            done[n.index()] = true;
        }
        remaining -= this_cycle.len();
        length = cycle + 1;
        cycle += 1;
    }

    Ok(Schedule {
        placements,
        length,
        chained_ops,
    })
}

/// Unconstrained lower bound on the schedule length: the DFG's critical
/// path with chaining collapsed (every maximal chain of single-successor
/// dependencies costs one cycle is hard to bound exactly; this returns the
/// resource bound `ceil(ops / slots)` and 1-cycle minimum, whichever is
/// larger).
pub fn length_lower_bound(dfg: &Dfg, datapath: &CgcDatapath) -> u64 {
    let compute_ops = dfg
        .node_ids()
        .filter(|&n| {
            let k = dfg.node(n).kind;
            k.is_schedulable() && !k.is_mem()
        })
        .count() as u64;
    let mem_ops = dfg
        .node_ids()
        .filter(|&n| dfg.node(n).kind.is_mem())
        .count() as u64;
    let slots = u64::from(datapath.compute_slots()).max(1);
    let ports = u64::from(datapath.mem_ports).max(1);
    let resource = compute_ops.div_ceil(slots).max(mem_ops.div_ceil(ports));
    if compute_ops + mem_ops == 0 {
        0
    } else {
        resource.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::synth::{random_dfg, SynthConfig};
    use amdrel_cdfg::OpKind;

    fn chain_dfg(len: usize) -> Dfg {
        let mut dfg = Dfg::new("chain");
        let mut prev = None;
        for _ in 0..len {
            let n = dfg.add_op(OpKind::Add, 32);
            if let Some(p) = prev {
                dfg.add_edge(p, n).unwrap();
            }
            prev = Some(n);
        }
        dfg
    }

    #[test]
    fn multiply_add_chains_into_one_cycle() {
        let mut dfg = Dfg::new("mac");
        let m = dfg.add_op(OpKind::Mul, 16);
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(m, a).unwrap();
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
        assert_eq!(s.length(), 1);
        assert_eq!(s.chained_ops(), 1);
    }

    #[test]
    fn chain_depth_limited_by_rows() {
        // A 4-deep chain on 2-row CGCs: 2 ops per cycle → 2 cycles.
        let dfg = chain_dfg(4);
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn chaining_disabled_serialises_chain() {
        let dfg = chain_dfg(4);
        let cfg = SchedulerConfig {
            chaining: false,
            ..SchedulerConfig::default()
        };
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &cfg).unwrap();
        assert_eq!(s.length(), 4);
        assert_eq!(s.chained_ops(), 0);
    }

    #[test]
    fn wide_graph_limited_by_slots() {
        // 16 independent adds on two 2x2 CGCs (8 slots): 2 cycles.
        let mut dfg = Dfg::new("wide");
        for _ in 0..16 {
            dfg.add_op(OpKind::Add, 32);
        }
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn more_cgcs_never_slower() {
        for seed in 0..10 {
            let dfg = random_dfg(seed, &SynthConfig::default());
            let two =
                schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
            let three =
                schedule_dfg(&dfg, &CgcDatapath::three_2x2(), &SchedulerConfig::default()).unwrap();
            assert!(
                three.length() <= two.length(),
                "seed {seed}: three 2x2 ({}) slower than two 2x2 ({})",
                three.length(),
                two.length()
            );
        }
    }

    #[test]
    fn mem_ops_respect_ports() {
        let mut dfg = Dfg::new("mem");
        for _ in 0..8 {
            dfg.add_op(OpKind::Load, 32);
        }
        let dp = CgcDatapath::two_2x2().with_mem_ports(2);
        let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
        assert_eq!(s.length(), 4); // 8 loads / 2 ports
    }

    #[test]
    fn no_mem_ports_error() {
        let mut dfg = Dfg::new("mem");
        dfg.add_op(OpKind::Load, 32);
        let dp = CgcDatapath::two_2x2().with_mem_ports(0);
        assert!(matches!(
            schedule_dfg(&dfg, &dp, &SchedulerConfig::default()),
            Err(CoarseGrainError::NoMemPorts)
        ));
    }

    #[test]
    fn dependencies_always_respected() {
        for seed in 0..25 {
            let dfg = random_dfg(seed, &SynthConfig::default());
            let s =
                schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
            for n in dfg.node_ids() {
                let Some(pn) = s.placement(n) else { continue };
                for &p in dfg.preds(n) {
                    let Some(pp) = s.placement(p) else { continue };
                    assert!(
                        pp.cycle < pn.cycle || (pp.cycle == pn.cycle && same_chain_below(&pp, &pn)),
                        "seed {seed}: {p} at {pp:?} not before {n} at {pn:?}"
                    );
                }
            }
        }
    }

    fn same_chain_below(p: &Placement, n: &Placement) -> bool {
        match (p.site, n.site) {
            (
                Site::CgcNode {
                    cgc: c1,
                    col: k1,
                    row: r1,
                },
                Site::CgcNode {
                    cgc: c2,
                    col: k2,
                    row: r2,
                },
            ) => c1 == c2 && k1 == k2 && r1 < r2,
            _ => false,
        }
    }

    #[test]
    fn slot_capacity_never_exceeded() {
        for seed in 0..25 {
            let dfg = random_dfg(
                seed,
                &SynthConfig {
                    nodes: 80,
                    ..SynthConfig::default()
                },
            );
            let dp = CgcDatapath::two_2x2();
            let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
            let mut per_cycle: std::collections::HashMap<u64, u32> = Default::default();
            let mut mem_per_cycle: std::collections::HashMap<u64, u32> = Default::default();
            for n in dfg.node_ids() {
                if let Some(p) = s.placement(n) {
                    match p.site {
                        Site::CgcNode { .. } => *per_cycle.entry(p.cycle).or_default() += 1,
                        Site::MemPort { .. } => *mem_per_cycle.entry(p.cycle).or_default() += 1,
                    }
                }
            }
            for (&cy, &count) in &per_cycle {
                assert!(count <= dp.compute_slots(), "seed {seed} cycle {cy}");
            }
            for (&cy, &count) in &mem_per_cycle {
                assert!(count <= dp.mem_ports, "seed {seed} cycle {cy}");
            }
        }
    }

    #[test]
    fn priorities_all_terminate_with_valid_lengths() {
        let dfg = random_dfg(7, &SynthConfig::default());
        for prio in [Priority::LongestPath, Priority::Mobility, Priority::Fifo] {
            let cfg = SchedulerConfig {
                chaining: true,
                priority: prio,
            };
            let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &cfg).unwrap();
            assert!(
                s.length() >= length_lower_bound(&dfg, &CgcDatapath::two_2x2()) || s.length() > 0
            );
        }
    }

    #[test]
    fn empty_dfg_schedules_to_zero() {
        let dfg = Dfg::new("empty");
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
        assert_eq!(s.length(), 0);
    }

    #[test]
    fn boundary_ops_have_no_placement() {
        let mut dfg = Dfg::new("io");
        let i = dfg.add_op(OpKind::LiveIn, 32);
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(i, a).unwrap();
        let s = schedule_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default()).unwrap();
        assert!(s.placement(i).is_none());
        assert!(s.placement(a).is_some());
    }
}
