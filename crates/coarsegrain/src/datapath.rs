//! The CGC-based coarse-grain datapath of the authors' FPL'04 paper
//! (reference [6]): a set of Coarse-Grain Components, a reconfigurable
//! interconnection network and a register bank.
//!
//! "The CGC is an n×m array of nodes, where n is the number of rows and m
//! the number of columns. The connections among the CGC nodes are
//! reconfigured by appropriate steering logic. This allows to easily
//! realize any complex operations (like a multiply-add operation) … Each
//! CGC node contains a multiplier and ALU where only one of them is
//! activated in a clock cycle."
//!
//! Scheduling-relevant consequences modelled here:
//!
//! * per clock cycle, one CGC offers `m` *chains* of up to `n` dependent
//!   word-level operations each (data flows down the rows through the
//!   steering logic), i.e. up to `n × m` operations per CGC per cycle;
//! * a dependent pair placed in the same column completes in one cycle —
//!   the multiply-add case;
//! * every cycle has period `T_CGC` ("unit execution delay for the CGCs");
//! * loads/stores go through shared-memory ports, not CGC nodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of one Coarse-Grain Component (an n×m node array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CgcGeometry {
    /// Rows (`n`): the maximum chain depth per column per cycle.
    pub rows: u32,
    /// Columns (`m`): the number of parallel chains per cycle.
    pub cols: u32,
}

impl CgcGeometry {
    /// The 2×2 geometry used throughout the paper's experiments.
    pub const TWO_BY_TWO: CgcGeometry = CgcGeometry { rows: 2, cols: 2 };

    /// A new geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "CGC geometry must be non-empty");
        CgcGeometry { rows, cols }
    }

    /// Nodes in the array (`n × m`).
    pub fn nodes(&self) -> u32 {
        self.rows * self.cols
    }
}

impl fmt::Display for CgcGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The coarse-grain datapath: CGCs + register bank + shared-memory ports.
///
/// Implements [`Hash`] (all fields are structural) so a datapath can key
/// memoised coarse-grain mappings directly.
///
/// # Examples
///
/// ```
/// use amdrel_coarsegrain::CgcDatapath;
///
/// let dp = CgcDatapath::two_2x2(); // the paper's smaller configuration
/// assert_eq!(dp.compute_slots(), 8);
/// let dp3 = CgcDatapath::three_2x2();
/// assert_eq!(dp3.compute_slots(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CgcDatapath {
    /// The CGC instances.
    pub cgcs: Vec<CgcGeometry>,
    /// Shared-memory ports usable per cycle by loads/stores.
    pub mem_ports: u32,
    /// Register-bank capacity in words (reported against, not enforced —
    /// the FPL'04 datapath sizes the bank to the application).
    pub register_bank: u32,
}

impl CgcDatapath {
    /// A datapath with the given CGCs and default memory/register
    /// resources (2 ports per CGC, 64-word register bank).
    ///
    /// # Panics
    ///
    /// Panics if `cgcs` is empty.
    pub fn new(cgcs: Vec<CgcGeometry>) -> Self {
        assert!(!cgcs.is_empty(), "a datapath needs at least one CGC");
        let mem_ports = 2 * cgcs.len() as u32;
        CgcDatapath {
            cgcs,
            mem_ports,
            register_bank: 64,
        }
    }

    /// The paper's "two 2x2" configuration.
    pub fn two_2x2() -> Self {
        CgcDatapath::new(vec![CgcGeometry::TWO_BY_TWO; 2])
    }

    /// The paper's "three 2x2" configuration.
    pub fn three_2x2() -> Self {
        CgcDatapath::new(vec![CgcGeometry::TWO_BY_TWO; 3])
    }

    /// `k` copies of an n×m CGC.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (via [`CgcDatapath::new`]).
    pub fn uniform(k: usize, geometry: CgcGeometry) -> Self {
        CgcDatapath::new(vec![geometry; k])
    }

    /// Builder-style override of the number of shared-memory ports.
    pub fn with_mem_ports(mut self, ports: u32) -> Self {
        self.mem_ports = ports;
        self
    }

    /// Total compute slots per cycle (Σ n×m over CGCs).
    pub fn compute_slots(&self) -> u32 {
        self.cgcs.iter().map(CgcGeometry::nodes).sum()
    }

    /// A short description like `"two 2x2 CGCs"` for reports.
    pub fn describe(&self) -> String {
        if self.cgcs.is_empty() {
            return "no CGCs".to_owned();
        }
        let all_same = self.cgcs.windows(2).all(|w| w[0] == w[1]);
        if all_same {
            let count = match self.cgcs.len() {
                1 => "one".to_owned(),
                2 => "two".to_owned(),
                3 => "three".to_owned(),
                4 => "four".to_owned(),
                5 => "five".to_owned(),
                6 => "six".to_owned(),
                n => n.to_string(),
            };
            format!("{count} {} CGCs", self.cgcs[0])
        } else {
            let parts: Vec<String> = self.cgcs.iter().map(|g| g.to_string()).collect();
            format!("CGCs [{}]", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let g = CgcGeometry::new(2, 3);
        assert_eq!(g.nodes(), 6);
        assert_eq!(g.to_string(), "2x3");
        assert_eq!(CgcGeometry::TWO_BY_TWO.nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_geometry_panics() {
        let _ = CgcGeometry::new(0, 2);
    }

    #[test]
    fn paper_configurations() {
        assert_eq!(CgcDatapath::two_2x2().cgcs.len(), 2);
        assert_eq!(CgcDatapath::three_2x2().cgcs.len(), 3);
        assert_eq!(CgcDatapath::two_2x2().describe(), "two 2x2 CGCs");
        assert_eq!(CgcDatapath::three_2x2().describe(), "three 2x2 CGCs");
    }

    #[test]
    fn default_mem_ports_scale_with_cgcs() {
        assert_eq!(CgcDatapath::two_2x2().mem_ports, 4);
        assert_eq!(CgcDatapath::three_2x2().mem_ports, 6);
    }

    #[test]
    fn heterogeneous_description() {
        let dp = CgcDatapath::new(vec![CgcGeometry::new(2, 2), CgcGeometry::new(3, 3)]);
        assert!(dp.describe().contains("2x2"));
        assert!(dp.describe().contains("3x3"));
    }

    #[test]
    #[should_panic(expected = "at least one CGC")]
    fn empty_datapath_panics() {
        let _ = CgcDatapath::new(vec![]);
    }
}
